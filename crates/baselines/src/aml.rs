//! AML-style unsupervised lexical matcher.
//!
//! AgreementMakerLight's core matchers are lexical: names are normalized
//! and compared with an ensemble of string similarities; only pairs above
//! a high confidence threshold are reported, giving the very high
//! precision / moderate recall profile the paper observes for AML
//! (P ≈ 0.95–0.99, R ≈ 0.34–0.61 in Table II).

use crate::{name_tokens, Matcher};
use leapme_data::model::{Dataset, PropertyPair};
use leapme_textsim::{jaro, levenshtein};

/// AML-style matcher over property names.
#[derive(Debug, Clone)]
pub struct AmlMatcher {
    threshold: f64,
}

impl AmlMatcher {
    /// Default AML configuration (high-precision threshold 0.85).
    pub fn new() -> Self {
        AmlMatcher { threshold: 0.85 }
    }

    /// Custom threshold (clamped to `[0, 1]`).
    pub fn with_threshold(threshold: f64) -> Self {
        AmlMatcher {
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// The lexical ensemble similarity: the maximum of
    /// word-set Jaccard, Jaro–Winkler, and normalized Levenshtein
    /// similarity on the token-normalized names.
    pub fn similarity(name_a: &str, name_b: &str) -> f64 {
        let ta = name_tokens(name_a);
        let tb = name_tokens(name_b);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let norm_a = ta.join(" ");
        let norm_b = tb.join(" ");

        let set_a: std::collections::BTreeSet<&String> = ta.iter().collect();
        let set_b: std::collections::BTreeSet<&String> = tb.iter().collect();
        let inter = set_a.intersection(&set_b).count();
        let union = set_a.len() + set_b.len() - inter;
        let jaccard = inter as f64 / union as f64;

        let jw = jaro::jaro_winkler_similarity(&norm_a, &norm_b);
        let lev = levenshtein::normalized_similarity(&norm_a, &norm_b);

        jaccard.max(jw).max(lev)
    }
}

impl Default for AmlMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for AmlMatcher {
    fn name(&self) -> &'static str {
        "AML"
    }

    fn score(&self, _dataset: &Dataset, PropertyPair(a, b): &PropertyPair) -> f64 {
        Self::similarity(&a.name, &b.name)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};

    fn empty_dataset() -> Dataset {
        Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![],
            Default::default(),
        )
        .unwrap()
    }

    fn pair(a: &str, b: &str) -> PropertyPair {
        PropertyPair::new(
            PropertyKey::new(SourceId(0), a),
            PropertyKey::new(SourceId(1), b),
        )
    }

    #[test]
    fn identical_names_max_similarity() {
        assert_eq!(AmlMatcher::similarity("resolution", "resolution"), 1.0);
        // Different casing/styling normalizes to the same tokens.
        assert_eq!(AmlMatcher::similarity("Shutter Speed", "shutter_speed"), 1.0);
        assert_eq!(AmlMatcher::similarity("shutterSpeed", "shutter-speed"), 1.0);
    }

    #[test]
    fn near_names_high_similarity() {
        assert!(AmlMatcher::similarity("resolution", "resolutions") > 0.9);
        // Shared token.
        assert!(AmlMatcher::similarity("max shutter speed", "shutter speed") > 0.6);
    }

    #[test]
    fn synonyms_low_similarity() {
        // Lexical matchers cannot bridge true synonyms — the weakness
        // LEAPME's embeddings address.
        assert!(AmlMatcher::similarity("megapixels", "camera resolution") < 0.6);
    }

    #[test]
    fn empty_names_zero() {
        assert_eq!(AmlMatcher::similarity("", "resolution"), 0.0);
        assert_eq!(AmlMatcher::similarity("!!!", "resolution"), 0.0);
    }

    #[test]
    fn matcher_interface() {
        let ds = empty_dataset();
        let m = AmlMatcher::new();
        assert_eq!(m.name(), "AML");
        assert!(m.score(&ds, &pair("iso", "iso")) >= m.threshold());
        let matched = m.predict(
            &ds,
            &[pair("iso", "iso"), pair("megapixels", "battery life")],
        );
        assert_eq!(matched.len(), 1);
    }

    #[test]
    fn threshold_clamped() {
        assert_eq!(AmlMatcher::with_threshold(5.0).threshold(), 1.0);
        assert_eq!(AmlMatcher::with_threshold(-1.0).threshold(), 0.0);
    }
}
