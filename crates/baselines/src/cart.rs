//! CART decision tree (binary classification, Gini impurity).
//!
//! The Nezhadi et al. baseline aggregates classical similarity metrics
//! with an off-the-shelf classifier; decision trees are among the
//! classifiers they evaluate and need no feature scaling, which suits the
//! mixed string-similarity features. This is a from-scratch CART:
//! axis-aligned splits chosen by Gini gain, depth- and support-limited,
//! leaves predict the majority class with a probability estimate.

/// Hyper-parameters of the tree.
#[derive(Debug, Clone, Copy)]
pub struct CartConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            max_depth: 8,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob_positive: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

/// Errors from tree fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CartError {
    /// No training rows.
    EmptyTrainingSet,
    /// Rows have inconsistent widths or labels mismatch.
    ShapeMismatch(String),
}

impl std::fmt::Display for CartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CartError::EmptyTrainingSet => write!(f, "empty training set"),
            CartError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for CartError {}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fit a tree on feature rows `x` and boolean labels `y`.
    pub fn fit(x: &[Vec<f64>], y: &[bool], cfg: &CartConfig) -> Result<Self, CartError> {
        if x.is_empty() {
            return Err(CartError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(CartError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.len(),
                y.len()
            )));
        }
        let n_features = x[0].len();
        if x.iter().any(|r| r.len() != n_features) {
            return Err(CartError::ShapeMismatch("ragged feature rows".into()));
        }
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = Self::build(x, y, &idx, cfg, 0);
        Ok(DecisionTree { root, n_features })
    }

    fn build(x: &[Vec<f64>], y: &[bool], idx: &[usize], cfg: &CartConfig, depth: usize) -> Node {
        let pos = idx.iter().filter(|&&i| y[i]).count();
        let total = idx.len();
        let leaf = || Node::Leaf {
            prob_positive: if total == 0 {
                0.0
            } else {
                pos as f64 / total as f64
            },
        };
        if depth >= cfg.max_depth
            || total < cfg.min_samples_split
            || pos == 0
            || pos == total
        {
            return leaf();
        }

        // Best Gini split over all features and midpoints.
        let parent_gini = gini(pos, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let n_features = x[idx[0]].len();
        // `f` indexes a column across *different* rows of `x`, so there is
        // no single slice to iterate (clippy's needless_range_loop).
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            let mut vals: Vec<(f64, bool)> = idx.iter().map(|&i| (x[i][f], y[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut left_pos = 0usize;
            for i in 0..total - 1 {
                if vals[i].1 {
                    left_pos += 1;
                }
                if vals[i].0 == vals[i + 1].0 {
                    continue; // can't split between equal values
                }
                let left_n = i + 1;
                let right_n = total - left_n;
                let right_pos = pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / total as f64;
                let gain = parent_gini - weighted;
                let threshold = (vals[i].0 + vals[i + 1].0) / 2.0;
                if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return leaf();
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return leaf();
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::build(x, y, &left_idx, cfg, depth + 1)),
            right: Box::new(Self::build(x, y, &right_idx, cfg, depth + 1)),
        }
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Probability of the positive class for one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training width.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob_positive } => return *prob_positive,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Hard decision at probability 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Tree depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive iff feature 1 > 0.5 (feature 0 is noise).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let noise = (i % 7) as f64 / 7.0;
            let signal = if i % 2 == 0 { 0.9 } else { 0.1 };
            x.push(vec![noise, signal]);
            y.push(i % 2 == 0);
        }
        (x, y)
    }

    #[test]
    fn learns_axis_split() {
        let (x, y) = axis_separable();
        let tree = DecisionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        for (row, label) in x.iter().zip(&y) {
            assert_eq!(tree.predict(row), *label);
        }
        // A single split suffices.
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn learns_two_level_and() {
        // Positive iff f0 > 0.5 AND f1 > 0.5 — requires depth 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in [0.2, 0.8] {
            for b in [0.2, 0.8] {
                for _ in 0..10 {
                    x.push(vec![a, b]);
                    y.push(a > 0.5 && b > 0.5);
                }
            }
        }
        let tree = DecisionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        assert!(tree.predict(&[0.9, 0.9]));
        assert!(!tree.predict(&[0.9, 0.1]));
        assert!(!tree.predict(&[0.1, 0.9]));
        assert!(!tree.predict(&[0.1, 0.1]));
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![true, true];
        let tree = DecisionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_proba(&[0.5]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = axis_separable();
        let cfg = CartConfig {
            max_depth: 0,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg).unwrap();
        assert_eq!(tree.depth(), 0);
        // Majority leaf: probability 0.5 exactly here.
        assert!((tree.predict_proba(&[0.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_reflects_purity() {
        // 3 positives and 1 negative share the left region.
        let x = vec![vec![0.1], vec![0.2], vec![0.3], vec![0.25], vec![0.9]];
        let y = vec![true, true, true, false, false];
        let cfg = CartConfig {
            max_depth: 1,
            min_samples_split: 2,
        };
        let tree = DecisionTree::fit(&x, &y, &cfg).unwrap();
        // At depth 1 the tree cannot separate everything; at least one
        // probe must land in an impure leaf with a fractional probability.
        let probes = [0.15, 0.27, 0.95];
        assert!(
            probes.iter().any(|&v| {
                let p = tree.predict_proba(&[v]);
                p > 0.0 && p < 1.0
            }),
            "expected an impure leaf among probes"
        );
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            DecisionTree::fit(&[], &[], &CartConfig::default()).unwrap_err(),
            CartError::EmptyTrainingSet
        );
        let err = DecisionTree::fit(&[vec![1.0]], &[true, false], &CartConfig::default())
            .unwrap_err();
        assert!(matches!(err, CartError::ShapeMismatch(_)));
        let err = DecisionTree::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[true, false],
            &CartConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CartError::ShapeMismatch(_)));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn predict_rejects_wrong_width() {
        let tree = DecisionTree::fit(&[vec![0.0]], &[true], &CartConfig::default()).unwrap();
        tree.predict(&[0.0, 1.0]);
    }
}
