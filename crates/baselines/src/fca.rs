//! Formal concept analysis: contexts, derivation operators, and concept
//! enumeration with Ganter's NextClosure algorithm.
//!
//! FCA-Map constructs formal contexts from ontology lexicons and derives
//! matches from the concept lattice. This module provides the FCA core
//! the [`crate::fcamap`] matcher builds on.

use std::collections::BTreeSet;

/// A formal context: a binary incidence relation between `n_objects`
/// objects and `n_attributes` attributes.
#[derive(Debug, Clone)]
pub struct FormalContext {
    n_objects: usize,
    n_attributes: usize,
    object_attrs: Vec<BTreeSet<usize>>,
}

/// A formal concept: a maximal (extent, intent) rectangle of the context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// Objects of the concept.
    pub extent: BTreeSet<usize>,
    /// Attributes shared by all extent objects.
    pub intent: BTreeSet<usize>,
}

impl FormalContext {
    /// Create a context; `object_attrs[o]` lists the attributes of object
    /// `o`.
    ///
    /// # Panics
    ///
    /// Panics if any attribute index is out of range.
    pub fn new(n_attributes: usize, object_attrs: Vec<BTreeSet<usize>>) -> Self {
        for attrs in &object_attrs {
            if let Some(&max) = attrs.iter().next_back() {
                assert!(max < n_attributes, "attribute {max} out of range");
            }
        }
        FormalContext {
            n_objects: object_attrs.len(),
            n_attributes,
            object_attrs,
        }
    }

    /// Number of objects.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    /// Attributes of one object.
    pub fn attributes_of(&self, object: usize) -> &BTreeSet<usize> {
        &self.object_attrs[object]
    }

    /// Derivation: objects having *all* of `attrs`.
    pub fn extent(&self, attrs: &BTreeSet<usize>) -> BTreeSet<usize> {
        (0..self.n_objects)
            .filter(|&o| attrs.is_subset(&self.object_attrs[o]))
            .collect()
    }

    /// Derivation: attributes shared by *all* of `objects`.
    pub fn intent(&self, objects: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut iter = objects.iter();
        let Some(&first) = iter.next() else {
            return (0..self.n_attributes).collect();
        };
        let mut shared = self.object_attrs[first].clone();
        for &o in iter {
            shared = shared
                .intersection(&self.object_attrs[o])
                .copied()
                .collect();
            if shared.is_empty() {
                break;
            }
        }
        shared
    }

    /// Attribute closure: `intent(extent(attrs))`.
    pub fn closure(&self, attrs: &BTreeSet<usize>) -> BTreeSet<usize> {
        self.intent(&self.extent(attrs))
    }

    /// Enumerate all formal concepts in lectic order (NextClosure),
    /// stopping after `max_concepts` (a lattice can be exponential).
    pub fn concepts(&self, max_concepts: usize) -> Vec<Concept> {
        let mut out = Vec::new();
        let mut intent = self.closure(&BTreeSet::new());
        loop {
            let extent = self.extent(&intent);
            out.push(Concept {
                extent,
                intent: intent.clone(),
            });
            if out.len() >= max_concepts {
                break;
            }
            match self.next_closure(&intent) {
                Some(next) => intent = next,
                None => break,
            }
        }
        out
    }

    /// Ganter's NextClosure step: the lectically next closed attribute
    /// set after `a`, or `None` when `a` is the last one (the full set).
    fn next_closure(&self, a: &BTreeSet<usize>) -> Option<BTreeSet<usize>> {
        for i in (0..self.n_attributes).rev() {
            if a.contains(&i) {
                continue;
            }
            let mut candidate: BTreeSet<usize> = a.iter().copied().filter(|&x| x < i).collect();
            candidate.insert(i);
            let closed = self.closure(&candidate);
            // Valid if the closure adds no attribute smaller than i that
            // wasn't already in a.
            if closed.iter().all(|&x| x >= i || a.contains(&x)) {
                return Some(closed);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[usize]) -> BTreeSet<usize> {
        items.iter().copied().collect()
    }

    /// The classic "live in water / can move / has limbs" toy context.
    fn toy() -> FormalContext {
        // objects: 0=fish, 1=frog, 2=dog, 3=reed
        // attrs:   0=needs water, 1=lives in water, 2=can move, 3=has limbs, 4=is plant
        FormalContext::new(
            5,
            vec![
                set(&[0, 1, 2]),    // fish
                set(&[0, 1, 2, 3]), // frog
                set(&[0, 2, 3]),    // dog
                set(&[0, 1, 4]),    // reed
            ],
        )
    }

    #[test]
    fn derivations() {
        let c = toy();
        assert_eq!(c.extent(&set(&[1])), set(&[0, 1, 3])); // lives in water
        assert_eq!(c.extent(&set(&[1, 3])), set(&[1])); // frog only
        assert_eq!(c.intent(&set(&[0, 1])), set(&[0, 1, 2])); // fish ∧ frog
        assert_eq!(c.intent(&set(&[])), set(&[0, 1, 2, 3, 4])); // all attrs
        assert_eq!(c.extent(&set(&[])), set(&[0, 1, 2, 3])); // all objects
    }

    #[test]
    fn closure_is_idempotent_and_extensive() {
        let c = toy();
        for attrs in [set(&[]), set(&[1]), set(&[2, 3]), set(&[4])] {
            let cl = c.closure(&attrs);
            assert!(attrs.is_subset(&cl), "extensive");
            assert_eq!(c.closure(&cl), cl, "idempotent");
        }
    }

    #[test]
    fn enumerates_all_concepts() {
        let c = toy();
        let concepts = c.concepts(100);
        // Every concept is a valid maximal rectangle.
        for concept in &concepts {
            assert_eq!(c.extent(&concept.intent), concept.extent);
            assert_eq!(c.intent(&concept.extent), concept.intent);
        }
        // Concepts are unique.
        let intents: std::collections::BTreeSet<Vec<usize>> = concepts
            .iter()
            .map(|c| c.intent.iter().copied().collect())
            .collect();
        assert_eq!(intents.len(), concepts.len());
        // The toy context has a known lattice size of 8.
        assert_eq!(concepts.len(), 8);
    }

    #[test]
    fn concepts_bounded() {
        let c = toy();
        assert_eq!(c.concepts(3).len(), 3);
    }

    #[test]
    fn empty_context() {
        let c = FormalContext::new(0, vec![]);
        let concepts = c.concepts(10);
        assert_eq!(concepts.len(), 1); // only the empty concept
        assert!(concepts[0].extent.is_empty());
        assert!(concepts[0].intent.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_attribute() {
        FormalContext::new(2, vec![set(&[5])]);
    }

    #[test]
    fn identical_objects_share_object_concept() {
        let c = FormalContext::new(3, vec![set(&[0, 1]), set(&[0, 1]), set(&[2])]);
        let concepts = c.concepts(50);
        let both = concepts
            .iter()
            .find(|cc| cc.intent == set(&[0, 1]))
            .expect("concept for {0,1}");
        assert_eq!(both.extent, set(&[0, 1]));
    }
}
