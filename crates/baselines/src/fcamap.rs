//! FCA-Map-style matcher: matching via a token-level formal context.
//!
//! FCA-Map builds formal contexts whose objects are ontology elements and
//! whose attributes are lexical tokens, then aligns elements that land in
//! the same concept of the lattice. Here the objects are properties and
//! the attributes are their name tokens; two properties match when their
//! *object concepts* coincide — i.e. their token sets have the same
//! closure, which for a token context means identical token sets. This is
//! the conservative, lexicon-driven behaviour behind FCA-Map's
//! near-perfect precision and limited recall in Table II
//! (P ≈ 0.99, R ≈ 0.34–0.38).

use crate::fca::FormalContext;
use crate::{name_tokens, Matcher};
use leapme_data::model::{Dataset, PropertyKey, PropertyPair};
use std::collections::{BTreeMap, BTreeSet};

/// FCA-Map-style matcher.
#[derive(Debug, Clone, Default)]
pub struct FcaMapMatcher;

impl FcaMapMatcher {
    /// Create the matcher.
    pub fn new() -> Self {
        FcaMapMatcher
    }

    /// Build the property × token formal context for a set of properties.
    /// Returns the context plus the ordered property list (object index →
    /// property) and token list (attribute index → token).
    pub fn build_context(
        properties: &[PropertyKey],
    ) -> (FormalContext, Vec<PropertyKey>, Vec<String>) {
        let mut token_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut per_object: Vec<BTreeSet<String>> = Vec::with_capacity(properties.len());
        for p in properties {
            let tokens: BTreeSet<String> = name_tokens(&p.name).into_iter().collect();
            for t in &tokens {
                let next = token_index.len();
                token_index.entry(t.clone()).or_insert(next);
            }
            per_object.push(tokens);
        }
        let tokens: Vec<String> = token_index.keys().cloned().collect();
        // Re-read indices after sorting keys (BTreeMap iterates sorted, so
        // rebuild the index in sorted order for determinism).
        let sorted_index: BTreeMap<&String, usize> =
            tokens.iter().enumerate().map(|(i, t)| (t, i)).collect();
        let object_attrs: Vec<BTreeSet<usize>> = per_object
            .iter()
            .map(|ts| ts.iter().map(|t| sorted_index[t]).collect())
            .collect();
        (
            FormalContext::new(tokens.len(), object_attrs),
            properties.to_vec(),
            tokens,
        )
    }

    /// Token-closure similarity of two names: 1.0 when the token sets are
    /// identical (same object concept), otherwise 0.0.
    fn concept_equal(name_a: &str, name_b: &str) -> bool {
        let ta: BTreeSet<String> = name_tokens(name_a).into_iter().collect();
        let tb: BTreeSet<String> = name_tokens(name_b).into_iter().collect();
        !ta.is_empty() && ta == tb
    }
}

impl Matcher for FcaMapMatcher {
    fn name(&self) -> &'static str {
        "FCA-Map"
    }

    fn score(&self, _dataset: &Dataset, PropertyPair(a, b): &PropertyPair) -> f64 {
        if Self::concept_equal(&a.name, &b.name) {
            1.0
        } else {
            0.0
        }
    }

    fn threshold(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::SourceId;

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    fn pair(a: &str, b: &str) -> PropertyPair {
        PropertyPair::new(key(0, a), key(1, b))
    }

    fn empty_dataset() -> Dataset {
        Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![],
            Default::default(),
        )
        .unwrap()
    }

    #[test]
    fn identical_token_sets_match() {
        let ds = empty_dataset();
        let m = FcaMapMatcher::new();
        assert_eq!(m.score(&ds, &pair("shutter speed", "Shutter_Speed")), 1.0);
        assert_eq!(m.score(&ds, &pair("speed shutter", "shutter speed")), 1.0);
        assert_eq!(m.score(&ds, &pair("shutterSpeed", "shutter speed")), 1.0);
    }

    #[test]
    fn different_token_sets_do_not_match() {
        let ds = empty_dataset();
        let m = FcaMapMatcher::new();
        assert_eq!(m.score(&ds, &pair("max shutter speed", "shutter speed")), 0.0);
        assert_eq!(m.score(&ds, &pair("megapixels", "resolution")), 0.0);
        assert_eq!(m.score(&ds, &pair("", "resolution")), 0.0);
    }

    #[test]
    fn context_construction() {
        let props = vec![key(0, "shutter speed"), key(1, "speed"), key(2, "iso")];
        let (ctx, objects, tokens) = FcaMapMatcher::build_context(&props);
        assert_eq!(ctx.n_objects(), 3);
        assert_eq!(objects.len(), 3);
        assert_eq!(tokens, vec!["iso", "shutter", "speed"]);
        // "shutter speed" has attributes {shutter, speed}.
        let attrs = ctx.attributes_of(0);
        assert_eq!(attrs.len(), 2);
        // Concepts are consistent.
        let concepts = ctx.concepts(100);
        for c in &concepts {
            assert_eq!(ctx.extent(&c.intent), c.extent);
        }
    }

    #[test]
    fn lattice_groups_equal_names() {
        let props = vec![
            key(0, "shutter speed"),
            key(1, "Shutter Speed"),
            key(2, "iso"),
        ];
        let (ctx, _, tokens) = FcaMapMatcher::build_context(&props);
        let concepts = ctx.concepts(100);
        // The concept whose intent is {shutter, speed} has extent {0, 1}.
        let shutter = tokens.iter().position(|t| t == "shutter").unwrap();
        let speed = tokens.iter().position(|t| t == "speed").unwrap();
        let intent: BTreeSet<usize> = [shutter, speed].into();
        let c = concepts.iter().find(|c| c.intent == intent).unwrap();
        let expected: BTreeSet<usize> = [0usize, 1].into();
        assert_eq!(c.extent, expected);
    }

    #[test]
    fn predict_is_high_precision() {
        let ds = empty_dataset();
        let m = FcaMapMatcher::new();
        let candidates = vec![
            pair("iso", "ISO"),
            pair("iso range", "iso"),
            pair("megapixels", "mp"),
        ];
        let matched = m.predict(&ds, &candidates);
        assert_eq!(matched.len(), 1);
        assert!(matched.contains(&pair("iso", "ISO")));
    }
}
