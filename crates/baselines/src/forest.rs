//! Random forest: bagged CART trees with feature subsampling.
//!
//! Nezhadi et al. evaluate several off-the-shelf classifiers over their
//! similarity features; ensembles of trees are the strongest of that
//! family. The forest averages the leaf probabilities of `n_trees` CART
//! trees, each fitted on a bootstrap sample with a random feature subset
//! considered at each tree (bagging + feature bagging).

use crate::cart::{CartConfig, CartError, DecisionTree};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree CART configuration.
    pub tree: CartConfig,
    /// Fraction of features each tree sees (rounded up, ≥ 1).
    pub feature_fraction: f64,
    /// Seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 25,
            tree: CartConfig {
                max_depth: 6,
                min_samples_split: 6,
            },
            feature_fraction: 0.7,
            seed: 0xF0E5,
        }
    }
}

/// A fitted random forest (binary classification).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>,
    n_features: usize,
}

impl RandomForest {
    /// Fit the forest on feature rows and boolean labels.
    pub fn fit(x: &[Vec<f64>], y: &[bool], cfg: &ForestConfig) -> Result<Self, CartError> {
        if x.is_empty() {
            return Err(CartError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(CartError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.len(),
                y.len()
            )));
        }
        let n_features = x[0].len();
        if n_features == 0 {
            return Err(CartError::ShapeMismatch("zero-width rows".into()));
        }
        let n_sub = ((n_features as f64 * cfg.feature_fraction).ceil() as usize)
            .clamp(1, n_features);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut trees = Vec::with_capacity(cfg.n_trees.max(1));

        for _ in 0..cfg.n_trees.max(1) {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            // Random feature subset (sorted for stable projection).
            let mut features: Vec<usize> = (0..n_features).collect();
            for i in 0..n_sub {
                let j = rng.gen_range(i..n_features);
                features.swap(i, j);
            }
            let mut features: Vec<usize> = features[..n_sub].to_vec();
            features.sort_unstable();

            let bx: Vec<Vec<f64>> = rows
                .iter()
                .map(|&r| features.iter().map(|&f| x[r][f]).collect())
                .collect();
            let by: Vec<bool> = rows.iter().map(|&r| y[r]).collect();
            let tree = DecisionTree::fit(&bx, &by, &cfg.tree)?;
            trees.push((tree, features));
        }
        Ok(RandomForest { trees, n_features })
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean positive-class probability across trees.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training width.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut total = 0.0;
        for (tree, features) in &self.trees {
            let projected: Vec<f64> = features.iter().map(|&f| row[f]).collect();
            total += tree.predict_proba(&projected);
        }
        total / self.trees.len() as f64
    }

    /// Hard decision at probability 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy two-cluster problem a single shallow tree struggles with.
    fn noisy_data(seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let label = i % 2 == 0;
            let center = if label { 0.7 } else { 0.3 };
            // Three informative features with noise + two pure-noise ones.
            x.push(vec![
                center + (next() - 0.5) * 0.4,
                center + (next() - 0.5) * 0.4,
                center + (next() - 0.5) * 0.4,
                next(),
                next(),
            ]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_data(1);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert_eq!(forest.n_trees(), 25);
        assert_eq!(forest.n_features(), 5);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| forest.predict(row) == label)
            .count();
        assert!(correct > 170, "train accuracy {}/200", correct);
    }

    #[test]
    fn forest_beats_single_shallow_tree_on_noise() {
        let (x, y) = noisy_data(2);
        let (test_x, test_y) = noisy_data(99);
        let cfg = ForestConfig {
            n_trees: 30,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&x, &y, &cfg).unwrap();
        let single = DecisionTree::fit(&x, &y, &cfg.tree).unwrap();
        let acc = |f: &dyn Fn(&[f64]) -> bool| {
            test_x
                .iter()
                .zip(&test_y)
                .filter(|(row, &label)| f(row) == label)
                .count()
        };
        let forest_acc = acc(&|r| forest.predict(r));
        let tree_acc = acc(&|r| single.predict(r));
        assert!(
            forest_acc >= tree_acc,
            "forest {forest_acc} vs tree {tree_acc}"
        );
    }

    #[test]
    fn probabilities_are_averaged_and_bounded() {
        let (x, y) = noisy_data(3);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        for row in x.iter().take(20) {
            let p = forest.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_data(4);
        let cfg = ForestConfig::default();
        let a = RandomForest::fit(&x, &y, &cfg).unwrap();
        let b = RandomForest::fit(&x, &y, &cfg).unwrap();
        for row in x.iter().take(10) {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            RandomForest::fit(&[], &[], &ForestConfig::default()),
            Err(CartError::EmptyTrainingSet)
        ));
        assert!(RandomForest::fit(&[vec![1.0]], &[true, false], &ForestConfig::default()).is_err());
        assert!(RandomForest::fit(&[vec![]], &[true], &ForestConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn predict_rejects_wrong_width() {
        let (x, y) = noisy_data(5);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        forest.predict(&[0.0]);
    }
}
