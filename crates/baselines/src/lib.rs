//! Baseline property matchers (paper §V-A).
//!
//! LEAPME is compared against five baselines; this crate reimplements
//! each one's matching core from scratch (DESIGN.md §2 documents the
//! substitutions):
//!
//! * [`aml::AmlMatcher`] — Agreement Maker Light-style unsupervised
//!   lexical ensemble matching with a high-precision threshold;
//! * [`fcamap::FcaMapMatcher`] — FCA-Map-style matching via a formal
//!   concept lattice over property-name tokens (lattice construction in
//!   [`fca`], next-closure algorithm);
//! * [`nezhadi::NezhadiMatcher`] — the supervised baseline of Nezhadi et
//!   al.: classical name-similarity features fed to a from-scratch CART
//!   decision tree ([`cart`]);
//! * [`semprop::SemPropMatcher`] — SemProp-style cascade: syntactic
//!   matcher (SynM) plus embedding-based semantic matchers (SeMa−/SeMa+)
//!   with the paper's thresholds 0.2 / 0.2 / 0.4;
//! * [`lsh::LshMatcher`] — Duan et al.'s instance-based matcher: minhash
//!   signatures ([`minhash`]) over instance-value token sets, banded LSH
//!   with band size 1.
//!
//! All matchers implement [`Matcher`], so the evaluation harness treats
//! them uniformly; [`Matcher::fit`] is a no-op for the unsupervised ones.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aml;
pub mod cart;
pub mod fca;
pub mod forest;
pub mod fcamap;
pub mod lsh;
pub mod minhash;
pub mod nezhadi;
pub mod semprop;

use leapme_data::model::{Dataset, PropertyPair};
use std::collections::BTreeSet;

/// A property matcher: decides which candidate pairs match.
pub trait Matcher {
    /// Human-readable name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Train on labeled pairs. Default: no-op (unsupervised matchers).
    fn fit(&mut self, _dataset: &Dataset, _labeled: &[(PropertyPair, bool)]) {}

    /// Similarity score in `[0, 1]` for one candidate pair.
    fn score(&self, dataset: &Dataset, pair: &PropertyPair) -> f64;

    /// Decision threshold on [`Matcher::score`].
    fn threshold(&self) -> f64;

    /// The candidate pairs judged to match.
    fn predict(&self, dataset: &Dataset, candidates: &[PropertyPair]) -> BTreeSet<PropertyPair> {
        let t = self.threshold();
        candidates
            .iter()
            .filter(|p| self.score(dataset, p) >= t)
            .cloned()
            .collect()
    }
}

/// Lowercased word tokens of a property name (shared by the lexical
/// baselines).
pub(crate) fn name_tokens(name: &str) -> Vec<String> {
    leapme_embedding::tokenize::tokenize(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};

    struct Always(f64);
    impl Matcher for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn score(&self, _d: &Dataset, _p: &PropertyPair) -> f64 {
            self.0
        }
        fn threshold(&self) -> f64 {
            0.5
        }
    }

    #[test]
    fn default_predict_filters_by_threshold() {
        let ds = Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![],
            Default::default(),
        )
        .unwrap();
        let pair = PropertyPair::new(
            PropertyKey::new(SourceId(0), "x"),
            PropertyKey::new(SourceId(1), "y"),
        );
        assert_eq!(Always(0.9).predict(&ds, std::slice::from_ref(&pair)).len(), 1);
        assert_eq!(Always(0.1).predict(&ds, &[pair]).len(), 0);
    }
}
