//! LSH instance-based matcher (Duan et al., ISWC 2012).
//!
//! The only instance-based baseline: each property is fingerprinted by
//! the minhash signature of the token set of its instance *values*;
//! banded LSH (band size 1, the configuration the paper uses) proposes
//! candidates, and candidates are accepted when their estimated Jaccard
//! similarity exceeds a threshold. Property names are ignored entirely,
//! so the matcher works even with meaningless property names — but
//! different value formats for the same semantics hurt its recall
//! (R ≈ 0.21–0.73 in Table II).

use crate::minhash::MinHasher;
use crate::Matcher;
use leapme_data::model::{Dataset, PropertyKey, PropertyPair};
use leapme_embedding::tokenize::tokenize;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Configuration of the LSH matcher.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Number of minhash functions (signature length).
    pub num_hashes: usize,
    /// LSH band size (paper: 1).
    pub band_size: usize,
    /// Estimated-Jaccard acceptance threshold.
    pub jaccard_threshold: f64,
    /// Seed of the hash family.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            num_hashes: 128,
            band_size: 1,
            jaccard_threshold: 0.25,
            seed: 0x15AB,
        }
    }
}

/// The LSH instance-based matcher.
pub struct LshMatcher {
    cfg: LshConfig,
    hasher: MinHasher,
    /// Signature cache per property (values never change within a run).
    cache: Mutex<HashMap<PropertyKey, Vec<u64>>>,
}

impl LshMatcher {
    /// Create with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LshConfig::default())
    }

    /// Create with a custom configuration.
    pub fn with_config(cfg: LshConfig) -> Self {
        LshMatcher {
            hasher: MinHasher::new(cfg.num_hashes, cfg.seed),
            cfg,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The token set of a property's instance values.
    pub fn value_tokens(dataset: &Dataset, key: &PropertyKey) -> HashSet<String> {
        let mut out = HashSet::new();
        for inst in dataset.instances_of(key) {
            out.extend(tokenize(&inst.value));
        }
        out
    }

    fn signature(&self, dataset: &Dataset, key: &PropertyKey) -> Vec<u64> {
        if let Some(sig) = self.cache.lock().expect("no poisoning").get(key) {
            return sig.clone();
        }
        let tokens = Self::value_tokens(dataset, key);
        let sig = self.hasher.signature(tokens.iter().map(String::as_str));
        self.cache
            .lock()
            .expect("no poisoning")
            .insert(key.clone(), sig.clone());
        sig
    }

    /// Whether two signatures share any band (candidate generation). With
    /// band size 1 this is "any equal position".
    fn is_candidate(&self, a: &[u64], b: &[u64]) -> bool {
        a.chunks(self.cfg.band_size)
            .zip(b.chunks(self.cfg.band_size))
            .any(|(ba, bb)| ba == bb && ba.iter().all(|&x| x != u64::MAX))
    }
}

impl Default for LshMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for LshMatcher {
    fn name(&self) -> &'static str {
        "LSH"
    }

    fn score(&self, dataset: &Dataset, PropertyPair(a, b): &PropertyPair) -> f64 {
        let sa = self.signature(dataset, a);
        let sb = self.signature(dataset, b);
        if !self.is_candidate(&sa, &sb) {
            return 0.0;
        }
        let est = MinHasher::estimate_jaccard(&sa, &sb);
        // Normalize into a score where the acceptance threshold maps to
        // the 0.5 decision boundary.
        (est / self.cfg.jaccard_threshold * 0.5).min(1.0)
    }

    fn threshold(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{Instance, SourceId};
    use std::collections::BTreeMap;

    fn dataset() -> Dataset {
        let mk = |s: u16, p: &str, e: &str, v: &str| Instance {
            source: SourceId(s),
            property: p.into(),
            entity: e.into(),
            value: v.into(),
        };
        // Two resolution-ish properties with overlapping value vocab, one
        // color property with disjoint values.
        let instances = vec![
            mk(0, "mp", "e1", "20.1 MP"),
            mk(0, "mp", "e2", "24 MP"),
            mk(0, "mp", "e3", "16 MP"),
            mk(1, "resolution", "x1", "20.1 MP"),
            mk(1, "resolution", "x2", "16 MP"),
            mk(1, "color", "x1", "black"),
            mk(1, "color", "x2", "silver"),
            mk(0, "empty prop", "e1", ""),
        ];
        Dataset::new(
            "toy",
            vec!["a".into(), "b".into()],
            instances,
            BTreeMap::new(),
        )
        .unwrap()
    }

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    #[test]
    fn value_tokens_collects_all_values() {
        let ds = dataset();
        let t = LshMatcher::value_tokens(&ds, &key(0, "mp"));
        assert!(t.contains("mp"));
        assert!(t.contains("20"));
        assert!(t.contains("16"));
        assert!(!t.contains("black"));
    }

    #[test]
    fn overlapping_values_match() {
        let ds = dataset();
        let m = LshMatcher::new();
        let p = PropertyPair::new(key(0, "mp"), key(1, "resolution"));
        let s = m.score(&ds, &p);
        assert!(s >= 0.5, "expected match, got {s}");
    }

    #[test]
    fn disjoint_values_do_not_match() {
        let ds = dataset();
        let m = LshMatcher::new();
        let p = PropertyPair::new(key(0, "mp"), key(1, "color"));
        let s = m.score(&ds, &p);
        assert!(s < 0.5, "expected no match, got {s}");
    }

    #[test]
    fn names_are_ignored() {
        // Same-named properties with disjoint values must NOT match:
        // the matcher is purely instance-based.
        let mk = |s: u16, p: &str, v: &str| Instance {
            source: SourceId(s),
            property: p.into(),
            entity: "e".into(),
            value: v.into(),
        };
        let ds = Dataset::new(
            "toy2",
            vec!["a".into(), "b".into()],
            vec![
                mk(0, "spec", "aaa bbb ccc"),
                mk(1, "spec", "xxx yyy zzz"),
            ],
            BTreeMap::new(),
        )
        .unwrap();
        let m = LshMatcher::new();
        let p = PropertyPair::new(key(0, "spec"), key(1, "spec"));
        assert!(m.score(&ds, &p) < 0.5);
    }

    #[test]
    fn empty_properties_never_match() {
        let ds = dataset();
        let m = LshMatcher::new();
        let p = PropertyPair::new(key(0, "empty prop"), key(1, "color"));
        assert_eq!(m.score(&ds, &p), 0.0);
    }

    #[test]
    fn signature_cache_is_consistent() {
        let ds = dataset();
        let m = LshMatcher::new();
        let p = PropertyPair::new(key(0, "mp"), key(1, "resolution"));
        let s1 = m.score(&ds, &p);
        let s2 = m.score(&ds, &p);
        assert_eq!(s1, s2);
    }

    #[test]
    fn deterministic_across_instances() {
        let ds = dataset();
        let p = PropertyPair::new(key(0, "mp"), key(1, "resolution"));
        let a = LshMatcher::new().score(&ds, &p);
        let b = LshMatcher::new().score(&ds, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_bands_are_stricter() {
        let ds = dataset();
        let loose = LshMatcher::with_config(LshConfig {
            band_size: 1,
            ..LshConfig::default()
        });
        let strict = LshMatcher::with_config(LshConfig {
            band_size: 64,
            ..LshConfig::default()
        });
        let p = PropertyPair::new(key(0, "mp"), key(1, "color"));
        // Strict banding can only reduce candidacy.
        assert!(strict.score(&ds, &p) <= loose.score(&ds, &p) + 1e-12);
    }
}
