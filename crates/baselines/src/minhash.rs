//! MinHash signatures for Jaccard similarity estimation.
//!
//! The LSH baseline (Duan et al. 2012) fingerprints each property by the
//! minhash signature of its instance-token set; equal signature positions
//! estimate the Jaccard similarity of the underlying sets, and banding
//! turns signatures into a candidate-generation index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A family of `k` universal hash functions producing minhash signatures.
#[derive(Debug, Clone)]
pub struct MinHasher {
    // h_i(x) = (a_i * x + b_i) mod p, p = large prime.
    coeffs: Vec<(u64, u64)>,
}

/// Large Mersenne prime used by the universal hash family.
const P: u64 = (1 << 61) - 1;

impl MinHasher {
    /// Create `k` hash functions, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..k)
            .map(|_| (rng.gen_range(1..P), rng.gen_range(0..P)))
            .collect();
        MinHasher { coeffs }
    }

    /// Number of hash functions (signature length).
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    fn item_hash(item: &str) -> u64 {
        // FNV-1a, stable across runs.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in item.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h % P
    }

    /// The minhash signature of a token set.
    ///
    /// An empty set yields a signature of `u64::MAX` sentinels (which
    /// never collide with real minima, so empty sets match nothing).
    pub fn signature<'a>(&self, items: impl IntoIterator<Item = &'a str>) -> Vec<u64> {
        let mut sig = vec![u64::MAX; self.k()];
        for item in items {
            let x = Self::item_hash(item);
            for (s, &(a, b)) in sig.iter_mut().zip(&self.coeffs) {
                let h = (a.wrapping_mul(x).wrapping_add(b)) % P;
                if h < *s {
                    *s = h;
                }
            }
        }
        sig
    }

    /// Estimated Jaccard similarity: fraction of equal signature
    /// positions. Two empty-set signatures estimate 0.0 (not 1.0), since
    /// empty properties carry no evidence.
    pub fn estimate_jaccard(a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        if a.is_empty() {
            return 0.0;
        }
        if a.iter().all(|&x| x == u64::MAX) || b.iter().all(|&x| x == u64::MAX) {
            return 0.0;
        }
        let eq = a.iter().zip(b).filter(|(x, y)| x == y).count();
        eq as f64 / a.len() as f64
    }
}

/// Exact Jaccard similarity of two string sets (reference for tests and
/// for the verification step of the LSH matcher).
pub fn exact_jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Split a signature into bands of `band_size` rows; two signatures are
/// LSH candidates if any band is identical. Band size 1 (the paper's
/// configuration for this baseline) means any equal signature position
/// creates a candidate.
pub fn bands(signature: &[u64], band_size: usize) -> Vec<&[u64]> {
    assert!(band_size > 0, "band size must be positive");
    signature.chunks(band_size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_identical_signatures() {
        let h = MinHasher::new(64, 1);
        let a = h.signature(["mp", "20", "resolution"]);
        let b = h.signature(["resolution", "mp", "20"]);
        assert_eq!(a, b);
        assert_eq!(MinHasher::estimate_jaccard(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_sets_low_estimate() {
        let h = MinHasher::new(128, 2);
        let a = h.signature(["aa", "bb", "cc"]);
        let b = h.signature(["xx", "yy", "zz"]);
        assert!(MinHasher::estimate_jaccard(&a, &b) < 0.1);
    }

    #[test]
    fn empty_sets_never_match() {
        let h = MinHasher::new(16, 3);
        let e = h.signature(std::iter::empty());
        assert_eq!(MinHasher::estimate_jaccard(&e, &e), 0.0);
        let x = h.signature(["a"]);
        assert_eq!(MinHasher::estimate_jaccard(&e, &x), 0.0);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let h = MinHasher::new(512, 4);
        let a_items = ["a", "b", "c", "d", "e", "f"];
        let b_items = ["d", "e", "f", "g", "h", "i"];
        let sig_a = h.signature(a_items);
        let sig_b = h.signature(b_items);
        let est = MinHasher::estimate_jaccard(&sig_a, &sig_b);
        let exact = exact_jaccard(&set(&a_items), &set(&b_items)); // 3/9
        assert!(
            (est - exact).abs() < 0.08,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MinHasher::new(8, 9).signature(["x", "y"]);
        let b = MinHasher::new(8, 9).signature(["x", "y"]);
        assert_eq!(a, b);
        let c = MinHasher::new(8, 10).signature(["x", "y"]);
        assert_ne!(a, c);
    }

    #[test]
    fn banding() {
        let sig = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(bands(&sig, 1).len(), 6);
        assert_eq!(bands(&sig, 2).len(), 3);
        assert_eq!(bands(&sig, 4).len(), 2); // last band shorter
        assert_eq!(bands(&sig, 2)[1], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "band size")]
    fn rejects_zero_band() {
        bands(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn rejects_zero_k() {
        MinHasher::new(0, 0);
    }

    proptest! {
        #[test]
        fn estimate_bounded(items_a in proptest::collection::hash_set("[a-f]{1,3}", 0..10),
                            items_b in proptest::collection::hash_set("[a-f]{1,3}", 0..10)) {
            let h = MinHasher::new(32, 7);
            let a = h.signature(items_a.iter().map(String::as_str));
            let b = h.signature(items_b.iter().map(String::as_str));
            let e = MinHasher::estimate_jaccard(&a, &b);
            prop_assert!((0.0..=1.0).contains(&e));
        }

        #[test]
        fn subset_estimate_positive(items in proptest::collection::hash_set("[a-f]{1,3}", 2..10)) {
            let h = MinHasher::new(64, 8);
            let full = h.signature(items.iter().map(String::as_str));
            prop_assert_eq!(MinHasher::estimate_jaccard(&full, &full), 1.0);
        }

        #[test]
        fn exact_jaccard_axioms(a in proptest::collection::hash_set("[a-d]{1,2}", 0..8),
                                b in proptest::collection::hash_set("[a-d]{1,2}", 0..8)) {
            let j = exact_jaccard(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((exact_jaccard(&b, &a) - j).abs() < 1e-12);
            if !a.is_empty() {
                prop_assert_eq!(exact_jaccard(&a, &a), 1.0);
            }
        }
    }
}
