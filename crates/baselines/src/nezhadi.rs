//! Nezhadi et al.-style supervised baseline.
//!
//! Nezhadi, Shadgar & Osareh (2011) align ontologies by feeding multiple
//! classical similarity measures to an off-the-shelf classifier. Our
//! reimplementation uses the eight name string distances of Table I
//! (rows 8–15) plus a token-overlap Jaccard — *no embeddings, no instance
//! features* — and a from-scratch random forest of CART trees
//! ([`crate::forest`]), the strongest of the off-the-shelf classifier
//! family the original work evaluates.
//! This is the paper's strongest baseline on name features
//! (P ≈ 0.83–0.96 in Table II) but trails LEAPME because it cannot bridge
//! true synonyms.

use crate::forest::{ForestConfig, RandomForest};
use crate::{name_tokens, Matcher};
use leapme_data::model::{Dataset, PropertyPair};
use leapme_textsim::StringDistances;

/// Number of features the matcher derives per pair.
pub const FEATURES: usize = StringDistances::LEN + 1;

/// The supervised Nezhadi-style matcher.
#[derive(Debug, Clone, Default)]
pub struct NezhadiMatcher {
    forest: Option<RandomForest>,
    config: Option<ForestConfig>,
}

impl NezhadiMatcher {
    /// Create an unfitted matcher with default forest hyper-parameters.
    pub fn new() -> Self {
        NezhadiMatcher {
            forest: None,
            config: Some(ForestConfig::default()),
        }
    }

    /// Whether [`Matcher::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        self.forest.is_some()
    }

    /// The classical similarity features of a name pair: the eight Table I
    /// string distances converted to similarities, plus token-set Jaccard.
    pub fn features(name_a: &str, name_b: &str) -> Vec<f64> {
        let dists = StringDistances::compute(name_a, name_b).as_array();
        let mut out: Vec<f64> = dists.iter().map(|d| 1.0 - d).collect();
        let ta: std::collections::BTreeSet<String> = name_tokens(name_a).into_iter().collect();
        let tb: std::collections::BTreeSet<String> = name_tokens(name_b).into_iter().collect();
        let inter = ta.intersection(&tb).count();
        let union = ta.len() + tb.len() - inter;
        out.push(if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        });
        out
    }
}

impl Matcher for NezhadiMatcher {
    fn name(&self) -> &'static str {
        "Nezhadi"
    }

    fn fit(&mut self, _dataset: &Dataset, labeled: &[(PropertyPair, bool)]) {
        if labeled.is_empty() {
            self.forest = None;
            return;
        }
        let x: Vec<Vec<f64>> = labeled
            .iter()
            .map(|(PropertyPair(a, b), _)| Self::features(&a.name, &b.name))
            .collect();
        let y: Vec<bool> = labeled.iter().map(|(_, l)| *l).collect();
        let cfg = self.config.unwrap_or_default();
        self.forest = RandomForest::fit(&x, &y, &cfg).ok();
    }

    fn score(&self, _dataset: &Dataset, PropertyPair(a, b): &PropertyPair) -> f64 {
        match &self.forest {
            Some(forest) => forest.predict_proba(&Self::features(&a.name, &b.name)),
            None => 0.0,
        }
    }

    fn threshold(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};

    fn pair(a: &str, b: &str) -> PropertyPair {
        PropertyPair::new(
            PropertyKey::new(SourceId(0), a),
            PropertyKey::new(SourceId(1), b),
        )
    }

    fn empty_dataset() -> Dataset {
        Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![],
            Default::default(),
        )
        .unwrap()
    }

    fn training_data() -> Vec<(PropertyPair, bool)> {
        vec![
            (pair("resolution", "resolutions"), true),
            (pair("shutter speed", "Shutter Speed"), true),
            (pair("iso range", "iso"), true),
            (pair("screen size", "display size"), true),
            (pair("optical zoom", "zoom"), true),
            (pair("item weight", "weight"), true),
            (pair("resolution", "battery life"), false),
            (pair("shutter speed", "brand"), false),
            (pair("iso", "warranty period"), false),
            (pair("price", "sensor type"), false),
            (pair("color", "focal length"), false),
            (pair("weight", "video resolution"), false),
        ]
    }

    #[test]
    fn feature_vector_shape() {
        let f = NezhadiMatcher::features("a", "b");
        assert_eq!(f.len(), FEATURES);
        // Similarities bounded.
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
        // Identical names are all-ones except possibly jaccard on empty.
        let f = NezhadiMatcher::features("shutter speed", "shutter speed");
        assert!(f.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn unfitted_scores_zero() {
        let m = NezhadiMatcher::new();
        assert!(!m.is_fitted());
        assert_eq!(m.score(&empty_dataset(), &pair("a", "a")), 0.0);
    }

    #[test]
    fn learns_lexical_matching() {
        let ds = empty_dataset();
        let mut m = NezhadiMatcher::new();
        m.fit(&ds, &training_data());
        assert!(m.is_fitted());
        // Held-out lexically similar pair scores high.
        assert!(m.score(&ds, &pair("frame rate", "frame rates")) > 0.5);
        // Lexically unrelated pair scores low.
        assert!(m.score(&ds, &pair("megapixels", "warranty")) < 0.5);
    }

    #[test]
    fn cannot_bridge_synonyms() {
        // The structural weakness vs LEAPME: pure string features cannot
        // see that "megapixels" and "camera resolution" are related.
        let ds = empty_dataset();
        let mut m = NezhadiMatcher::new();
        m.fit(&ds, &training_data());
        assert!(m.score(&ds, &pair("megapixels", "camera resolution")) < 0.5);
    }

    #[test]
    fn empty_fit_resets() {
        let ds = empty_dataset();
        let mut m = NezhadiMatcher::new();
        m.fit(&ds, &training_data());
        m.fit(&ds, &[]);
        assert!(!m.is_fitted());
    }
}
