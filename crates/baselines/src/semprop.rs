//! SemProp-style matcher (Fernandez et al., ICDE 2018).
//!
//! SemProp links schema elements through a cascade: a *syntactic* matcher
//! (SynM) fires on string similarity, and *semantic* matchers based on
//! word embeddings fire on strong positive evidence (SeMa+) unless
//! negative evidence (SeMa−, embedding "decoherence" between the word
//! groups) vetoes the link. The paper configures it with thresholds
//! 0.2 (SynM), 0.2 (SeMa−), and 0.4 (SeMa+), which we adopt as defaults.

use crate::{name_tokens, Matcher};
use leapme_data::model::{Dataset, PropertyPair};
use leapme_embedding::store::{cosine, EmbeddingStore};
use leapme_textsim::jaro;

/// SemProp-style matcher; borrows the embedding store it scores with.
#[derive(Debug)]
pub struct SemPropMatcher<'a> {
    embeddings: &'a EmbeddingStore,
    /// SynM: minimum syntactic similarity.
    pub syn_threshold: f64,
    /// SeMa−: below this minimum pairwise word coherence, veto.
    pub sema_minus: f64,
    /// SeMa+: minimum average embedding similarity to accept.
    pub sema_plus: f64,
}

impl<'a> SemPropMatcher<'a> {
    /// Create with the paper's thresholds (0.2 / 0.2 / 0.4).
    pub fn new(embeddings: &'a EmbeddingStore) -> Self {
        SemPropMatcher {
            embeddings,
            syn_threshold: 0.2,
            sema_minus: 0.2,
            sema_plus: 0.4,
        }
    }

    /// Syntactic similarity (SynM): Jaro–Winkler similarity of the
    /// normalized names, scaled by token overlap so partial-token
    /// coincidences don't dominate.
    pub fn syntactic_similarity(&self, name_a: &str, name_b: &str) -> f64 {
        let ta = name_tokens(name_a);
        let tb = name_tokens(name_b);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        jaro::jaro_winkler_similarity(&ta.join(" "), &tb.join(" "))
    }

    /// Average embedding similarity between the two names' word groups
    /// (SeMa+ evidence): cosine of the average word vectors.
    pub fn semantic_similarity(&self, name_a: &str, name_b: &str) -> f64 {
        let va = self.embeddings.average_text(name_a);
        let vb = self.embeddings.average_text(name_b);
        cosine(&va, &vb).clamp(0.0, 1.0)
    }

    /// Minimum pairwise word coherence (SeMa− evidence): the weakest link
    /// between any known word of one name and its best counterpart in the
    /// other. Names with no known words have zero coherence.
    pub fn coherence(&self, name_a: &str, name_b: &str) -> f64 {
        let wa: Vec<String> = name_tokens(name_a)
            .into_iter()
            .filter(|w| self.embeddings.get(w).is_some())
            .collect();
        let wb: Vec<String> = name_tokens(name_b)
            .into_iter()
            .filter(|w| self.embeddings.get(w).is_some())
            .collect();
        if wa.is_empty() || wb.is_empty() {
            return 0.0;
        }
        let mut min_best = f64::INFINITY;
        for a in &wa {
            let va = self.embeddings.get(a).expect("filtered");
            let best = wb
                .iter()
                .map(|b| cosine(va, self.embeddings.get(b).expect("filtered")))
                .fold(f64::NEG_INFINITY, f64::max);
            min_best = min_best.min(best);
        }
        min_best.clamp(-1.0, 1.0)
    }
}

impl Matcher for SemPropMatcher<'_> {
    fn name(&self) -> &'static str {
        "SemProp"
    }

    fn score(&self, _dataset: &Dataset, PropertyPair(a, b): &PropertyPair) -> f64 {
        // Cascade: syntactic evidence suffices on its own at a high level;
        // otherwise semantic evidence (SeMa+) decides, vetoed by
        // decoherence (SeMa−).
        let syn = self.syntactic_similarity(&a.name, &b.name);
        if syn >= 1.0 - self.syn_threshold {
            return 1.0; // near-identical names
        }
        let sem = self.semantic_similarity(&a.name, &b.name);
        if sem >= self.sema_plus && self.coherence(&a.name, &b.name) >= self.sema_minus {
            return sem.min(0.99);
        }
        // Weak syntactic fallback below the decision threshold.
        (syn * 0.5).min(0.49)
    }

    fn threshold(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};

    fn pair(a: &str, b: &str) -> PropertyPair {
        PropertyPair::new(
            PropertyKey::new(SourceId(0), a),
            PropertyKey::new(SourceId(1), b),
        )
    }

    fn empty_dataset() -> Dataset {
        Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![],
            Default::default(),
        )
        .unwrap()
    }

    /// Embeddings with two semantic clusters: resolution-ish and power-ish.
    fn embeddings() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(3);
        s.insert("megapixels", vec![1.0, 0.1, 0.0]).unwrap();
        s.insert("resolution", vec![0.95, 0.15, 0.0]).unwrap();
        s.insert("mp", vec![0.9, 0.2, 0.0]).unwrap();
        s.insert("battery", vec![0.0, 0.1, 1.0]).unwrap();
        s.insert("power", vec![0.05, 0.15, 0.95]).unwrap();
        s.insert("camera", vec![0.5, 0.5, 0.1]).unwrap();
        s
    }

    #[test]
    fn identical_names_match_syntactically() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        let ds = empty_dataset();
        assert_eq!(m.score(&ds, &pair("ISO Range", "iso range")), 1.0);
    }

    #[test]
    fn synonyms_match_semantically() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        let ds = empty_dataset();
        // Different strings, same embedding cluster → SeMa+ fires.
        let s = m.score(&ds, &pair("megapixels", "resolution"));
        assert!(s >= 0.5, "semantic match failed: {s}");
    }

    #[test]
    fn unrelated_names_rejected() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        let ds = empty_dataset();
        let s = m.score(&ds, &pair("megapixels", "battery"));
        assert!(s < 0.5, "should not match: {s}");
    }

    #[test]
    fn decoherence_vetoes_mixed_groups() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        // "resolution battery" mixes clusters: its weakest word link to
        // "megapixels" is low → coherence veto applies even if the average
        // leans positive.
        let coherence = m.coherence("resolution battery", "megapixels");
        assert!(coherence < 0.5, "expected low coherence, got {coherence}");
    }

    #[test]
    fn unknown_words_fall_back_to_syntax() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        let ds = empty_dataset();
        // Both names OOV: semantic scores are zero; near-identical strings
        // still match.
        assert_eq!(m.score(&ds, &pair("zzz qqq", "zzz qqq")), 1.0);
        assert!(m.score(&ds, &pair("zzz", "qqq")) < 0.5);
    }

    #[test]
    fn similarity_helpers_bounded() {
        let emb = embeddings();
        let m = SemPropMatcher::new(&emb);
        for (a, b) in [("mp", "resolution"), ("", "x"), ("battery", "battery")] {
            assert!((0.0..=1.0).contains(&m.syntactic_similarity(a, b)));
            assert!((0.0..=1.0).contains(&m.semantic_similarity(a, b)));
            assert!((-1.0..=1.0).contains(&m.coherence(a, b)));
        }
    }
}
