//! Criterion microbenchmarks for the performance-critical substrates:
//! string distances, q-gram profiles, feature extraction, embedding
//! lookups, minhash signatures, NN forward/training steps, and
//! end-to-end pair vectorization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leapme::baselines::minhash::MinHasher;
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::embedding::store::EmbeddingStore;
use leapme::features::{instance, pair};
use leapme::nn::matrix::Matrix;
use leapme::nn::network::{Mlp, TrainConfig};
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme::textsim::{damerau, jaro, levenshtein, ngram, qgram, StringDistances};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAME_A: &str = "maximum shutter speed";
const NAME_B: &str = "max shutter-speed (approx.)";

fn bench_textsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("textsim");
    g.bench_function("levenshtein", |b| {
        b.iter(|| levenshtein::distance(black_box(NAME_A), black_box(NAME_B)))
    });
    g.bench_function("damerau_full", |b| {
        b.iter(|| damerau::distance(black_box(NAME_A), black_box(NAME_B)))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro::jaro_winkler_similarity(black_box(NAME_A), black_box(NAME_B)))
    });
    g.bench_function("trigram_kondrak", |b| {
        b.iter(|| ngram::distance(black_box(NAME_A), black_box(NAME_B), 3))
    });
    g.bench_function("qgram_cosine", |b| {
        b.iter(|| qgram::cosine_distance(black_box(NAME_A), black_box(NAME_B), 3))
    });
    g.bench_function("all_eight_distances", |b| {
        b.iter(|| StringDistances::compute(black_box(NAME_A), black_box(NAME_B)))
    });
    g.finish();
}

fn small_embeddings(dim: usize) -> EmbeddingStore {
    let mut store = EmbeddingStore::new(dim);
    let mut rng = StdRng::seed_from_u64(5);
    for word in [
        "maximum", "shutter", "speed", "max", "approx", "camera", "resolution", "sensor", "mp",
        "zoom", "battery", "weight",
    ] {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.insert(word, v).unwrap();
    }
    store
}

fn bench_features(c: &mut Criterion) {
    let store = small_embeddings(50);
    let mut g = c.benchmark_group("features");
    g.bench_function("instance_extract", |b| {
        b.iter(|| instance::extract(black_box("20.1 MP resolution"), &store))
    });
    g.bench_function("string_features_pair", |b| {
        b.iter(|| pair::string_features(black_box(NAME_A), black_box(NAME_B)))
    });
    g.bench_function("embedding_average_text", |b| {
        b.iter(|| store.average_text(black_box("maximum shutter speed of the camera")))
    });
    g.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let hasher = MinHasher::new(128, 1);
    let tokens: Vec<String> = (0..40).map(|i| format!("token{i}")).collect();
    let sig_a = hasher.signature(tokens.iter().map(String::as_str));
    let sig_b = hasher.signature(tokens[20..].iter().map(String::as_str));
    let mut g = c.benchmark_group("minhash");
    g.bench_function("signature_40_tokens_k128", |b| {
        b.iter(|| hasher.signature(black_box(&tokens).iter().map(String::as_str)))
    });
    g.bench_function("estimate_jaccard_k128", |b| {
        b.iter(|| MinHasher::estimate_jaccard(black_box(&sig_a), black_box(&sig_b)))
    });
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let net = Mlp::leapme(137, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let x = Matrix::from_vec(
        32,
        137,
        (0..32 * 137).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    );
    let mut g = c.benchmark_group("nn");
    g.bench_function("forward_batch32_137in", |b| {
        b.iter(|| net.predict_proba(black_box(&x)))
    });
    g.bench_function("train_epoch_batch32_137in", |b| {
        let labels: Vec<usize> = (0..32).map(|i| i % 2).collect();
        b.iter_batched(
            || Mlp::leapme(137, 3),
            |mut net| {
                net.fit(
                    &x,
                    &labels,
                    &TrainConfig {
                        schedule: LrSchedule::constant(1, 1e-3),
                        ..TrainConfig::default()
                    },
                )
                .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    // The two shapes that dominate training and scoring: one minibatch
    // (32×637 · 637×128) and one scoring block (256×637 · 637×128).
    let mut rng = StdRng::seed_from_u64(11);
    let mut rand_matrix = |r: usize, k: usize| {
        Matrix::from_vec(r, k, (0..r * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    };
    let a32 = rand_matrix(32, 637);
    let a256 = rand_matrix(256, 637);
    let w = rand_matrix(637, 128);
    let threads = leapme::nn::threads::thread_count();

    let mut g = c.benchmark_group("matmul");
    g.bench_function("serial_32x637x128", |b| {
        b.iter(|| black_box(&a32).matmul_with_threads(black_box(&w), 1))
    });
    g.bench_function("threaded_32x637x128", |b| {
        b.iter(|| black_box(&a32).matmul_with_threads(black_box(&w), threads))
    });
    g.bench_function("serial_256x637x128", |b| {
        b.iter(|| black_box(&a256).matmul_with_threads(black_box(&w), 1))
    });
    g.bench_function("threaded_256x637x128", |b| {
        b.iter(|| black_box(&a256).matmul_with_threads(black_box(&w), threads))
    });
    g.finish();
}

fn bench_pair_matrix(c: &mut Criterion) {
    // Nested (Vec<Vec<f32>>) vs flat contiguous pair featurization, and
    // the flat path's serial vs threaded fill.
    let dataset = generate(Domain::Cameras, 3);
    let embeddings = small_embeddings(16);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let pairs: Vec<(PropertyKey, PropertyKey)> = dataset
        .cross_source_pairs(&sources)
        .into_iter()
        .map(|PropertyPair(a, b)| (a, b))
        .collect();
    let cfg = FeatureConfig::full();
    let threads = leapme::nn::threads::thread_count();

    let mut g = c.benchmark_group("pair_matrix");
    g.bench_function("nested", |b| {
        b.iter(|| store.pair_matrix(black_box(&pairs), black_box(&cfg)).unwrap())
    });
    g.bench_function("flat_serial", |b| {
        b.iter(|| {
            store
                .pair_matrix_flat_with_threads(black_box(&pairs), black_box(&cfg), 1)
                .unwrap()
        })
    });
    g.bench_function("flat_threaded", |b| {
        b.iter(|| {
            store
                .pair_matrix_flat_with_threads(black_box(&pairs), black_box(&cfg), threads)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    // End-to-end pair vectorization + scoring on a small real dataset.
    let dataset = generate(Domain::Tvs, 1);
    let embeddings = small_embeddings(16);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let mut rng = StdRng::seed_from_u64(2);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::constant(2, 1e-3),
            ..TrainConfig::default()
        },
        hidden: vec![16],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).unwrap();
    let test: Vec<PropertyPair> = sampling::test_pairs(&dataset, &split.train)
        .into_iter()
        .take(256)
        .collect();

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("feature_store_build_tvs", |b| {
        b.iter(|| PropertyFeatureStore::build(black_box(&dataset), black_box(&embeddings)))
    });
    g.bench_function("score_256_pairs", |b| {
        b.iter(|| model.score_pairs(black_box(&store), black_box(&test)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Modest sampling keeps the full suite around a minute while staying
    // well above measurement noise for these micro-scale benches.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_textsim,
    bench_features,
    bench_minhash,
    bench_nn,
    bench_matmul,
    bench_pair_matrix,
    bench_pipeline
}
criterion_main!(benches);
