//! Experiment E6 — ablation of LEAPME's design choices (paper §IV-C/IV-D).
//!
//! The paper motivates (a) a *neural network* classifier because
//! embedding components need nonlinear combination, and (b) a staged
//! learning-rate schedule; it also notes most architecture tweaks do not
//! matter much. This binary quantifies those claims on our reproduction:
//!
//! * classifier: paper MLP (128/64) vs linear model (no hidden layers)
//!   vs small MLP (32) vs wide MLP (256/128);
//! * LR schedule: staged (10×1e-3, 5×1e-4, 5×1e-5) vs constant 1e-3 vs
//!   constant 1e-4, each for 20 epochs;
//! * embedding dimension: 10 / 25 / 50 / 100.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin ablation -- \
//!     [--reps 3] [--seed 42] [--domain phones]
//! ```

use leapme::core::pipeline::LeapmeConfig;
use leapme::core::runner::{run_repeated, EvalMode, RunnerConfig};
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args, MarkdownTable};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 3);
    let seed: u64 = args.get_or("seed", 42);
    let domain = Domain::ALL
        .into_iter()
        .find(|d| d.name() == args.get("domain").unwrap_or("phones"))
        .expect("known domain");

    let dataset = generate(domain, seed);
    let base_dim = 50;
    let embeddings = prepare_embeddings(&[domain], base_dim, seed);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    let mut md = MarkdownTable::new(&["Ablation", "Variant", "P", "R", "F1", "±F1"]);
    println!(
        "{:<12} {:<26} {:>6} {:>6} {:>6} {:>6}",
        "ablation", "variant", "P", "R", "F1", "±F1"
    );
    let mut run = |ablation: &str,
                   variant: &str,
                   store: &PropertyFeatureStore,
                   leapme: LeapmeConfig| {
        let runner = RunnerConfig {
            train_fraction: 0.8,
            repetitions: reps,
            eval: EvalMode::SampledExamples,
            leapme,
            base_seed: seed,
            ..RunnerConfig::default()
        };
        let (summary, _) = run_repeated(&dataset, store, &runner).expect("run");
        println!(
            "{:<12} {:<26} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            ablation,
            variant,
            summary.precision_mean,
            summary.recall_mean,
            summary.f1_mean,
            summary.f1_std
        );
        md.row(&[
            ablation.into(),
            variant.into(),
            format!("{:.3}", summary.precision_mean),
            format!("{:.3}", summary.recall_mean),
            format!("{:.3}", summary.f1_mean),
            format!("{:.3}", summary.f1_std),
        ]);
    };

    // --- classifier architecture ---
    for (variant, hidden) in [
        ("linear (no hidden)", vec![]),
        ("mlp 32", vec![32]),
        ("paper mlp 128/64", vec![128, 64]),
        ("wide mlp 256/128", vec![256, 128]),
    ] {
        run(
            "classifier",
            variant,
            &store,
            LeapmeConfig {
                hidden,
                ..LeapmeConfig::default()
            },
        );
    }

    // --- learning-rate schedule ---
    for (variant, schedule) in [
        ("staged (paper)", LrSchedule::leapme()),
        ("constant 1e-3 ×20", LrSchedule::constant(20, 1e-3)),
        ("constant 1e-4 ×20", LrSchedule::constant(20, 1e-4)),
    ] {
        run(
            "lr-schedule",
            variant,
            &store,
            LeapmeConfig {
                train: TrainConfig {
                    schedule,
                    ..TrainConfig::default()
                },
                ..LeapmeConfig::default()
            },
        );
    }

    // --- regularization (not used by the paper; measures headroom) ---
    for (variant, dropout, weight_decay) in [
        ("none (paper)", 0.0f32, 0.0f32),
        ("dropout 0.2", 0.2, 0.0),
        ("weight decay 1e-4", 0.0, 1e-4),
        ("dropout 0.2 + wd 1e-4", 0.2, 1e-4),
    ] {
        run(
            "regularizer",
            variant,
            &store,
            LeapmeConfig {
                train: TrainConfig {
                    dropout,
                    weight_decay,
                    ..TrainConfig::default()
                },
                ..LeapmeConfig::default()
            },
        );
    }

    // --- embedding dimension ---
    for dim in [10usize, 25, 50, 100] {
        let emb = prepare_embeddings(&[domain], dim, seed);
        let store_d = PropertyFeatureStore::build(&dataset, &emb);
        run(
            "embed-dim",
            &format!("dim {dim}"),
            &store_d,
            LeapmeConfig::default(),
        );
    }

    let mut report = String::new();
    writeln!(
        report,
        "# Design-choice ablations (E6)\n\nDomain {}, 80% training sources, {reps} reps, seed {seed}.\n",
        domain.name()
    )
    .unwrap();
    report.push_str(&md.render());
    leapme_bench::write_result("ablation.md", &report);
}
