//! PR benchmark — wall-clock comparison of the serial vs threaded hot
//! path on a synthetic multi-source corpus (≥ 5 000 candidate pairs).
//!
//! Measures the four pipeline stages end to end in a single process:
//!
//! * **build** — `PropertyFeatureStore::build` (per-property extraction),
//! * **featurize** — `pair_matrix_flat` over the full candidate space,
//! * **train** — `Leapme::fit` (minibatch MLP, paper schedule),
//! * **score** — scoring the full candidate space.
//!
//! Each stage runs once with `LEAPME_THREADS=1` (serial) and once with
//! the machine's available parallelism, flipping the mode at runtime via
//! the environment override. Results (and the measured speedups) go to
//! `BENCH_PR1.json` in the repository root.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin bench -- [--sources 16] [--dim 50] [--seed 42]
//! ```

use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::data::spec::{generate_dataset, EntityCount};
use leapme::nn::threads::THREADS_ENV;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// Wall times of the four stages, in seconds.
#[derive(Debug, Clone, Serialize)]
struct StageTimes {
    threads: usize,
    build_s: f64,
    featurize_s: f64,
    train_s: f64,
    score_s: f64,
    total_s: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    cores: usize,
    sources: usize,
    properties: usize,
    pairs: usize,
    feature_dim: usize,
    serial: StageTimes,
    parallel: StageTimes,
    speedup_build: f64,
    speedup_featurize: f64,
    speedup_train: f64,
    speedup_score: f64,
    speedup_total: f64,
}

fn run_stages(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    pairs: &[PropertyPair],
    seed: u64,
    threads: usize,
) -> StageTimes {
    std::env::set_var(THREADS_ENV, threads.to_string());

    let t = Instant::now();
    let store = PropertyFeatureStore::build(dataset, embeddings);
    let build_s = t.elapsed().as_secs_f64();

    let keyed: Vec<(PropertyKey, PropertyKey)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.clone(), b.clone()))
        .collect();
    let t = Instant::now();
    let flat = store
        .pair_matrix_flat(&keyed, &FeatureConfig::full())
        .expect("featurize");
    let featurize_s = t.elapsed().as_secs_f64();
    assert_eq!(flat.rows, pairs.len());

    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.5, &mut rng).expect("split");
    let train_pairs = sampling::training_pairs(dataset, &split.train, 2, &mut rng);
    let t = Instant::now();
    let model = Leapme::fit(&store, &train_pairs, &LeapmeConfig::default()).expect("fit");
    let train_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let scores = model
        .score_pairs_parallel(&store, pairs, threads)
        .expect("score");
    let score_s = t.elapsed().as_secs_f64();
    assert_eq!(scores.len(), pairs.len());

    StageTimes {
        threads,
        build_s,
        featurize_s,
        train_s,
        score_s,
        total_s: build_s + featurize_s + train_s + score_s,
    }
}

fn main() {
    let args = Args::parse();
    let sources: usize = args.get_or("sources", 16);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let spec = Domain::Cameras.spec();
    let mut cfg = Domain::Cameras.generator_config();
    cfg.n_sources = sources;
    cfg.entities = EntityCount::Balanced(40);
    let dataset = generate_dataset(&spec, &cfg, seed);
    let embeddings = prepare_embeddings(&[Domain::Cameras], dim, seed);

    let all_sources: Vec<SourceId> = (0..sources).map(|i| SourceId(i as u16)).collect();
    let pairs = dataset.cross_source_pairs(&all_sources);
    assert!(
        pairs.len() >= 5000,
        "corpus too small: {} pairs (raise --sources)",
        pairs.len()
    );
    println!(
        "corpus: {} sources, {} properties, {} candidate pairs, {} cores",
        sources,
        dataset.properties().len(),
        pairs.len(),
        cores
    );

    // Warm-up pass (untimed) so allocator and page-cache state is
    // comparable between the two measured runs.
    let _ = run_stages(&dataset, &embeddings, &pairs, seed, 1);

    let serial = run_stages(&dataset, &embeddings, &pairs, seed, 1);
    let parallel = run_stages(&dataset, &embeddings, &pairs, seed, cores);
    std::env::remove_var(THREADS_ENV);

    let ratio = |s: f64, p: f64| if p > 0.0 { s / p } else { f64::NAN };
    let report = BenchReport {
        cores,
        sources,
        properties: dataset.properties().len(),
        pairs: pairs.len(),
        feature_dim: FeatureConfig::full().feature_count(dim),
        speedup_build: ratio(serial.build_s, parallel.build_s),
        speedup_featurize: ratio(serial.featurize_s, parallel.featurize_s),
        speedup_train: ratio(serial.train_s, parallel.train_s),
        speedup_score: ratio(serial.score_s, parallel.score_s),
        speedup_total: ratio(serial.total_s, parallel.total_s),
        serial,
        parallel,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    std::fs::write("BENCH_PR1.json", format!("{json}\n")).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");
}
