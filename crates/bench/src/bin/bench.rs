//! PR benchmark — wall-clock comparison of the serial vs threaded hot
//! path on a synthetic multi-source corpus (≥ 5 000 candidate pairs).
//!
//! Measures the four pipeline stages end to end in a single process:
//!
//! * **build** — `PropertyFeatureStore::build` (per-property extraction),
//! * **featurize** — `pair_matrix_flat` over the full candidate space,
//! * **train** — `Leapme::fit` (minibatch MLP, paper schedule),
//! * **score** — scoring the full candidate space.
//!
//! Each stage runs once with `LEAPME_THREADS=1` (serial) and once with
//! `--threads` workers (default: the machine's available parallelism),
//! flipping the mode at runtime via the environment override. The report
//! records the *requested* thread count, the *effective* count the
//! kernels resolve from the environment, and the detected core count —
//! and warns when they disagree (an override that did not stick, or
//! oversubscription past the physical cores). On a single-core machine
//! the "parallel" pass would be the serial path measured twice, so it is
//! *skipped*: the serial stage times are copied over, every speedup is
//! exactly 1.0, and the report flags the mode with
//! `parallel_unmeasured: true`. Results, the measured speedups, and a
//! comparison against the previous PR's `BENCH_PR6.json` baseline (same
//! thread count only) go to `--out` (default `BENCH_PR7.json`), written
//! atomically.
//!
//! Three featurization-specific passes complement the stage times:
//!
//! * **featurize_breakdown** — serial per-substage minima over the same
//!   workload: character/token features, embedding averaging, pair name
//!   distances, and pair-vector assembly (the |a−b| kernel sweep). Name
//!   distances are timed twice — through the pipeline path (canonical
//!   pair-table build + per-pair lookups) and uncached per pair, the
//!   semantics every earlier PR's `name_distances_s` measured — plus a
//!   per-kernel split of the eight distance kernels, and the dedupe
//!   stats (unique forms, table entries, hit counters) the table run
//!   produced.
//! * **warm_cache** — a cold `PropertyFeatureStore::build` against
//!   loading the same store back from a persisted feature cache,
//!   verifying the loaded store is bitwise identical.
//! * **quantized** — scoring the full candidate space through the f32
//!   reference against the int8 path (calibration gate included), with
//!   the calibration and whole-run max probability error.
//!
//! Each mode's stage times are the per-stage minima over `--repeats`
//! runs (default 3): the workload is deterministic, so the minimum
//! estimates its cost and damps scheduler noise on shared machines. The
//! serial and parallel passes are interleaved so slow machine drift
//! (frequency scaling, thermal state) affects both modes equally.
//!
//! A final pass measures the durability tax: the same training run with
//! a checkpoint written after every epoch versus none, reported as
//! milliseconds of overhead per epoch.
//!
//! The **retrieval** section benchmarks sublinear candidate generation
//! (DESIGN.md §12) at stress scale: a `--stress`-property dataset from
//! the stress generator (default 100 000), a hash-derived embedding
//! store, HNSW and name-LSH index build times, top-k query throughput,
//! candidates scored against the full n² cross-source space, ANN pair
//! completeness against the brute-force oracle on a subsampled query
//! slice, and ground-truth completeness of the combined candidate set.
//! `--stress 0` skips the section.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin bench -- \
//!     [--sources 16] [--dim 50] [--seed 42] [--threads N] [--repeats 3] \
//!     [--stress 100000] [--stress-dim 24] [--retrieval-k 8] \
//!     [--out BENCH_PR7.json]
//! ```

use leapme::core::feature_cache;
use leapme::core::pipeline::{DurableFitOptions, Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::data::io::atomic_write;
use leapme::data::spec::{generate_dataset, EntityCount};
use leapme::nn::threads::{thread_count, THREADS_ENV};
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall times of the four stages, in seconds, plus the thread counts the
/// run asked for and actually got.
#[derive(Debug, Clone, Serialize)]
struct StageTimes {
    threads_requested: usize,
    threads_effective: usize,
    build_s: f64,
    featurize_s: f64,
    train_s: f64,
    score_s: f64,
    total_s: f64,
}

/// The fields of the previous PR's report this one compares against.
#[derive(Debug, Deserialize)]
struct BaselineStage {
    threads_effective: usize,
    build_s: f64,
    featurize_s: f64,
    train_s: f64,
    score_s: f64,
}

#[derive(Debug, Deserialize)]
struct Baseline {
    pairs: usize,
    serial: BaselineStage,
    parallel: BaselineStage,
}

/// Speedup of this PR over the `BENCH_PR6.json` baseline at an equal
/// thread count (baseline seconds / current seconds; > 1 is faster).
#[derive(Debug, Serialize)]
struct VsBaseline {
    threads: usize,
    build_speedup: f64,
    featurize_speedup: f64,
    train_speedup: f64,
    score_speedup: f64,
}

/// Serial minima of the eight string-distance kernels, each timed in
/// isolation over the normalized name pair of every candidate pair with
/// shared scratch buffers — the same per-call shape `StringDistances::
/// compute_with` uses. The banded OSA/Damerau times include the benefit
/// of the Myers bound but not its cost (it is timed separately).
#[derive(Debug, Serialize)]
struct NameKernelTimes {
    /// Bit-parallel Myers Levenshtein (row 9, and the band bound for
    /// rows 8 and 10).
    myers_levenshtein_s: f64,
    /// Banded optimal string alignment (row 8).
    osa_banded_s: f64,
    /// Banded unrestricted Damerau–Levenshtein (row 10).
    damerau_banded_s: f64,
    /// Longest common substring (row 11).
    lcs_s: f64,
    /// Positional 3-gram distance (row 12).
    trigram_s: f64,
    /// Shared 3-gram profiles → cosine + Jaccard (rows 13–14).
    trigram_profiles_s: f64,
    /// Jaro–Winkler (row 15).
    jaro_winkler_s: f64,
}

/// What the global pair-dedupe table did for the name-distance pass:
/// how far the candidate space collapsed and which path served lookups.
#[derive(Debug, Serialize)]
struct PairDedupeStats {
    /// Distinct normalized name forms across all properties.
    unique_name_forms: usize,
    /// Form pairs actually computed (the upper-triangular table).
    table_entries: usize,
    /// Per-pair lookups served by the table during the timed pass.
    table_hits: u64,
    /// Lookups served by the legacy per-store string cache (0 when the
    /// table is active).
    string_cache_hits: u64,
    /// Lookups that fell through to a fresh kernel computation.
    string_cache_misses: u64,
}

/// Serial wall times of the featurization substages, each measured in
/// isolation over the same corpus/pair workload as the stage pass.
#[derive(Debug, Serialize)]
struct FeaturizeBreakdown {
    /// Character- and token-feature extraction over every instance value.
    char_token_s: f64,
    /// Streaming embedding averaging over every instance value.
    embedding_average_s: f64,
    /// The 8 pair name distances over every candidate pair through the
    /// pipeline path: canonical pair-table build plus per-pair lookups
    /// (measured via the names/non-embeddings feature configuration on a
    /// fresh store each repeat).
    name_distances_s: f64,
    /// The same workload computed uncached, one kernel pass per pair —
    /// the exact semantics of `name_distances_s` in PR5 and earlier, for
    /// apples-to-apples kernel comparisons across reports.
    name_distances_uncached_s: f64,
    /// Per-kernel split of the uncached workload.
    name_kernels: NameKernelTimes,
    /// What the dedupe table collapsed the workload to.
    pair_dedupe: PairDedupeStats,
    /// Pair-vector assembly: the |a−b| kernel over every candidate pair.
    assembly_s: f64,
}

/// Full-candidate-space scoring through the f32 reference network
/// against the opt-in int8 quantized path (its calibration gate and
/// potential fallback included in the timing — it is what a `--quantized`
/// run pays).
#[derive(Debug, Serialize)]
struct QuantizedBench {
    /// Exact f32 scoring of every candidate pair, seconds.
    score_f32_s: f64,
    /// Quantized scoring of the same pairs, seconds.
    score_int8_s: f64,
    /// `score_f32_s / score_int8_s` (> 1 means int8 is faster).
    int8_speedup: f64,
    /// Whether the calibration gate kept the int8 path (false = the run
    /// fell back to exact f32 scoring).
    used_quantized: bool,
    /// Max |f32 − int8| class-1 probability on the calibration block.
    calibration_max_abs_error: f32,
    /// Pairs in the calibration block.
    calibration_pairs: usize,
    /// Max |f32 − int8| probability difference over the whole run
    /// (0 when the gate fell back, because the outputs are identical).
    full_run_max_abs_error: f32,
}

/// Cold featurization vs loading the persisted feature cache.
#[derive(Debug, Serialize)]
struct WarmCache {
    /// `PropertyFeatureStore::build` from scratch, seconds.
    cold_build_s: f64,
    /// Loading the same store from the feature-cache file, seconds.
    cache_load_s: f64,
    /// Whether the load path reported a fingerprint match.
    cache_hit: bool,
    /// Whether every loaded property vector is bitwise identical to the
    /// freshly built one.
    store_identical: bool,
    /// `cold_build_s / cache_load_s` — what a warm rerun saves.
    featurize_speedup: f64,
}

/// Sublinear candidate generation at stress scale: index build times,
/// query throughput, and retrieval quality against the full n² space
/// and the brute-force oracle (DESIGN.md §12).
#[derive(Debug, Serialize)]
struct RetrievalBench {
    /// Properties in the stress dataset.
    stress_properties: usize,
    /// Sources the generator spread them over.
    stress_sources: usize,
    /// Dimension of the hash-derived embedding store.
    embedding_dim: usize,
    /// Top-k retrieved per property (per retriever).
    k: usize,
    /// `PropertyVectors::build` — embedding + normalization pass.
    vectorize_s: f64,
    /// HNSW graph construction, seconds.
    index_build_s: f64,
    /// Name-LSH fingerprint + bucketing, seconds.
    lsh_build_s: f64,
    /// ANN top-k queries per second (one query per property).
    queries_per_s: f64,
    /// Name-LSH top-k queries per second.
    lsh_queries_per_s: f64,
    /// Unique cross-source pairs from the ANN retriever alone.
    candidates_ann: usize,
    /// Unique cross-source pairs from the name-LSH retriever alone.
    candidates_lsh: usize,
    /// Unique pairs in the union (the `combined` blocking mode).
    candidates_combined: usize,
    /// Full cross-source pair space (never materialized — counted).
    full_space: usize,
    /// `candidates_combined / full_space` — the fraction of n² actually
    /// scored. The acceptance gate wants ≤ 0.05 at 100k properties.
    candidates_scored_ratio: f64,
    /// Fraction of the brute-force oracle's top-k the ANN index
    /// recovered, over the subsampled query slice.
    pair_completeness: f64,
    /// Queries in the oracle subsample.
    oracle_queries: usize,
    /// Fraction of ground-truth pairs present in the combined candidate
    /// set (completeness against the labels rather than the oracle).
    gt_pair_completeness: f64,
}

/// Cost of per-epoch checkpointing during training: the same fit run
/// with a checkpoint written after every epoch vs none at all.
#[derive(Debug, Serialize)]
struct CheckpointOverhead {
    epochs: usize,
    fit_s: f64,
    fit_checkpointed_s: f64,
    overhead_ms_per_epoch: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    /// Whether the fault-injection hooks were compiled into this
    /// binary. Must be `false` for any benchmark that counts: the
    /// chaos stage of scripts/verify.sh greps for it.
    faults_enabled: bool,
    cores: usize,
    /// `true` when only one core is available: the "parallel" stage
    /// times are then the serial path measured a second time, and none
    /// of the `speedup_*` ratios say anything about multithreading.
    parallel_unmeasured: bool,
    sources: usize,
    properties: usize,
    pairs: usize,
    feature_dim: usize,
    serial: StageTimes,
    parallel: StageTimes,
    speedup_build: f64,
    speedup_featurize: f64,
    speedup_train: f64,
    speedup_score: f64,
    speedup_total: f64,
    featurize_breakdown: FeaturizeBreakdown,
    warm_cache: WarmCache,
    checkpoint: CheckpointOverhead,
    quantized: QuantizedBench,
    /// `None` only when the section was skipped with `--stress 0`.
    retrieval: Option<RetrievalBench>,
    vs_pr6_serial: Option<VsBaseline>,
    vs_pr6_parallel: Option<VsBaseline>,
}

/// Warn when the thread counts a run requested, resolved, and has
/// hardware for disagree with each other.
fn warn_thread_mismatch(requested: usize, effective: usize, cores: usize) {
    if effective != requested {
        eprintln!(
            "warning: requested {requested} worker threads but the kernels \
             resolved {effective} (is {THREADS_ENV} being overridden elsewhere?)"
        );
    }
    if effective > cores {
        eprintln!(
            "warning: effective thread count {effective} exceeds the \
             {cores} detected core(s); expect oversubscription, not speedup"
        );
    }
}

fn run_stages(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    pairs: &[PropertyPair],
    seed: u64,
    requested: usize,
    cores: usize,
) -> StageTimes {
    std::env::set_var(THREADS_ENV, requested.to_string());
    let effective = thread_count();
    warn_thread_mismatch(requested, effective, cores);

    let t = Instant::now();
    let store = PropertyFeatureStore::build(dataset, embeddings);
    let build_s = t.elapsed().as_secs_f64();

    let keyed: Vec<(PropertyKey, PropertyKey)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.clone(), b.clone()))
        .collect();
    let t = Instant::now();
    let flat = store
        .pair_matrix_flat(&keyed, &FeatureConfig::full())
        .expect("featurize");
    let featurize_s = t.elapsed().as_secs_f64();
    assert_eq!(flat.rows, pairs.len());

    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.5, &mut rng).expect("split");
    let train_pairs = sampling::training_pairs(dataset, &split.train, 2, &mut rng);
    let t = Instant::now();
    let model = Leapme::fit(&store, &train_pairs, &LeapmeConfig::default()).expect("fit");
    let train_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let scores = model
        .score_pairs_parallel(&store, pairs, effective)
        .expect("score");
    let score_s = t.elapsed().as_secs_f64();
    assert_eq!(scores.len(), pairs.len());

    StageTimes {
        threads_requested: requested,
        threads_effective: effective,
        build_s,
        featurize_s,
        train_s,
        score_s,
        total_s: build_s + featurize_s + train_s + score_s,
    }
}

/// Fold one run into the per-stage minima accumulated so far.
fn min_stages(best: Option<StageTimes>, run: StageTimes) -> StageTimes {
    match best {
        None => run,
        Some(b) => StageTimes {
            build_s: b.build_s.min(run.build_s),
            featurize_s: b.featurize_s.min(run.featurize_s),
            train_s: b.train_s.min(run.train_s),
            score_s: b.score_s.min(run.score_s),
            ..b
        },
    }
}

/// Run both modes `repeats` times and keep each mode's per-stage
/// minima — the workload is deterministic, so the minimum estimates its
/// cost and damps scheduler noise on shared machines. The serial and
/// parallel passes are *interleaved* (serial, parallel, serial, …)
/// rather than blocked, so slow machine drift (frequency scaling,
/// thermal state, noisy neighbours) hits both modes equally instead of
/// penalizing whichever mode runs last. `total_s` is the sum of the
/// per-stage minima.
///
/// On a single-core machine (`parallel_unmeasured`) the parallel pass
/// would just re-measure the serial path, so it is skipped entirely:
/// the serial minima are copied into the parallel slot (speedups come
/// out exactly 1.0) and the repeats budget is spent on serial runs.
struct MinOfPlan {
    seed: u64,
    parallel_threads: usize,
    cores: usize,
    repeats: usize,
    parallel_unmeasured: bool,
}

fn run_modes_min_of(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    pairs: &[PropertyPair],
    plan: &MinOfPlan,
) -> (StageTimes, StageTimes) {
    let mut serial: Option<StageTimes> = None;
    let mut parallel: Option<StageTimes> = None;
    for _ in 0..plan.repeats.max(1) {
        let run = run_stages(dataset, embeddings, pairs, plan.seed, 1, plan.cores);
        serial = Some(min_stages(serial, run));
        if !plan.parallel_unmeasured {
            let run = run_stages(
                dataset,
                embeddings,
                pairs,
                plan.seed,
                plan.parallel_threads,
                plan.cores,
            );
            parallel = Some(min_stages(parallel, run));
        }
    }
    let finish = |best: Option<StageTimes>| {
        let mut best = best.expect("repeats >= 1");
        best.total_s = best.build_s + best.featurize_s + best.train_s + best.score_s;
        best
    };
    let serial = finish(serial);
    let parallel = match parallel {
        Some(p) => finish(Some(p)),
        None => serial.clone(),
    };
    (serial, parallel)
}

/// Measure the durability tax: `Leapme::fit_durable` with a checkpoint
/// written after every epoch against the same fit with checkpointing
/// off, as the per-stage minimum over `repeats` runs. Reported per
/// epoch so the number stays comparable across schedules.
fn measure_checkpoint_overhead(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    seed: u64,
    repeats: usize,
) -> CheckpointOverhead {
    let store = PropertyFeatureStore::build(dataset, embeddings);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.5, &mut rng).expect("split");
    let train_pairs = sampling::training_pairs(dataset, &split.train, 2, &mut rng);
    let cfg = LeapmeConfig::default();
    let epochs = cfg.train.schedule.total_epochs();
    let ckpt_path = std::env::temp_dir().join("leapme_bench_overhead.ckpt");

    let mut fit_s = f64::INFINITY;
    let mut fit_checkpointed_s = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        Leapme::fit_durable(&store, &train_pairs, &cfg, &DurableFitOptions::default())
            .expect("fit without checkpointing");
        fit_s = fit_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        Leapme::fit_durable(
            &store,
            &train_pairs,
            &cfg,
            &DurableFitOptions {
                checkpoint_path: Some(&ckpt_path),
                checkpoint_every: 1,
                ..Default::default()
            },
        )
        .expect("fit with per-epoch checkpointing");
        fit_checkpointed_s = fit_checkpointed_s.min(t.elapsed().as_secs_f64());
    }
    std::fs::remove_file(&ckpt_path).ok();
    CheckpointOverhead {
        epochs,
        fit_s,
        fit_checkpointed_s,
        overhead_ms_per_epoch: (fit_checkpointed_s - fit_s) * 1000.0 / epochs.max(1) as f64,
    }
}

/// Per-kernel serial minima over every candidate pair's normalized
/// names, with shared scratch buffers. The Myers pass doubles as the
/// band bound for the OSA/Damerau kernels, exactly as
/// `StringDistances::compute_with` wires them.
fn measure_name_kernels(norm_pairs: &[(String, String)], repeats: usize) -> NameKernelTimes {
    use leapme::textsim::{damerau, jaro, lcs, myers, ngram, osa, qgram, DistanceScratch};
    use std::hint::black_box;
    let mut scratch = DistanceScratch::new();
    let mut levs = vec![0usize; norm_pairs.len()];

    let mut times = NameKernelTimes {
        myers_levenshtein_s: f64::INFINITY,
        osa_banded_s: f64::INFINITY,
        damerau_banded_s: f64::INFINITY,
        lcs_s: f64::INFINITY,
        trigram_s: f64::INFINITY,
        trigram_profiles_s: f64::INFINITY,
        jaro_winkler_s: f64::INFINITY,
    };
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        for (i, (a, b)) in norm_pairs.iter().enumerate() {
            levs[i] = myers::distance_with(a, b, &mut scratch);
        }
        times.myers_levenshtein_s = times.myers_levenshtein_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (i, (a, b)) in norm_pairs.iter().enumerate() {
            black_box(osa::distance_bounded_with(a, b, levs[i], &mut scratch));
        }
        times.osa_banded_s = times.osa_banded_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (i, (a, b)) in norm_pairs.iter().enumerate() {
            black_box(damerau::distance_bounded_with(a, b, levs[i], &mut scratch));
        }
        times.damerau_banded_s = times.damerau_banded_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (a, b) in norm_pairs {
            black_box(lcs::substring_distance_with(a, b, &mut scratch));
        }
        times.lcs_s = times.lcs_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (a, b) in norm_pairs {
            black_box(ngram::normalized_distance_with(a, b, 3, &mut scratch));
        }
        times.trigram_s = times.trigram_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (a, b) in norm_pairs {
            black_box(qgram::trigram_distances_with(a, b, &mut scratch));
        }
        times.trigram_profiles_s = times.trigram_profiles_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for (a, b) in norm_pairs {
            black_box(jaro::jaro_winkler_distance_with(a, b, &mut scratch));
        }
        times.jaro_winkler_s = times.jaro_winkler_s.min(t.elapsed().as_secs_f64());
    }
    times
}

/// Serial substage minima over `repeats` runs: the pieces of
/// featurization timed in isolation through the same public entry points
/// the pipeline uses.
fn measure_featurize_breakdown(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    store: &PropertyFeatureStore,
    pairs: &[PropertyPair],
    repeats: usize,
) -> FeaturizeBreakdown {
    use leapme::features::{chars, pair, property, tokens};
    use std::hint::black_box;
    let values: Vec<&str> = dataset
        .instances()
        .iter()
        .map(|i| i.value.as_str())
        .collect();
    let mut avg = vec![0.0f32; embeddings.dim()];
    let mut diff = vec![0.0f32; property::len(embeddings.dim())];
    let keyed: Vec<(PropertyKey, PropertyKey)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.clone(), b.clone()))
        .collect();
    // The pipeline path computes name distances under this configuration
    // only — the mask keeps exactly the 8 string-distance columns.
    let names_cfg = FeatureConfig {
        scope: FeatureScope::Names,
        kind: FeatureKind::NonEmbeddings,
    };
    let norm_pairs: Vec<(String, String)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (pair::normalize_name(&a.name), pair::normalize_name(&b.name)))
        .collect();

    let mut char_token_s = f64::INFINITY;
    let mut embedding_average_s = f64::INFINITY;
    let mut name_distances_s = f64::INFINITY;
    let mut name_distances_uncached_s = f64::INFINITY;
    let mut assembly_s = f64::INFINITY;
    let mut pair_dedupe = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        for v in &values {
            black_box(chars::extract(v));
            black_box(tokens::extract(v));
        }
        char_token_s = char_token_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for v in &values {
            embeddings.average_text_into(v, &mut avg);
            black_box(&avg);
        }
        embedding_average_s = embedding_average_s.min(t.elapsed().as_secs_f64());

        // Pipeline path: a fresh store each repeat (the pair table is
        // built once per store), timing the table build plus every
        // per-pair lookup — what a scoring run actually pays.
        let fresh = PropertyFeatureStore::build(dataset, embeddings);
        let t = Instant::now();
        fresh.ensure_pair_table(pairs.len());
        black_box(
            fresh
                .pair_matrix_flat(&keyed, &names_cfg)
                .expect("name-distance matrix"),
        );
        name_distances_s = name_distances_s.min(t.elapsed().as_secs_f64());
        let (cache_hits, cache_misses) = fresh.string_cache_stats();
        let (unique_name_forms, table_entries, table_hits) =
            fresh.pair_table_stats().unwrap_or((0, 0, 0));
        pair_dedupe = Some(PairDedupeStats {
            unique_name_forms,
            table_entries,
            table_hits,
            string_cache_hits: cache_hits,
            string_cache_misses: cache_misses,
        });

        let t = Instant::now();
        for PropertyPair(a, b) in pairs {
            black_box(pair::string_features(&a.name, &b.name));
        }
        name_distances_uncached_s = name_distances_uncached_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for PropertyPair(a, b) in pairs {
            let pa = store.property_vector(a).expect("property vector");
            let pb = store.property_vector(b).expect("property vector");
            pair::vector_difference_into(&mut diff, pa, pb);
            black_box(&diff);
        }
        assembly_s = assembly_s.min(t.elapsed().as_secs_f64());
    }
    FeaturizeBreakdown {
        char_token_s,
        embedding_average_s,
        name_distances_s,
        name_distances_uncached_s,
        name_kernels: measure_name_kernels(&norm_pairs, repeats),
        pair_dedupe: pair_dedupe.expect("repeats >= 1"),
        assembly_s,
    }
}

/// Exact f32 scoring vs the opt-in int8 path over the full candidate
/// space, as per-path minima over `repeats` runs on one trained model.
/// The quantized timing includes the calibration gate (dual-scoring the
/// first block) and any fallback — it is the cost a `--quantized` run
/// observes, not an idealized kernel time.
fn measure_quantized(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    pairs: &[PropertyPair],
    seed: u64,
    repeats: usize,
) -> QuantizedBench {
    let store = PropertyFeatureStore::build(dataset, embeddings);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.5, &mut rng).expect("split");
    let train_pairs = sampling::training_pairs(dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train_pairs, &LeapmeConfig::default()).expect("fit");

    let mut score_f32_s = f64::INFINITY;
    let mut score_int8_s = f64::INFINITY;
    let mut reference = Vec::new();
    let mut quantized = Vec::new();
    let mut report = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        reference = model.score_pairs(&store, pairs).expect("f32 scoring");
        score_f32_s = score_f32_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let (scores, r) = model
            .score_pairs_quantized(&store, pairs)
            .expect("quantized scoring");
        score_int8_s = score_int8_s.min(t.elapsed().as_secs_f64());
        quantized = scores;
        report = Some(r);
    }
    let report = report.expect("repeats >= 1");
    let full_run_max_abs_error = reference
        .iter()
        .zip(&quantized)
        .map(|(r, q)| (r - q).abs())
        .fold(0.0f32, f32::max);
    QuantizedBench {
        score_f32_s,
        score_int8_s,
        int8_speedup: if score_int8_s > 0.0 {
            score_f32_s / score_int8_s
        } else {
            f64::NAN
        },
        used_quantized: report.used_quantized,
        calibration_max_abs_error: report.calibration_max_abs_error,
        calibration_pairs: report.calibration_pairs,
        full_run_max_abs_error,
    }
}

/// Cold build vs persisted-cache load, with a bitwise identity check of
/// every loaded property vector.
fn measure_warm_cache(dataset: &Dataset, embeddings: &EmbeddingStore) -> WarmCache {
    let path = std::env::temp_dir().join("leapme_bench_feature_cache.lfc");
    let _ = std::fs::remove_file(&path);

    let t = Instant::now();
    let cold = PropertyFeatureStore::build(dataset, embeddings);
    let cold_build_s = t.elapsed().as_secs_f64();

    let fp = feature_cache::fingerprint(dataset, embeddings);
    feature_cache::save(&path, &cold, &fp).expect("save feature cache");
    let t = Instant::now();
    let warm = feature_cache::load(&path, &fp).expect("load feature cache");
    let cache_load_s = t.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();

    let store_identical = cold.len() == warm.len()
        && cold.iter().all(|(k, v)| {
            warm.property_vector(k)
                .is_some_and(|w| v.iter().zip(w).all(|(x, y)| x.to_bits() == y.to_bits()))
        });
    WarmCache {
        cold_build_s,
        cache_load_s,
        cache_hit: true,
        store_identical,
        featurize_speedup: if cache_load_s > 0.0 {
            cold_build_s / cache_load_s
        } else {
            f64::NAN
        },
    }
}

/// Benchmark sublinear candidate generation at stress scale. One pass,
/// not min-of-repeats: the workload is big enough (100k+ properties)
/// that scheduler noise is lost in it, and repeating a multi-second
/// index build per repeat would dominate the whole bench run.
fn measure_retrieval(
    stress_properties: usize,
    dim: usize,
    k: usize,
    seed: u64,
) -> RetrievalBench {
    use leapme::core::index::hnsw::{HnswConfig, HnswIndex, VisitedSet};
    use leapme::core::index::lsh::{NameLshConfig, NameLshIndex};
    use leapme::core::index::PropertyVectors;
    use leapme::data::stress::{generate_stress_dataset, StressConfig};

    let cfg = StressConfig::new(stress_properties, seed);
    let dataset = generate_stress_dataset(&cfg);
    let store = leapme::stress_embedding_store(&cfg, dim, seed ^ 0xE5);

    let t = Instant::now();
    let vectors = PropertyVectors::build(&dataset, &store);
    let vectorize_s = t.elapsed().as_secs_f64();
    let n = vectors.len();

    let hcfg = HnswConfig::default();
    let t = Instant::now();
    let index = HnswIndex::build(&vectors, hcfg, None).expect("HNSW build");
    let index_build_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let lsh = NameLshIndex::build(&vectors.properties, NameLshConfig::default(), None)
        .expect("name-LSH build");
    let lsh_build_s = t.elapsed().as_secs_f64();

    // Candidates as canonical (lo, hi) id pairs packed into u64 — ids
    // index the sorted property list, so id order is PropertyPair order
    // and a packed u64 sort matches the blocking layer's candidate
    // order without materializing 10⁶ key clones.
    let pair_key = |i: u32, j: u32| -> u64 {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        (u64::from(lo) << 32) | u64::from(hi)
    };
    let mut visited = VisitedSet::new(n);

    let mut ann_pairs: Vec<u64> = Vec::new();
    let t = Instant::now();
    for i in 0..n {
        for nb in index.search_node(&vectors, i, k, &mut visited) {
            ann_pairs.push(pair_key(i as u32, nb.id));
        }
    }
    let ann_query_s = t.elapsed().as_secs_f64();

    let mut lsh_pairs: Vec<u64> = Vec::new();
    let t = Instant::now();
    for i in 0..n {
        for nb in lsh.search_node(i, k, &mut visited) {
            lsh_pairs.push(pair_key(i as u32, nb.id));
        }
    }
    let lsh_query_s = t.elapsed().as_secs_f64();

    ann_pairs.sort_unstable();
    ann_pairs.dedup();
    lsh_pairs.sort_unstable();
    lsh_pairs.dedup();
    let mut combined = ann_pairs.clone();
    combined.extend_from_slice(&lsh_pairs);
    combined.sort_unstable();
    combined.dedup();

    let all_sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let full_space = dataset.cross_source_pair_count(&all_sources);

    // Brute-force oracle on a subsampled slice (~512 queries): fraction
    // of the exact top-k the graph search recovered.
    let step = (n / 512).max(1);
    let (mut hit, mut total, mut oracle_queries) = (0usize, 0usize, 0usize);
    for i in (0..n).step_by(step) {
        if !vectors.non_zero[i] {
            continue;
        }
        let oracle = vectors.top_k(i, k);
        if oracle.is_empty() {
            continue;
        }
        let got: std::collections::BTreeSet<u32> = index
            .search_node(&vectors, i, k, &mut visited)
            .iter()
            .map(|nb| nb.id)
            .collect();
        hit += oracle.iter().filter(|nb| got.contains(&nb.id)).count();
        total += oracle.len();
        oracle_queries += 1;
    }
    let pair_completeness = if total > 0 {
        hit as f64 / total as f64
    } else {
        f64::NAN
    };

    // Ground-truth completeness of the combined candidate set, checked
    // against the full label set via id-pair binary search.
    let id_of = |key: &PropertyKey| vectors.properties.binary_search(key).ok();
    let (mut gt_total, mut gt_kept) = (0usize, 0usize);
    for PropertyPair(a, b) in &dataset.ground_truth_pairs() {
        let (Some(i), Some(j)) = (id_of(a), id_of(b)) else {
            continue;
        };
        gt_total += 1;
        if combined.binary_search(&pair_key(i as u32, j as u32)).is_ok() {
            gt_kept += 1;
        }
    }
    let gt_pair_completeness = if gt_total > 0 {
        gt_kept as f64 / gt_total as f64
    } else {
        f64::NAN
    };

    let per_s = |queries: usize, secs: f64| {
        if secs > 0.0 {
            queries as f64 / secs
        } else {
            f64::NAN
        }
    };
    RetrievalBench {
        stress_properties,
        stress_sources: dataset.sources().len(),
        embedding_dim: dim,
        k,
        vectorize_s,
        index_build_s,
        lsh_build_s,
        queries_per_s: per_s(n, ann_query_s),
        lsh_queries_per_s: per_s(n, lsh_query_s),
        candidates_ann: ann_pairs.len(),
        candidates_lsh: lsh_pairs.len(),
        candidates_combined: combined.len(),
        full_space,
        candidates_scored_ratio: if full_space > 0 {
            combined.len() as f64 / full_space as f64
        } else {
            f64::NAN
        },
        pair_completeness,
        oracle_queries,
        gt_pair_completeness,
    }
}

/// Load the previous PR's report, if present, and compute the speedup at
/// an equal thread count. Returns `None` (with a warning) when the
/// baseline is missing, unparsable, or was measured at a different
/// thread count — cross-thread-count comparisons are not apples to
/// apples and are deliberately not reported.
fn compare_with_baseline(stage: &StageTimes, baseline: &BaselineStage) -> Option<VsBaseline> {
    if baseline.threads_effective != stage.threads_effective {
        eprintln!(
            "warning: baseline ran with {} thread(s) but this run used {}; \
             skipping vs-PR6 comparison for this mode",
            baseline.threads_effective, stage.threads_effective
        );
        return None;
    }
    let ratio = |b: f64, c: f64| if c > 0.0 { b / c } else { f64::NAN };
    Some(VsBaseline {
        threads: stage.threads_effective,
        build_speedup: ratio(baseline.build_s, stage.build_s),
        featurize_speedup: ratio(baseline.featurize_s, stage.featurize_s),
        train_speedup: ratio(baseline.train_s, stage.train_s),
        score_speedup: ratio(baseline.score_s, stage.score_s),
    })
}

fn load_baseline() -> Option<Baseline> {
    let text = match std::fs::read_to_string("BENCH_PR6.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("warning: BENCH_PR6.json not readable ({e}); skipping vs-PR6 comparison");
            return None;
        }
    };
    match serde_json::from_str(&text) {
        Ok(b) => Some(b),
        Err(e) => {
            eprintln!("warning: BENCH_PR6.json not parsable ({e}); skipping vs-PR6 comparison");
            None
        }
    }
}

fn main() {
    let args = Args::parse();
    let sources: usize = args.get_or("sources", 16);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parallel_threads: usize = args.get_or("threads", cores);
    let parallel_unmeasured = cores == 1;
    if parallel_unmeasured {
        eprintln!(
            "warning: only 1 core detected — the \"parallel\" pass is skipped \
             (it would just re-measure the serial path); serial times are \
             copied into the parallel slot and every speedup is 1.0 \
             (report flags this as parallel_unmeasured)"
        );
    }

    let spec = Domain::Cameras.spec();
    let mut cfg = Domain::Cameras.generator_config();
    cfg.n_sources = sources;
    cfg.entities = EntityCount::Balanced(40);
    let dataset = generate_dataset(&spec, &cfg, seed);
    let embeddings = prepare_embeddings(&[Domain::Cameras], dim, seed);

    let all_sources: Vec<SourceId> = (0..sources).map(|i| SourceId(i as u16)).collect();
    let pairs = dataset.cross_source_pairs(&all_sources);
    assert!(
        pairs.len() >= 5000,
        "corpus too small: {} pairs (raise --sources)",
        pairs.len()
    );
    println!(
        "corpus: {} sources, {} properties, {} candidate pairs, {} cores detected, {} threads requested for the parallel run",
        sources,
        dataset.properties().len(),
        pairs.len(),
        cores,
        parallel_threads
    );

    // Warm-up pass (untimed) so allocator and page-cache state is
    // comparable between the two measured runs.
    let _ = run_stages(&dataset, &embeddings, &pairs, seed, 1, cores);

    let repeats: usize = args.get_or("repeats", 3);
    let (serial, parallel) = run_modes_min_of(
        &dataset,
        &embeddings,
        &pairs,
        &MinOfPlan {
            seed,
            parallel_threads,
            cores,
            repeats,
            parallel_unmeasured,
        },
    );
    // The featurization substages, the warm-cache pass and the
    // durability tax are all measured serially: the first two isolate
    // single-thread kernel cost, and checkpoint writes are I/O-bound,
    // so thread count is noise here.
    std::env::set_var(THREADS_ENV, "1");
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let featurize_breakdown =
        measure_featurize_breakdown(&dataset, &embeddings, &store, &pairs, repeats);
    drop(store);
    let warm_cache = measure_warm_cache(&dataset, &embeddings);
    let checkpoint = measure_checkpoint_overhead(&dataset, &embeddings, seed, repeats);
    let quantized = measure_quantized(&dataset, &embeddings, &pairs, seed, repeats);

    let stress_properties: usize = args.get_or("stress", 100_000);
    let retrieval = if stress_properties == 0 {
        eprintln!("warning: --stress 0 — skipping the retrieval section");
        None
    } else {
        let stress_dim: usize = args.get_or("stress-dim", 24);
        let retrieval_k: usize = args.get_or("retrieval-k", 8);
        println!(
            "retrieval: stress corpus of {stress_properties} properties, \
             dim {stress_dim}, top-{retrieval_k} per retriever"
        );
        Some(measure_retrieval(
            stress_properties,
            stress_dim,
            retrieval_k,
            seed,
        ))
    };
    std::env::remove_var(THREADS_ENV);

    let baseline = load_baseline().filter(|b| {
        if b.pairs != pairs.len() {
            eprintln!(
                "warning: baseline measured {} candidate pairs but this run has {}; \
                 skipping vs-PR6 comparison (rerun with the baseline's --sources)",
                b.pairs,
                pairs.len()
            );
        }
        b.pairs == pairs.len()
    });
    let (vs_pr6_serial, vs_pr6_parallel) = match &baseline {
        Some(b) => (
            compare_with_baseline(&serial, &b.serial),
            compare_with_baseline(&parallel, &b.parallel),
        ),
        None => (None, None),
    };

    let ratio = |s: f64, p: f64| if p > 0.0 { s / p } else { f64::NAN };
    let report = BenchReport {
        faults_enabled: cfg!(feature = "faults"),
        cores,
        parallel_unmeasured,
        sources,
        properties: dataset.properties().len(),
        pairs: pairs.len(),
        feature_dim: FeatureConfig::full().feature_count(dim),
        speedup_build: ratio(serial.build_s, parallel.build_s),
        speedup_featurize: ratio(serial.featurize_s, parallel.featurize_s),
        speedup_train: ratio(serial.train_s, parallel.train_s),
        speedup_score: ratio(serial.score_s, parallel.score_s),
        speedup_total: ratio(serial.total_s, parallel.total_s),
        featurize_breakdown,
        warm_cache,
        checkpoint,
        quantized,
        retrieval,
        vs_pr6_serial,
        vs_pr6_parallel,
        serial,
        parallel,
    };

    let out = args.get_or("out", "BENCH_PR7.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    atomic_write(std::path::Path::new(&out), format!("{json}\n").as_bytes())
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
