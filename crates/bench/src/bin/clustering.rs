//! Experiment E5 — property clustering over the similarity graph
//! (the paper's §VI future work, implemented and evaluated).
//!
//! For each dataset: train LEAPME on 80% of the sources, build the
//! similarity graph over the held-out region, derive clusters with
//! connected components and with star clustering at several thresholds,
//! and score each clustering by pairwise P/R/F1 against the ground truth.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin clustering -- \
//!     [--dim 50] [--seed 42] [--domains …]
//! ```

use leapme::core::cluster::{connected_components, star_clustering};
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::prelude::*;
use leapme_bench::{parse_domains, prepare_embeddings, Args, MarkdownTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domains = parse_domains(&args);
    let thresholds = [0.5, 0.7, 0.9];

    let mut md = MarkdownTable::new(&[
        "Dataset",
        "Method",
        "Threshold",
        "Clusters",
        "Non-trivial",
        "Largest",
        "P",
        "R",
        "F1",
    ]);
    println!(
        "{:<12} {:<22} {:>5} {:>8} {:>8} {:>7} {:>6} {:>6} {:>6}",
        "dataset", "method", "thr", "clusters", "nontriv", "largest", "P", "R", "F1"
    );

    for &domain in &domains {
        let dataset = generate(domain, seed);
        let embeddings = prepare_embeddings(&[domain], dim, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);

        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
        let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");
        let candidates = sampling::test_pairs(&dataset, &split.train);
        let graph = model.predict_graph(&store, &candidates).expect("predict");

        for &thr in &thresholds {
            for (method, clustering) in [
                ("connected-components", connected_components(&graph, thr)),
                ("star", star_clustering(&graph, thr)),
            ] {
                let m = clustering.pairwise_metrics(&dataset);
                let non_trivial = clustering.non_trivial().count();
                let largest = clustering
                    .clusters()
                    .iter()
                    .map(Vec::len)
                    .max()
                    .unwrap_or(0);
                println!(
                    "{:<12} {:<22} {:>5.1} {:>8} {:>8} {:>7} {:>6.2} {:>6.2} {:>6.2}",
                    domain.name(),
                    method,
                    thr,
                    clustering.len(),
                    non_trivial,
                    largest,
                    m.precision,
                    m.recall,
                    m.f1
                );
                md.row(&[
                    domain.name().into(),
                    method.into(),
                    format!("{thr:.1}"),
                    clustering.len().to_string(),
                    non_trivial.to_string(),
                    largest.to_string(),
                    format!("{:.3}", m.precision),
                    format!("{:.3}", m.recall),
                    format!("{:.3}", m.f1),
                ]);
            }
        }
    }

    let mut report = String::new();
    writeln!(
        report,
        "# Property clustering (E5)\n\nLEAPME similarity graph over the held-out 20% region; pairwise metrics of the induced clusters\nagainst the cross-source ground truth restricted to the graph's nodes. Seed {seed}, dim {dim}.\n"
    )
    .unwrap();
    report.push_str(&md.render());
    leapme_bench::write_result("clustering.md", &report);
}
