//! Continual-ingestion benchmark — quality over time under drift.
//!
//! Drives the `core::continual` scenario end to end on the stress
//! generator: a base corpus is fit once, then drifting sources arrive
//! epoch by epoch with every third arrival carrying an injected defect
//! (empty source, oversized value, row flood). The report to `--out`
//! (default `BENCH_PR9.json`) records the quality-over-time curve, the
//! typed quarantines, the PSI drift signal, and every champion/
//! challenger decision — the continual story in one JSON file.
//!
//! `faults_enabled` must read `false` in any report that counts:
//! scripts/verify.sh greps it. (The injected defects here come from the
//! *generator*, not the fault registry — they exercise the validation
//! gate the way real bad uploads would, with the fault hooks compiled
//! out.)

use leapme::core::continual::{run_schedule, ContinualConfig, RunOptions};
use leapme::core::pipeline::LeapmeConfig;
use leapme::data::drift::{generate_drift_schedule, DriftConfig};
use leapme::data::io::atomic_write;
use leapme::data::stress::StressConfig;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct EpochPoint {
    epoch: usize,
    sources: usize,
    properties: usize,
    precision: f64,
    recall: f64,
    f1: f64,
    drift_features: f64,
    drift_scores: f64,
    quarantined: usize,
    decision: Option<String>,
    generation: u64,
}

#[derive(Debug, Serialize)]
struct QuarantineEntry {
    epoch: usize,
    source: String,
    reason: String,
}

#[derive(Debug, Serialize)]
struct ContinualBench {
    faults_enabled: bool,
    properties: usize,
    epochs: usize,
    sources_per_epoch: usize,
    corrupt_every: usize,
    label_budget: usize,
    drift_threshold: f64,
    quality_over_time: Vec<EpochPoint>,
    quarantines: Vec<QuarantineEntry>,
    quarantined: usize,
    promotions: usize,
    rollbacks: usize,
    labels_used: usize,
    epoch0_f1: f64,
    final_f1: f64,
    max_drift_features: f64,
    max_drift_scores: f64,
    wall_s: f64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let properties: usize = flag(&args, "--properties")
        .map(|v| v.parse().expect("--properties"))
        .unwrap_or(220);
    let epochs: usize = flag(&args, "--epochs")
        .map(|v| v.parse().expect("--epochs"))
        .unwrap_or(3);

    let dcfg = DriftConfig {
        base: StressConfig {
            properties,
            properties_per_source: 25,
            cluster_size: 4,
            instances_per_property: 1,
            seed: 42,
        },
        epochs,
        sources_per_epoch: 2,
        naming_drift: 0.3,
        value_drift: 0.4,
        corrupt_every: 3,
    };
    let cfg = ContinualConfig {
        label_budget: 48,
        model: LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(16, 1e-3), (4, 1e-4)]),
                ..TrainConfig::default()
            },
            hidden: vec![24],
            ..LeapmeConfig::default()
        },
        seed: 42 ^ 0xC0,
        ..ContinualConfig::default()
    };

    eprintln!(
        "continual: {properties} base properties, {epochs} epochs x {} arrivals, \
         every 3rd arrival defective",
        dcfg.sources_per_epoch
    );
    let schedule = generate_drift_schedule(&dcfg);
    let embeddings = leapme::stress_embedding_store(&dcfg.base, 16, 42 ^ 0xE5);

    let started = Instant::now();
    let report = run_schedule(&schedule, &embeddings, &cfg, None, &RunOptions::default())
        .expect("continual scenario");
    let wall_s = started.elapsed().as_secs_f64();

    let bench = ContinualBench {
        faults_enabled: cfg!(feature = "faults"),
        properties,
        epochs,
        sources_per_epoch: dcfg.sources_per_epoch,
        corrupt_every: dcfg.corrupt_every,
        label_budget: cfg.label_budget,
        drift_threshold: cfg.drift.threshold,
        quality_over_time: report
            .points
            .iter()
            .map(|p| EpochPoint {
                epoch: p.epoch,
                sources: p.sources,
                properties: p.properties,
                precision: p.precision,
                recall: p.recall,
                f1: p.f1,
                drift_features: p.drift_features,
                drift_scores: p.drift_scores,
                quarantined: p.quarantined,
                decision: p.decision.clone(),
                generation: p.generation,
            })
            .collect(),
        quarantines: report
            .quarantined
            .iter()
            .map(|q| QuarantineEntry {
                epoch: q.epoch,
                source: q.source.clone(),
                reason: q.reason.to_string(),
            })
            .collect(),
        quarantined: report.quarantined.len(),
        promotions: report.promotions,
        rollbacks: report.rollbacks,
        labels_used: report.labels_used,
        epoch0_f1: report.points[0].f1,
        final_f1: report.final_f1,
        max_drift_features: report
            .points
            .iter()
            .map(|p| p.drift_features)
            .fold(0.0, f64::max),
        max_drift_scores: report
            .points
            .iter()
            .map(|p| p.drift_scores)
            .fold(0.0, f64::max),
        wall_s,
    };

    for p in &bench.quality_over_time {
        eprintln!(
            "  epoch {}: sources={} f1={:.4} drift={:.3}/{:.3} quarantined={} decision={} gen={}",
            p.epoch,
            p.sources,
            p.f1,
            p.drift_features,
            p.drift_scores,
            p.quarantined,
            p.decision.as_deref().unwrap_or("-"),
            p.generation,
        );
    }
    eprintln!(
        "  quarantined={} promotions={} rollbacks={} labels_used={} wall={:.1}s",
        bench.quarantined, bench.promotions, bench.rollbacks, bench.labels_used, wall_s
    );

    let json = serde_json::to_string_pretty(&bench).expect("serialize report");
    atomic_write(std::path::Path::new(&out), json.as_bytes()).expect("write report");
    eprintln!("continual report written to {out}");
}
