//! Diagnostics: embedding-space geometry and dataset statistics.
//!
//! Prints, per domain: dataset scale (compare with paper §V-B), the
//! cosine-similarity distribution of the trained embedding space
//! (within-synonym-set vs across-properties), and a sample of nearest
//! neighbours. Useful to sanity-check the GloVe substitution before
//! running the full Table II reproduction.
//!
//! `cargo run --release -p leapme-bench --bin diagnostics -- [--dim 50] [--seed 42]`

use leapme::data::domains::Domain;
use leapme::embedding::store::cosine;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args};

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);

    for domain in Domain::ALL {
        println!("\n===== {} =====", domain.name());
        let dataset = generate(domain, seed);
        let s = dataset.stats();
        println!(
            "dataset: {} sources | {} properties ({} aligned) | {} instances | {} entities | {} matching pairs",
            s.sources, s.properties, s.aligned_properties, s.instances, s.entities, s.matching_pairs
        );

        let emb = prepare_embeddings(&[domain], dim, seed);
        println!("embeddings: {} words × {} dims", emb.len(), emb.dim());

        // Within-property synonym cosines vs across-property cosines.
        let spec = domain.spec();
        let mut within = Vec::new();
        let mut across = Vec::new();
        let name_vec = |name: &str| emb.average_text(name);
        for (i, p) in spec.properties.iter().enumerate() {
            let vecs: Vec<Vec<f32>> = p.synonyms.iter().map(|s| name_vec(s)).collect();
            for (a, va) in vecs.iter().enumerate() {
                for vb in &vecs[a + 1..] {
                    within.push(cosine(va, vb));
                }
            }
            for q in &spec.properties[i + 1..] {
                let va = name_vec(&p.synonyms[0]);
                let vb = name_vec(&q.synonyms[0]);
                across.push(cosine(va.as_slice(), vb.as_slice()));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "name-embedding cosine: within-synonym mean {:.3} | across-property mean {:.3} | separation {:.3}",
            mean(&within),
            mean(&across),
            mean(&within) - mean(&across)
        );
        // Fraction of across-property pairs above typical thresholds.
        for t in [0.3, 0.4, 0.5, 0.6] {
            let fp = across.iter().filter(|&&c| c >= t).count() as f64 / across.len() as f64;
            let tp = within.iter().filter(|&&c| c >= t).count() as f64 / within.len() as f64;
            println!("  threshold {t:.1}: within ≥ t {tp:.2} | across ≥ t {fp:.2}");
        }

        // Nearest-neighbour sample for the first three properties.
        for p in spec.properties.iter().take(3) {
            let word = p
                .synonyms
                .iter()
                .flat_map(|s| s.split(' '))
                .find(|w| emb.get(w).is_some());
            if let Some(w) = word {
                let nn: Vec<String> = emb
                    .nearest(w, 4)
                    .into_iter()
                    .map(|(x, c)| format!("{x} ({c:.2})"))
                    .collect();
                println!("  nn[{w}]: {}", nn.join(", "));
            }
        }
    }
}
