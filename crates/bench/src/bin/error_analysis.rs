//! Experiment E10 — qualitative error analysis of LEAPME's decisions.
//!
//! For each dataset: train on 80% of the sources, evaluate on the
//! held-out examples, and break the errors down — false positives by
//! category (semantic cross-reference confusions vs junk involvement)
//! and false negatives by reference property (which concepts the matcher
//! systematically misses). This is the drill-down behind the paper's
//! aggregate Table II numbers.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin error_analysis -- [--dim 50] [--seed 42]
//! ```

use leapme::core::analysis::analyze;
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::prelude::*;
use leapme_bench::{parse_domains, prepare_embeddings, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domains = parse_domains(&args);

    let mut report_md = String::from("# Error analysis (E10)\n");

    for &domain in &domains {
        let dataset = generate(domain, seed);
        let embeddings = prepare_embeddings(&[domain], dim, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
        let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");
        let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
        let pairs: Vec<PropertyPair> = examples.iter().map(|(p, _)| p.clone()).collect();
        let graph = model.predict_graph(&store, &pairs).expect("predict");
        let report = analyze(&dataset, &graph.matches(0.5), &pairs);

        println!("===== {} =====", domain.name());
        println!("{}", report.to_text());
        writeln!(report_md, "\n## {}\n\n```\n{}```", domain.name(), report.to_text()).unwrap();
    }

    leapme_bench::write_result("error_analysis.md", &report_md);
}
