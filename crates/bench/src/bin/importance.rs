//! Experiment E7 — permutation feature importance (complements the
//! Table II feature-configuration study with a single-model view).
//!
//! Trains the full-feature LEAPME model per dataset (80% sources) and
//! measures the F1 drop when each of the four feature blocks is permuted
//! across the evaluation examples.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin importance -- [--dim 50] [--seed 42]
//! ```

use leapme::core::importance::permutation_importance;
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::prelude::*;
use leapme_bench::{parse_domains, prepare_embeddings, Args, MarkdownTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domains = parse_domains(&args);

    let mut md = MarkdownTable::new(&["Dataset", "Baseline F1", "Block", "Permuted F1", "F1 drop"]);
    println!(
        "{:<12} {:>11} {:<24} {:>11} {:>8}",
        "dataset", "baseline", "block", "permuted", "drop"
    );

    for &domain in &domains {
        let dataset = generate(domain, seed);
        let embeddings = prepare_embeddings(&[domain], dim, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
        let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");
        let eval_pairs = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
        let report = permutation_importance(&model, &store, &eval_pairs, seed).expect("report");

        for b in &report.blocks {
            println!(
                "{:<12} {:>11.3} {:<24} {:>11.3} {:>8.3}",
                domain.name(),
                report.baseline_f1,
                b.block.name(),
                b.permuted_f1,
                b.f1_drop
            );
            md.row(&[
                domain.name().into(),
                format!("{:.3}", report.baseline_f1),
                b.block.name().into(),
                format!("{:.3}", b.permuted_f1),
                format!("{:.3}", b.f1_drop),
            ]);
        }
    }

    let mut out = String::new();
    writeln!(
        out,
        "# Permutation feature importance (E7)\n\nFull-feature LEAPME, 80% training sources, sampled-example evaluation, seed {seed}, dim {dim}.\n"
    )
    .unwrap();
    out.push_str(&md.render());
    leapme_bench::write_result("importance.md", &out);
}
