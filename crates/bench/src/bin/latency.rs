//! Service latency benchmark — closed-loop clients against an
//! in-process `leapme serve` instance.
//!
//! Two phases, reported to `--out` (default `BENCH_PR8.json`):
//!
//! * **steady state** — `--clients` threads (default 4) each run
//!   `--requests` POST `/score` calls (default 50) over fresh
//!   connections against a comfortably provisioned server; per-request
//!   wall-clock latencies aggregate to p50/p99/mean and a throughput
//!   figure.
//! * **overload** — the same workload pointed at a deliberately
//!   starved server (1 worker, queue depth 2) with more clients;
//!   admission control must shed with `503 + Retry-After`, which the
//!   clients absorb with jittered exponential backoff. The recorded
//!   shed rate proves load shedding engaged instead of unbounded
//!   queueing.
//!
//! Latency numbers come from loopback TCP with real parsing — they
//! measure the service stack, not the network. `faults_enabled` must
//! read `false` in any report that counts: scripts/verify.sh greps it.

use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::data::io::atomic_write;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme::serve::{self, ServeConfig, ServeState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Serialize)]
struct LatencyStats {
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    max_ms: f64,
    throughput_rps: f64,
}

#[derive(Debug, Serialize)]
struct OverloadStats {
    clients: usize,
    attempts: usize,
    completed: usize,
    shed_responses: usize,
    shed_rate: f64,
    retries_spent: usize,
    server_shed_count: u64,
}

#[derive(Debug, Serialize)]
struct LatencyReport {
    faults_enabled: bool,
    pairs_per_request: usize,
    steady: LatencyStats,
    overload: OverloadStats,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let clients: usize = flag(&args, "--clients")
        .map(|v| v.parse().expect("--clients"))
        .unwrap_or(4);
    let requests: usize = flag(&args, "--requests")
        .map(|v| v.parse().expect("--requests"))
        .unwrap_or(50);

    // -- fixture: dataset, embeddings, store, a quickly trained model --
    let dataset = generate(Domain::Tvs, 17);
    let mut ecfg = leapme::EmbeddingTrainingConfig::default();
    ecfg.glove.dim = 8;
    ecfg.glove.epochs = 2;
    let embeddings = leapme::train_domain_embeddings(&[Domain::Tvs], &ecfg, 17).unwrap();
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let train_sources = vec![SourceId(0), SourceId(1), SourceId(2), SourceId(3)];
    let mut rng = StdRng::seed_from_u64(3);
    let train = training_pairs(&dataset, &train_sources, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(4, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![8],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).unwrap();

    // One request body reused by every client: 64 cross-source pairs.
    let pairs: Vec<PropertyPair> = test_pairs(&dataset, &[]).into_iter().take(64).collect();
    let quads: Vec<(u16, String, u16, String)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.source.0, a.name.clone(), b.source.0, b.name.clone()))
        .collect();
    let body = format!("{{\"pairs\":{}}}", serde_json::to_string(&quads).unwrap());
    let pairs_per_request = pairs.len();

    let spawn_server = |workers: usize, queue_depth: usize| {
        let embeddings = {
            // The store/state consume their inputs; rebuild per server.
            let mut e = leapme::train_domain_embeddings(&[Domain::Tvs], &ecfg, 17).unwrap();
            e.set_fuzzy_oov(true);
            e
        };
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let state = Arc::new(ServeState::new(
            model.clone(),
            embeddings,
            dataset.clone(),
            store,
            None,
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                queue_depth,
                io_timeout: Duration::from_secs(2),
                ..ServeConfig::default()
            },
        ));
        let handle = serve::start(Arc::clone(&state), None).unwrap();
        (handle, state)
    };

    // -- phase 1: steady state ----------------------------------------
    eprintln!("latency: steady state ({clients} clients x {requests} requests)");
    let (handle, _state) = spawn_server(4, 64);
    let started = Instant::now();
    let results = run_clients(handle.addr(), &body, clients, requests, 0);
    let elapsed = started.elapsed().as_secs_f64();
    handle.shutdown();
    let drain = handle.join();
    assert!(drain.clean, "steady-state drain dropped connections: {drain:?}");

    let mut latencies: Vec<f64> = results.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    assert!(
        !latencies.is_empty(),
        "steady state completed no requests — the service is broken"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let steady = LatencyStats {
        requests: latencies.len(),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        mean_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
        max_ms: latencies.last().copied().unwrap(),
        throughput_rps: latencies.len() as f64 / elapsed,
    };

    // -- phase 2: overload ---------------------------------------------
    let overload_clients = clients.max(2) * 3;
    eprintln!("latency: overload ({overload_clients} clients vs 1 worker, queue depth 2)");
    let (handle, state) = spawn_server(1, 2);
    let results = run_clients(handle.addr(), &body, overload_clients, requests, 3);
    let server_shed = state
        .metrics
        .shed
        .load(std::sync::atomic::Ordering::Relaxed);
    handle.shutdown();
    let drain = handle.join();
    assert!(drain.clean, "overload drain dropped connections: {drain:?}");

    let attempts: usize = results.iter().map(|r| r.attempts).sum();
    let completed: usize = results.iter().map(|r| r.completed).sum();
    let shed_responses: usize = results.iter().map(|r| r.shed).sum();
    let retries_spent: usize = results.iter().map(|r| r.retries).sum();
    let overload = OverloadStats {
        clients: overload_clients,
        attempts,
        completed,
        shed_responses,
        shed_rate: shed_responses as f64 / attempts.max(1) as f64,
        retries_spent,
        server_shed_count: server_shed,
    };

    let report = LatencyReport {
        faults_enabled: cfg!(feature = "faults"),
        pairs_per_request,
        steady,
        overload,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    atomic_write(std::path::Path::new(&out), format!("{json}\n").as_bytes()).unwrap();
    println!("{json}");
}

struct ClientResult {
    latencies_ms: Vec<f64>,
    attempts: usize,
    completed: usize,
    shed: usize,
    retries: usize,
}

/// Closed-loop clients: each sends its requests back to back over
/// fresh connections, retrying a shed response up to `max_retries`
/// times with jittered exponential backoff (the well-behaved client
/// the `Retry-After` contract assumes).
fn run_clients(
    addr: SocketAddr,
    body: &str,
    clients: usize,
    requests: usize,
    max_retries: usize,
) -> Vec<ClientResult> {
    let request = format!(
        "POST /score HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let request = Arc::new(request);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let request = Arc::clone(&request);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ c as u64);
                let mut r = ClientResult {
                    latencies_ms: Vec::with_capacity(requests),
                    attempts: 0,
                    completed: 0,
                    shed: 0,
                    retries: 0,
                };
                for _ in 0..requests {
                    let mut backoff = Duration::from_millis(5);
                    for attempt in 0..=max_retries {
                        r.attempts += 1;
                        let t = Instant::now();
                        match one_request(addr, request.as_bytes()) {
                            Some(200) => {
                                r.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                r.completed += 1;
                                break;
                            }
                            Some(503) => {
                                r.shed += 1;
                                if attempt < max_retries {
                                    r.retries += 1;
                                    // Jittered exponential backoff in
                                    // [0.5, 1.5) × the nominal delay.
                                    let jitter = 0.5 + rng.gen::<f64>();
                                    std::thread::sleep(backoff.mul_f64(jitter));
                                    backoff = (backoff * 2).min(Duration::from_millis(100));
                                }
                            }
                            _ => break, // dropped connection or error: give up
                        }
                    }
                }
                r
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// One request over a fresh connection; returns the status code.
fn one_request(addr: SocketAddr, raw: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.write_all(raw).ok()?;
    let mut out = String::new();
    stream.read_to_string(&mut out).ok()?;
    out.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}
