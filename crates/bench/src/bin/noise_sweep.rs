//! Experiment E8 — robustness to name noise.
//!
//! The paper contrasts the clean camera dataset with three "low-quality"
//! WDC datasets but cannot vary the noise level of real data. Our
//! generator can: this sweep regenerates the phone dataset at increasing
//! name-noise intensities and tracks LEAPME (full features), LEAPME(-emb)
//! (string similarities only), and the unsupervised AML baseline. The
//! expected shape: the lexical approaches decay fastest; embeddings
//! (backed by fuzzy OOV lookup) degrade gracefully.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin noise_sweep -- \
//!     [--reps 3] [--dim 50] [--seed 42]
//! ```

use leapme::baselines::aml::AmlMatcher;
use leapme::core::pipeline::LeapmeConfig;
use leapme::core::runner::{run_repeated, EvalMode, RunnerConfig};
use leapme::data::noise::NoiseConfig;
use leapme::data::spec::generate_dataset;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, run_baseline_repeated, Args, MarkdownTable};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 3);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domain = Domain::Phones;

    // Noise scale 0.0 … 6.0 applied to the heavy() profile.
    let scales = [0.0, 1.0, 2.0, 4.0, 6.0];

    let embeddings = prepare_embeddings(&[domain], dim, seed);
    let spec = domain.spec();
    let base = domain.generator_config();

    let mut md = MarkdownTable::new(&["Noise ×", "LEAPME F1", "LEAPME(-emb) F1", "AML F1"]);
    println!(
        "{:>8} {:>10} {:>16} {:>8}",
        "noise ×", "LEAPME", "LEAPME(-emb)", "AML"
    );

    for &scale in &scales {
        let heavy = NoiseConfig::heavy();
        let mut cfg = base.clone();
        cfg.name_noise = NoiseConfig {
            typo: (heavy.typo * scale).min(0.9),
            abbreviate: (heavy.abbreviate * scale).min(0.9),
            token_dropout: (heavy.token_dropout * scale).min(0.9),
            case_jitter: (heavy.case_jitter * scale).min(0.9),
            decorate: (heavy.decorate * scale).min(0.9),
        };
        let dataset = generate_dataset(&spec, &cfg, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);

        let run = |features: FeatureConfig| {
            let runner = RunnerConfig {
                train_fraction: 0.8,
                repetitions: reps,
                eval: EvalMode::SampledExamples,
                leapme: LeapmeConfig {
                    features,
                    ..LeapmeConfig::default()
                },
                base_seed: seed,
                ..RunnerConfig::default()
            };
            run_repeated(&dataset, &store, &runner).expect("run").0
        };
        let full = run(FeatureConfig::full());
        let nonemb = run(FeatureConfig {
            scope: FeatureScope::Both,
            kind: FeatureKind::NonEmbeddings,
        });
        let mut aml = AmlMatcher::new();
        let aml_summary = run_baseline_repeated(
            &dataset,
            &mut aml,
            0.8,
            reps,
            2,
            EvalMode::SampledExamples,
            seed,
        );

        println!(
            "{:>8.1} {:>10.3} {:>16.3} {:>8.3}",
            scale, full.f1_mean, nonemb.f1_mean, aml_summary.f1_mean
        );
        md.row(&[
            format!("{scale:.1}"),
            format!("{:.3}", full.f1_mean),
            format!("{:.3}", nonemb.f1_mean),
            format!("{:.3}", aml_summary.f1_mean),
        ]);
    }

    let mut out = String::new();
    writeln!(
        out,
        "# Name-noise robustness sweep (E8)\n\nPhones ontology regenerated at scaled heavy-noise levels; 80% training, {reps} reps, seed {seed}, dim {dim}.\n"
    )
    .unwrap();
    out.push_str(&md.render());
    leapme_bench::write_result("noise_sweep.md", &out);
}
