//! Ad-hoc probe: inspect what one LEAPME fit actually learns.
//! Not part of the experiment suite; kept for debugging calibration.

use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_or("seed", 42);
    let scope = match args.get("scope").unwrap_or("names") {
        "instances" => FeatureScope::Instances,
        "both" => FeatureScope::Both,
        _ => FeatureScope::Names,
    };
    let kind = match args.get("kind").unwrap_or("both") {
        "emb" => FeatureKind::Embeddings,
        "nonemb" => FeatureKind::NonEmbeddings,
        _ => FeatureKind::Both,
    };
    let domain = Domain::ALL
        .into_iter()
        .find(|d| d.name() == args.get("domain").unwrap_or("phones"))
        .unwrap();

    let dataset = generate(domain, seed);
    let embeddings = prepare_embeddings(&[domain], args.get_or("dim", 50), seed);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
    let cfg = LeapmeConfig {
        features: FeatureConfig { scope, kind },
        ..LeapmeConfig::default()
    };
    println!("features: {} ({} dims)", cfg.features, cfg.features.feature_count(store.dim()));
    let model = Leapme::fit(&store, &train, &cfg).unwrap();

    // Training-set quality.
    let train_pairs: Vec<PropertyPair> = train.iter().map(|(p, _)| p.clone()).collect();
    let scores = model.score_pairs(&store, &train_pairs).unwrap();
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    let mut tn = 0;
    for ((_, y), s) in train.iter().zip(&scores) {
        match (y, s >= &0.5) {
            (true, true) => tp += 1,
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }
    println!("train: tp={tp} fp={fp} fn={fn_} tn={tn}");

    // Test quality + FP inspection.
    let test = sampling::test_pairs(&dataset, &split.train);
    let gt = sampling::test_ground_truth(&dataset, &split.train);
    let graph = model.predict_graph(&store, &test).unwrap();
    let matches = graph.matches(0.5);
    let m = Metrics::from_sets(&matches, &gt);
    println!("test: {m}");

    println!("\nsample false positives:");
    let mut shown = 0;
    for p in &matches {
        if !gt.contains(p) {
            let s = graph.score(p).unwrap();
            println!("  [{s:.2}] {} || {}", p.0, p.1);
            shown += 1;
            if shown >= 15 {
                break;
            }
        }
    }
    println!("\nsample false negatives:");
    let mut shown = 0;
    for p in &gt {
        if !matches.contains(p) {
            let s = graph.score(p).unwrap_or(-1.0);
            println!("  [{s:.2}] {} || {}", p.0, p.1);
            shown += 1;
            if shown >= 10 {
                break;
            }
        }
    }
}
