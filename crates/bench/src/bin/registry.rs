//! Registry + zero-copy container benchmark (PR10).
//!
//! Reported to `--out` (default `BENCH_PR10.json`), three sections:
//!
//! * **pair open** — the artifact pair a domain faults in (trained
//!   model + warm feature cache) saved in both layouts, opened cold,
//!   min over `--repeats` (default 15). v1 pays a full parse-and-copy
//!   per open; v2 validates a 64-byte header plus section table and
//!   hands out views over the mapping, so `pair_open_speedup` is the
//!   headline number verify.sh gates at ≥ 10×.
//! * **byte identity** — the same reference workload scored through
//!   the v1-loaded and v2-loaded model/store; every score must match
//!   to the bit (`scores_bitwise_identical`), proving zero-copy is a
//!   representation change, not a numeric one.
//! * **domain sweep** — registries of N identical domains served under
//!   a budget sized to roughly half the fleet: every domain must still
//!   answer (lazy fault-in + LRU eviction), and the recorded
//!   resident/eviction counts show the budget actually bounded memory.
//!
//! The feature store is synthetic and deliberately fat (`--properties`,
//! default 12000 rows) so the open-path difference dominates file-system
//! noise. `faults_enabled` must read `false` in any report that counts.

use leapme::core::feature_cache::{self, FeatureFingerprint};
use leapme::core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
use leapme::core::registry::{ModelRegistry, RegistryConfig};
use leapme::core::sampling;
use leapme::data::io::atomic_write;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

#[derive(Debug, Serialize)]
struct OpenStats {
    file_bytes: u64,
    min_open_us: f64,
    mean_open_us: f64,
    open_path: String,
}

#[derive(Debug, Serialize)]
struct PairOpen {
    repeats: usize,
    model_v1: OpenStats,
    model_v2: OpenStats,
    cache_v1: OpenStats,
    cache_v2: OpenStats,
    /// (v1 model + v1 cache) / (v2 model + v2 cache), min-over-repeats.
    pair_open_speedup: f64,
}

#[derive(Debug, Serialize)]
struct DomainSweepPoint {
    domains: usize,
    budget_domains: usize,
    served: usize,
    resident_after: usize,
    evictions: u64,
    resident_bytes: u64,
    budget_bytes: u64,
}

#[derive(Debug, Serialize)]
struct RegistryReport {
    faults_enabled: bool,
    properties: usize,
    feature_dim: usize,
    scored_pairs: usize,
    scores_bitwise_identical: bool,
    pair_open: PairOpen,
    domain_sweep: Vec<DomainSweepPoint>,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// A synthetic feature store of `properties` rows over `sources`
/// sources at the reference dataset's dimension — fat enough that the
/// open-path difference dominates.
fn fat_store(dim: usize, properties: usize, sources: usize, seed: u64) -> PropertyFeatureStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let plen = leapme::features::property::len(dim);
    let mut features = HashMap::with_capacity(properties);
    for i in 0..properties {
        let key = PropertyKey::new(
            SourceId((i % sources) as u16),
            format!("synthetic_property_{i:05}"),
        );
        let v: Vec<f32> = (0..plen).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        features.insert(key, v);
    }
    PropertyFeatureStore::from_parts(dim, features, Default::default())
}

fn time_open<T>(repeats: usize, mut open: impl FnMut() -> T) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..repeats {
        let t = Instant::now();
        let loaded = open();
        let us = t.elapsed().as_secs_f64() * 1e6;
        drop(loaded);
        min = min.min(us);
        sum += us;
    }
    (min, sum / repeats as f64)
}

fn file_bytes(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Write one registry domain directory reusing the prepared artifacts.
fn write_domain(root: &Path, name: &str, model_v2: &Path, cache_v2: &Path, dataset_json: &str) {
    let dir = root.join(name);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(model_v2, dir.join("model.lmp")).unwrap();
    std::fs::copy(cache_v2, dir.join("features.lfc")).unwrap();
    std::fs::write(dir.join("dataset.json"), dataset_json).unwrap();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let repeats: usize = flag(&args, "--repeats")
        .map(|v| v.parse().expect("--repeats"))
        .unwrap_or(15);
    let properties: usize = flag(&args, "--properties")
        .map(|v| v.parse().expect("--properties"))
        .unwrap_or(12_000);

    let work = std::env::temp_dir().join(format!("leapme_bench_registry_{}", std::process::id()));
    std::fs::create_dir_all(&work).unwrap();

    // ----- reference model + workload ---------------------------------
    let dataset = generate(Domain::Tvs, 7);
    let embeddings = EmbeddingStore::new(16);
    let train_store = PropertyFeatureStore::build(&dataset, &embeddings);
    let sources: Vec<SourceId> = (0..dataset.sources().len() as u16).map(SourceId).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let train = sampling::training_pairs(&dataset, &sources, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(4, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![16],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&train_store, &train, &cfg).expect("reference model fits");

    // ----- the artifact pair in both layouts --------------------------
    let fat = fat_store(embeddings.dim(), properties, dataset.sources().len(), 99);
    let fp = FeatureFingerprint {
        dataset: feature_cache::dataset_fingerprint(&dataset),
        ..feature_cache::fingerprint(&dataset, &embeddings)
    };
    let model_v1 = work.join("model_v1.lmp");
    let model_v2 = work.join("model_v2.lmp");
    let cache_v1 = work.join("cache_v1.lfc");
    let cache_v2 = work.join("cache_v2.lfc");
    model.save_v1(&model_v1).unwrap();
    model.save(&model_v2).unwrap();
    feature_cache::save_v1(&cache_v1, &fat, &fp).unwrap();
    feature_cache::save(&cache_v2, &fat, &fp).unwrap();

    // ----- cold-open timing -------------------------------------------
    let (m1_min, m1_mean) = time_open(repeats, || LeapmeModel::load(&model_v1).unwrap());
    let (m2_min, m2_mean) = time_open(repeats, || LeapmeModel::load(&model_v2).unwrap());
    let (c1_min, c1_mean) = time_open(repeats, || feature_cache::load_resident(&cache_v1).unwrap());
    let (c2_min, c2_mean) = time_open(repeats, || feature_cache::load_resident(&cache_v2).unwrap());
    let (_, m2_path) = LeapmeModel::load_with_report(&model_v2).unwrap();
    let (_, _, c2_path) = feature_cache::load_resident(&cache_v2).unwrap();
    let pair_open_speedup = (m1_min + c1_min) / (m2_min + c2_min);

    // ----- byte identity ----------------------------------------------
    let candidates = sampling::test_pairs(&dataset, &[]);
    let from_v1 = {
        let m = LeapmeModel::load(&model_v1).unwrap();
        m.score_pairs(&train_store, &candidates).unwrap()
    };
    let from_v2 = {
        let m = LeapmeModel::load(&model_v2).unwrap();
        m.score_pairs(&train_store, &candidates).unwrap()
    };
    let scores_bitwise_identical = from_v1.len() == from_v2.len()
        && from_v1
            .iter()
            .zip(from_v2.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());

    // ----- N-domain sweep under a half-fleet budget -------------------
    let dataset_json = dataset.to_json();
    let per_domain = file_bytes(&model_v2) + file_bytes(&cache_v2);
    let mut domain_sweep = Vec::new();
    for n in [2usize, 4, 8] {
        let root = work.join(format!("registry_{n}"));
        for i in 0..n {
            write_domain(&root, &format!("domain{i:02}"), &model_v2, &cache_v2, &dataset_json);
        }
        let budget_domains = (n / 2).max(1);
        let budget_bytes = per_domain * budget_domains as u64 + 1024;
        let registry = ModelRegistry::open(
            &root,
            RegistryConfig {
                resident_budget_bytes: Some(budget_bytes),
            },
        )
        .unwrap();
        let mut served = 0;
        for name in registry.domains() {
            let domain = registry.get(&name).unwrap();
            assert_eq!(domain.store.len(), properties);
            served += 1;
        }
        let stats = registry.stats();
        domain_sweep.push(DomainSweepPoint {
            domains: n,
            budget_domains,
            served,
            resident_after: stats.domains.iter().filter(|d| d.resident).count(),
            evictions: stats.evictions,
            resident_bytes: stats.resident_bytes,
            budget_bytes,
        });
    }

    let report = RegistryReport {
        faults_enabled: cfg!(feature = "faults"),
        properties,
        feature_dim: embeddings.dim(),
        scored_pairs: candidates.len(),
        scores_bitwise_identical,
        pair_open: PairOpen {
            repeats,
            model_v1: OpenStats {
                file_bytes: file_bytes(&model_v1),
                min_open_us: m1_min,
                mean_open_us: m1_mean,
                open_path: "legacy-v1".into(),
            },
            model_v2: OpenStats {
                file_bytes: file_bytes(&model_v2),
                min_open_us: m2_min,
                mean_open_us: m2_mean,
                open_path: m2_path.label().into(),
            },
            cache_v1: OpenStats {
                file_bytes: file_bytes(&cache_v1),
                min_open_us: c1_min,
                mean_open_us: c1_mean,
                open_path: "legacy-v1".into(),
            },
            cache_v2: OpenStats {
                file_bytes: file_bytes(&cache_v2),
                min_open_us: c2_min,
                mean_open_us: c2_mean,
                open_path: c2_path.into(),
            },
            pair_open_speedup,
        },
        domain_sweep,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    atomic_write(&PathBuf::from(&out), json.as_bytes()).expect("write report");
    std::fs::remove_dir_all(&work).ok();
    println!("{json}");
    eprintln!("wrote {out}");
}
