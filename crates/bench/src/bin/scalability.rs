//! Experiment E9 — matching cost vs number of sources, with and without
//! blocking.
//!
//! Multi-source matching is quadratic in the number of properties; the
//! paper's holistic-integration motivation (§I) implies far more sources
//! than its evaluation uses. This study regenerates the camera ontology
//! at increasing source counts and measures, per configuration: the
//! candidate-space size, wall time to score it, and (for the blocked
//! variant) the blocking quality — showing how token+embedding blocking
//! bends the quadratic curve while keeping recall.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin scalability -- [--dim 50] [--seed 42]
//! ```

use leapme::core::blocking::{combined_candidates, evaluate_blocking, EmbeddingBlocker, TokenBlocker};
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::data::spec::{generate_dataset, EntityCount};
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args, MarkdownTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let source_counts = [4usize, 8, 16, 24];

    let spec = Domain::Cameras.spec();
    let embeddings = prepare_embeddings(&[Domain::Cameras], dim, seed);

    let mut md = MarkdownTable::new(&[
        "Sources",
        "Properties",
        "Full pairs",
        "Full score (s)",
        "Blocked pairs",
        "Blocked score (s)",
        "Reduction",
        "Completeness",
    ]);
    println!(
        "{:>7} {:>10} {:>11} {:>13} {:>13} {:>16} {:>9} {:>12}",
        "sources", "props", "full pairs", "full time", "blocked pairs", "blocked time", "reduct", "completeness"
    );

    for &n in &source_counts {
        let mut cfg = Domain::Cameras.generator_config();
        cfg.n_sources = n;
        cfg.entities = EntityCount::Balanced(40); // keep instance volume moderate
        let dataset = generate_dataset(&spec, &cfg, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);

        // Train once on a fixed split.
        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(n, 0.5, &mut rng).expect("split");
        let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");

        // Full candidate space.
        let all_sources: Vec<SourceId> = (0..n).map(|i| SourceId(i as u16)).collect();
        let full: Vec<PropertyPair> = dataset.cross_source_pairs(&all_sources);
        let t0 = Instant::now();
        let _ = model
            .score_pairs_parallel(&store, &full, 0)
            .expect("score full");
        let full_time = t0.elapsed().as_secs_f64();

        // Blocked candidate space.
        let candidates = combined_candidates(
            &dataset,
            &embeddings,
            &TokenBlocker::default(),
            &EmbeddingBlocker::default(),
        );
        let stats = evaluate_blocking(&dataset, &candidates);
        let blocked: Vec<PropertyPair> = candidates.iter().cloned().collect();
        let t1 = Instant::now();
        let _ = model
            .score_pairs_parallel(&store, &blocked, 0)
            .expect("score blocked");
        let blocked_time = t1.elapsed().as_secs_f64();

        println!(
            "{:>7} {:>10} {:>11} {:>13.2} {:>13} {:>16.2} {:>9.2} {:>12.2}",
            n,
            dataset.properties().len(),
            full.len(),
            full_time,
            blocked.len(),
            blocked_time,
            stats.reduction_ratio,
            stats.pair_completeness
        );
        md.row(&[
            n.to_string(),
            dataset.properties().len().to_string(),
            full.len().to_string(),
            format!("{full_time:.2}"),
            blocked.len().to_string(),
            format!("{blocked_time:.2}"),
            format!("{:.3}", stats.reduction_ratio),
            format!("{:.3}", stats.pair_completeness),
        ]);
    }

    let mut out = String::new();
    writeln!(
        out,
        "# Scalability: matching cost vs sources (E9)\n\nCamera ontology at growing source counts; one LEAPME model per size scores the\nfull cross-source pair space vs the token+embedding blocked candidates. Seed {seed}, dim {dim}.\n"
    )
    .unwrap();
    out.push_str(&md.render());
    leapme_bench::write_result("scalability.md", &out);
}
