//! Table I — the feature inventory, computed from the implementation.
//!
//! The paper's Table I lists every feature with its count. This binary
//! regenerates that table *from the code* (the counts are the actual
//! lengths of the implemented feature blocks), so any drift between the
//! implementation and the paper is immediately visible. Pass `--dim` to
//! see the counts at a different embedding dimension (paper: 300).
//!
//! ```text
//! cargo run --release -p leapme-bench --bin table1 -- [--dim 300]
//! ```

use leapme::features::{chars, instance, pair, property, tokens};
use leapme::textsim::StringDistances;
use leapme_bench::{Args, MarkdownTable};

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 300);

    let rows: Vec<(&str, String, usize)> = vec![
        (
            "Instance",
            format!(
                "Fraction and count of {} character types ({})",
                chars::CATEGORIES,
                chars::NAMES.join(", ")
            ),
            chars::LEN,
        ),
        (
            "Instance",
            format!(
                "Fraction and count of {} token types ({})",
                tokens::CATEGORIES,
                tokens::NAMES.join(", ")
            ),
            tokens::LEN,
        ),
        (
            "Instance",
            "Numeric value of the instance (−1 if not a number)".into(),
            1,
        ),
        (
            "Instance",
            "Average embeddings vector of the words in the instance".into(),
            dim,
        ),
        (
            "Property",
            "Average of every instance feature".into(),
            instance::len(dim),
        ),
        (
            "Property",
            "Average embeddings vector of the words in the property name".into(),
            dim,
        ),
        (
            "Pair",
            "Difference between the feature vectors of the two properties".into(),
            property::len(dim),
        ),
        (
            "Pair",
            format!(
                "Name string distances ({})",
                StringDistances::feature_names().join(", ")
            ),
            pair::STRING_FEATURES,
        ),
    ];

    let mut md = MarkdownTable::new(&["Type", "Description", "# features"]);
    println!("{:<9} {:<70} {:>10}", "Type", "Description", "# features");
    for (scope, description, count) in &rows {
        println!("{scope:<9} {description:<70} {count:>10}");
        md.row(&[scope.to_string(), description.clone(), count.to_string()]);
    }
    println!(
        "\ninstance vector: {} | property vector: {} | pair vector: {}",
        instance::len(dim),
        property::len(dim),
        pair::len(dim)
    );
    if dim == 300 {
        assert_eq!(instance::len(dim), 329, "paper Table I row 5");
        assert_eq!(property::len(dim), 629, "paper Table I rows 5+6");
        assert_eq!(pair::len(dim), 637, "paper Table I total");
        println!("✓ matches the paper's Table I arithmetic (329 / 629 / 637 at D = 300)");
    }

    let mut out = String::from("# Table I — feature inventory (computed from the code)\n\n");
    out.push_str(&md.render());
    out.push_str(&format!(
        "\nAt embedding dimension {dim}: instance = {}, property = {}, pair = {} features.\n",
        instance::len(dim),
        property::len(dim),
        pair::len(dim)
    ));
    leapme_bench::write_result("table1.md", &out);
}
