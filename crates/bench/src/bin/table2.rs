//! Experiment E1/E2 — reproduce the paper's Table II.
//!
//! Rows: feature scope (Instances / Names / Both) × dataset × training
//! fraction (20% / 80%). Columns: LEAPME with all features, embedding
//! features only ("LEAPME(emb)"), non-embedding features only
//! ("LEAPME(-emb)"), and the five baselines (Nezhadi, AML, FCA-Map,
//! SemProp on name rows; LSH on instance rows; all on "Both" rows —
//! matching which scope each baseline consumes, as in the paper).
//!
//! Every cell averages `--reps` randomized source splits (paper: 25;
//! default here: 5 to keep a laptop run in minutes — pass `--reps 25`
//! for the full protocol).
//!
//! ```text
//! cargo run --release -p leapme-bench --bin table2 -- \
//!     [--reps 5] [--dim 50] [--seed 42] [--domains cameras,headphones,phones,tvs] \
//!     [--part all|leapme|baselines] [--fractions 0.2,0.8]
//! ```
//!
//! Output: aligned table on stdout + `results/table2.md`.

use leapme::baselines::{
    aml::AmlMatcher, fcamap::FcaMapMatcher, lsh::LshMatcher, nezhadi::NezhadiMatcher,
    semprop::SemPropMatcher, Matcher,
};
use leapme::core::metrics::MetricsSummary;
use leapme::core::runner::{run_repeated, EvalMode, RunnerConfig};
use leapme::core::pipeline::LeapmeConfig;
use leapme::prelude::*;
use leapme_bench::{parse_domains, prepare_embeddings, run_baseline_repeated, Args, MarkdownTable};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 5);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let part = args.get("part").unwrap_or("all").to_string();
    let eval = match args.get("eval").unwrap_or("sampled") {
        "full" => EvalMode::FullCandidateSpace,
        _ => EvalMode::SampledExamples,
    };
    let domains = parse_domains(&args);
    let fractions: Vec<f64> = args
        .get("fractions")
        .unwrap_or("0.2,0.8")
        .split(',')
        .map(|s| s.trim().parse().expect("fraction"))
        .collect();

    eprintln!(
        "table2: {} domains × {:?} fractions × {} reps (part: {part})",
        domains.len(),
        fractions,
        reps
    );

    // cell key: (scope_label, domain, fraction, column) → summary
    let mut cells: BTreeMap<(String, String, String, String), MetricsSummary> = BTreeMap::new();

    for &domain in &domains {
        let t0 = std::time::Instant::now();
        let dataset = generate(domain, seed);
        let embeddings = prepare_embeddings(&[domain], dim, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        eprintln!(
            "[{}] dataset + embeddings + features in {:.1}s",
            domain.name(),
            t0.elapsed().as_secs_f32()
        );

        for &fraction in &fractions {
            let frac_label = format!("{:.0}%", fraction * 100.0);

            if part == "all" || part == "leapme" {
                for cfg in FeatureConfig::all() {
                    let t = std::time::Instant::now();
                    let runner = RunnerConfig {
                        train_fraction: fraction,
                        repetitions: reps,
                        negative_ratio: 2,
                        eval,
                        leapme: LeapmeConfig {
                            features: cfg,
                            ..LeapmeConfig::default()
                        },
                        base_seed: seed,
                        threads: 0,
                    };
                    let (summary, _) =
                        run_repeated(&dataset, &store, &runner).expect("leapme run");
                    eprintln!(
                        "[{}] {frac_label} {cfg}: F1 {:.2} ±{:.2} ({:.1}s)",
                        domain.name(),
                        summary.f1_mean,
                        summary.f1_std,
                        t.elapsed().as_secs_f32()
                    );
                    cells.insert(
                        (
                            cfg.scope_label().to_string(),
                            domain.name().to_string(),
                            frac_label.clone(),
                            cfg.kind_label().to_string(),
                        ),
                        summary,
                    );
                }
            }

            if part == "all" || part == "baselines" {
                let semprop = SemPropMatcher::new(&embeddings);
                let mut baselines: Vec<(Box<dyn Matcher>, &[&str])> = vec![
                    (Box::new(NezhadiMatcher::new()), &["Names", "Both"]),
                    (Box::new(AmlMatcher::new()), &["Names", "Both"]),
                    (Box::new(FcaMapMatcher::new()), &["Names", "Both"]),
                    (Box::new(semprop), &["Names", "Both"]),
                    (Box::new(LshMatcher::new()), &["Instances", "Both"]),
                ];
                for (matcher, scopes) in &mut baselines {
                    let t = std::time::Instant::now();
                    let summary = run_baseline_repeated(
                        &dataset,
                        matcher.as_mut(),
                        fraction,
                        reps,
                        2,
                        eval,
                        seed,
                    );
                    eprintln!(
                        "[{}] {frac_label} {}: F1 {:.2} ±{:.2} ({:.1}s)",
                        domain.name(),
                        matcher.name(),
                        summary.f1_mean,
                        summary.f1_std,
                        t.elapsed().as_secs_f32()
                    );
                    for scope in scopes.iter() {
                        cells.insert(
                            (
                                scope.to_string(),
                                domain.name().to_string(),
                                frac_label.clone(),
                                matcher.name().to_string(),
                            ),
                            summary,
                        );
                    }
                }
            }
        }
    }

    // ---- render ----
    let columns = [
        "LEAPME",
        "LEAPME(emb)",
        "LEAPME(-emb)",
        "Nezhadi",
        "AML",
        "FCA-Map",
        "SemProp",
        "LSH",
    ];
    let mut header = vec!["Scope", "Dataset", "Train"];
    header.extend(columns.iter().copied().flat_map(|c| {
        // Three sub-columns per matcher (P R F1) collapse into one cell.
        std::iter::once(c)
    }));
    let mut md = MarkdownTable::new(&header);
    let mut stdout_table = String::new();
    writeln!(
        stdout_table,
        "{:<10} {:<11} {:>5} | {}",
        "Scope",
        "Dataset",
        "Train",
        columns
            .iter()
            .map(|c| format!("{c:>17}"))
            .collect::<Vec<_>>()
            .join(" |")
    )
    .unwrap();

    for scope in ["Instances", "Names", "Both"] {
        for &domain in &domains {
            for &fraction in &fractions {
                let frac_label = format!("{:.0}%", fraction * 100.0);
                let mut row = vec![
                    scope.to_string(),
                    domain.name().to_string(),
                    frac_label.clone(),
                ];
                let mut line = format!(
                    "{:<10} {:<11} {:>5} |",
                    scope,
                    domain.name(),
                    frac_label
                );
                for col in columns {
                    let key = (
                        scope.to_string(),
                        domain.name().to_string(),
                        frac_label.clone(),
                        col.to_string(),
                    );
                    match cells.get(&key) {
                        Some(s) => {
                            row.push(s.table_cell());
                            write!(line, " {:>17} |", s.table_cell()).unwrap();
                        }
                        None => {
                            row.push("-".into());
                            write!(line, " {:>17} |", "-").unwrap();
                        }
                    }
                }
                md.row(&row);
                writeln!(stdout_table, "{line}").unwrap();
            }
        }
    }

    println!("\nTable II reproduction (cells: P R F1, mean over {reps} reps)\n");
    println!("{stdout_table}");
    let mut report = String::new();
    writeln!(
        report,
        "# Table II reproduction\n\nCells are `P R F1`, averaged over {reps} random source splits (seed {seed}, embedding dim {dim}).\n"
    )
    .unwrap();
    report.push_str(&md.render());
    leapme_bench::write_result("table2.md", &report);
}
