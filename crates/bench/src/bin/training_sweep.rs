//! Experiment E3 — impact of the amount of training data (paper §V-C).
//!
//! The paper evaluates 20% vs 80% training-source fractions and reports
//! that LEAPME already outperforms the baselines at 20%. This sweep
//! extends the axis: training fraction 0.1 … 0.9 per dataset, producing
//! the F1-vs-training-fraction series behind the paper's observation.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin training_sweep -- \
//!     [--reps 3] [--dim 50] [--seed 42] [--domains …]
//! ```

use leapme::core::pipeline::LeapmeConfig;
use leapme::core::runner::{run_repeated, EvalMode, RunnerConfig};
use leapme::prelude::*;
use leapme_bench::{parse_domains, prepare_embeddings, Args, MarkdownTable};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 3);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domains = parse_domains(&args);
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    let mut md = MarkdownTable::new(&["Dataset", "Train %", "P", "R", "F1", "±F1"]);
    println!(
        "{:<12} {:>7} {:>6} {:>6} {:>6} {:>6}",
        "dataset", "train%", "P", "R", "F1", "±F1"
    );

    for &domain in &domains {
        let dataset = generate(domain, seed);
        let embeddings = prepare_embeddings(&[domain], dim, seed);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);

        for &fraction in &fractions {
            let runner = RunnerConfig {
                train_fraction: fraction,
                repetitions: reps,
                eval: EvalMode::SampledExamples,
                leapme: LeapmeConfig::default(),
                base_seed: seed,
                ..RunnerConfig::default()
            };
            let (summary, _) = run_repeated(&dataset, &store, &runner).expect("run");
            println!(
                "{:<12} {:>6.0}% {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
                domain.name(),
                fraction * 100.0,
                summary.precision_mean,
                summary.recall_mean,
                summary.f1_mean,
                summary.f1_std
            );
            md.row(&[
                domain.name().into(),
                format!("{:.0}%", fraction * 100.0),
                format!("{:.3}", summary.precision_mean),
                format!("{:.3}", summary.recall_mean),
                format!("{:.3}", summary.f1_mean),
                format!("{:.3}", summary.f1_std),
            ]);
        }
    }

    let mut report = String::new();
    writeln!(
        report,
        "# Training-fraction sweep (E3)\n\nLEAPME (all features), {reps} reps per point, seed {seed}, dim {dim}.\n"
    )
    .unwrap();
    report.push_str(&md.render());
    leapme_bench::write_result("training_sweep.md", &report);
}
