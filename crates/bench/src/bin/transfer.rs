//! Experiment E4 — transfer learning across product domains (paper §V).
//!
//! Trains LEAPME on one domain (all of its sources) and evaluates it,
//! unchanged, on every other domain, for all 12 ordered domain pairs,
//! plus the in-domain diagonal for reference. All domains share one
//! embedding space (trained on the union of their corpora), as transfer
//! requires.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin transfer -- \
//!     [--dim 50] [--seed 42]
//! ```

use leapme::core::pipeline::LeapmeConfig;
use leapme::core::transfer::transfer_evaluate;
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args, MarkdownTable};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);

    // One shared embedding space over all four domains.
    let embeddings = prepare_embeddings(&Domain::ALL, dim, seed);
    eprintln!(
        "shared embedding space: {} words × {} dims",
        embeddings.len(),
        embeddings.dim()
    );

    let datasets: Vec<Dataset> = Domain::ALL.iter().map(|&d| generate(d, seed)).collect();
    let stores: Vec<PropertyFeatureStore> = datasets
        .iter()
        .map(|ds| PropertyFeatureStore::build(ds, &embeddings))
        .collect();

    let mut md = MarkdownTable::new(&["Train ↓ / Test →", "cameras", "headphones", "phones", "tvs"]);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}   (F1)",
        "train\\test", "cameras", "headphones", "phones", "tvs"
    );

    for (i, train_domain) in Domain::ALL.iter().enumerate() {
        let mut row = vec![train_domain.name().to_string()];
        let mut line = format!("{:<12}", train_domain.name());
        for (j, _test_domain) in Domain::ALL.iter().enumerate() {
            let out = transfer_evaluate(
                &datasets[i],
                &stores[i],
                &datasets[j],
                &stores[j],
                &LeapmeConfig::default(),
                2,
                seed,
            )
            .expect("transfer run");
            row.push(format!("{:.3}", out.metrics.f1));
            write!(line, " {:>10.2}", out.metrics.f1).unwrap();
        }
        md.row(&row);
        println!("{line}");
    }

    let mut report = String::new();
    writeln!(
        report,
        "# Transfer learning across domains (E4)\n\nCell = F1 of a LEAPME model trained on the row domain (all sources, 2:1 negatives)\nand evaluated on the column domain's full cross-source pair space. Diagonal = in-domain reference.\nSeed {seed}, shared embedding dim {dim}.\n"
    )
    .unwrap();
    report.push_str(&md.render());
    leapme_bench::write_result("transfer.md", &report);
}
