//! Experiment E11 — systematic hyper-parameter search.
//!
//! The paper tuned manually and reports that "most alterations … do not
//! significantly impact on the results" (§IV-D). This binary runs the
//! systematic grid (hidden layouts × LR schedules) on one dataset's
//! tuning region and prints the ranking — both validating the paper's
//! claim and giving users a starting point for their own data.
//!
//! ```text
//! cargo run --release -p leapme-bench --bin tuning -- \
//!     [--domain phones] [--reps 3] [--dim 50] [--seed 42]
//! ```

use leapme::core::runner::RunnerConfig;
use leapme::core::tuning::{grid_search, TuningGrid};
use leapme::prelude::*;
use leapme_bench::{prepare_embeddings, Args, MarkdownTable};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 3);
    let dim: usize = args.get_or("dim", 50);
    let seed: u64 = args.get_or("seed", 42);
    let domain = Domain::ALL
        .into_iter()
        .find(|d| d.name() == args.get("domain").unwrap_or("phones"))
        .expect("known domain");

    let dataset = generate(domain, seed);
    let embeddings = prepare_embeddings(&[domain], dim, seed);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    let base = RunnerConfig {
        repetitions: reps,
        base_seed: seed ^ 0x7u64, // tuning region ≠ final evaluation region
        ..RunnerConfig::default()
    };
    let ranked = grid_search(&dataset, &store, &TuningGrid::default(), &base).expect("grid");

    let mut md = MarkdownTable::new(&["Rank", "Configuration", "F1", "±F1"]);
    println!("{:<5} {:<45} {:>6} {:>6}", "rank", "configuration", "F1", "±F1");
    for (i, c) in ranked.iter().enumerate() {
        println!(
            "{:<5} {:<45} {:>6.3} {:>6.3}",
            i + 1,
            c.label,
            c.f1_mean,
            c.f1_std
        );
        md.row(&[
            (i + 1).to_string(),
            c.label.clone(),
            format!("{:.3}", c.f1_mean),
            format!("{:.3}", c.f1_std),
        ]);
    }
    let spread = ranked.first().map(|c| c.f1_mean).unwrap_or(0.0)
        - ranked.last().map(|c| c.f1_mean).unwrap_or(0.0);
    println!("\nbest-to-worst F1 spread: {spread:.3}");

    let mut out = String::new();
    writeln!(
        out,
        "# Hyper-parameter grid search (E11)\n\nDomain {}, {reps} reps per grid point, seed {seed}, dim {dim}.\nBest-to-worst F1 spread: {spread:.3} — the paper's \"most alterations do not significantly impact\" claim holds when the spread is small.\n",
        domain.name()
    )
    .unwrap();
    out.push_str(&md.render());
    leapme_bench::write_result("tuning.md", &out);
}
