//! Shared plumbing for the LEAPME experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index); this library
//! holds what they share: argument parsing, embedding preparation, and
//! Markdown result emission into `results/`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use leapme::data::domains::Domain;
use leapme::embedding::store::EmbeddingStore;
use leapme::{train_domain_embeddings, EmbeddingTrainingConfig};
use std::io::Write;
use std::path::PathBuf;

/// Tiny flag parser for the experiment binaries: `--key value` pairs.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse the process arguments (everything after the binary name).
    pub fn parse() -> Self {
        let mut pairs = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(key) = iter.next() {
            if let Some(stripped) = key.strip_prefix("--") {
                let value = iter.next().unwrap_or_default();
                pairs.push((stripped.to_string(), value));
            }
        }
        Args { pairs }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// The standard embedding setup every experiment shares: one embedding
/// space trained over the given domains' corpora, deterministic in
/// `seed`.
pub fn prepare_embeddings(domains: &[Domain], dim: usize, seed: u64) -> EmbeddingStore {
    let cfg = EmbeddingTrainingConfig {
        glove: leapme::embedding::glove::GloVeConfig {
            dim,
            ..Default::default()
        },
        ..Default::default()
    };
    train_domain_embeddings(domains, &cfg, seed).expect("embedding training")
}

/// Write a result artifact under `results/` (created on demand) and echo
/// the path. Results also go to stdout by convention, so the file is for
/// the record.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result");
    eprintln!("[saved {}]", path.display());
    path
}

/// Markdown table builder.
#[derive(Debug, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        MarkdownTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render to Markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Parse a `--domains cameras,tvs` style flag into domains
/// (default: all four).
pub fn parse_domains(args: &Args) -> Vec<Domain> {
    match args.get("domains") {
        None => Domain::ALL.to_vec(),
        Some(spec) => spec
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|name| {
                Domain::ALL
                    .into_iter()
                    .find(|d| d.name() == name.trim())
                    .unwrap_or_else(|| panic!("unknown domain {name:?}"))
            })
            .collect(),
    }
}

use leapme::baselines::Matcher;
use leapme::core::metrics::{Metrics, MetricsSummary};
use leapme::core::runner::repetition_seed;
use leapme::core::sampling;
use leapme::data::model::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluate a baseline matcher under the paper's repeated-splits protocol,
/// reusing the exact same source splits (and eval mode) as `leapme-core`'s
/// runner — same `base_seed` ⇒ same splits and same test examples.
pub fn run_baseline_repeated(
    dataset: &Dataset,
    matcher: &mut dyn Matcher,
    train_fraction: f64,
    repetitions: usize,
    negative_ratio: usize,
    eval: leapme::core::runner::EvalMode,
    base_seed: u64,
) -> MetricsSummary {
    use leapme::core::runner::EvalMode;
    let mut runs = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let seed = repetition_seed(base_seed, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(dataset.sources().len(), train_fraction, &mut rng)
            .expect("valid split");
        let train = sampling::training_pairs(dataset, &split.train, negative_ratio, &mut rng);
        matcher.fit(dataset, &train);
        let (candidates, gt) = match eval {
            EvalMode::SampledExamples => {
                let examples =
                    sampling::test_examples(dataset, &split.train, negative_ratio, &mut rng);
                let gt = examples
                    .iter()
                    .filter(|(_, y)| *y)
                    .map(|(p, _)| p.clone())
                    .collect();
                (examples.into_iter().map(|(p, _)| p).collect(), gt)
            }
            EvalMode::FullCandidateSpace => (
                sampling::test_pairs(dataset, &split.train),
                sampling::test_ground_truth(dataset, &split.train),
            ),
        };
        let predicted = matcher.predict(dataset, &candidates);
        runs.push(Metrics::from_sets(&predicted, &gt));
    }
    MetricsSummary::aggregate(&runs).expect("non-empty repetitions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.render();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn markdown_table_checks_width() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn args_accessors() {
        let args = Args {
            pairs: vec![
                ("reps".into(), "7".into()),
                ("domains".into(), "tvs,phones".into()),
                ("reps".into(), "9".into()), // later flag wins
            ],
        };
        assert_eq!(args.get("domains"), Some("tvs,phones"));
        assert_eq!(args.get_or("reps", 1usize), 9);
        assert_eq!(args.get_or("missing", 5usize), 5);
        // Unparseable values fall back to the default.
        let bad = Args {
            pairs: vec![("reps".into(), "abc".into())],
        };
        assert_eq!(bad.get_or("reps", 3usize), 3);
    }

    #[test]
    fn parse_domains_selects_and_defaults() {
        use leapme::data::domains::Domain;
        let all = parse_domains(&Args { pairs: vec![] });
        assert_eq!(all.len(), 4);
        let some = parse_domains(&Args {
            pairs: vec![("domains".into(), "tvs, phones".into())],
        });
        assert_eq!(some, vec![Domain::Tvs, Domain::Phones]);
    }

    #[test]
    #[should_panic(expected = "unknown domain")]
    fn parse_domains_rejects_unknown() {
        parse_domains(&Args {
            pairs: vec![("domains".into(), "fridges".into())],
        });
    }
}
