//! Minimal `--key value` flag parsing with typed accessors.

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

/// Flags that stand alone: their presence means `true` and no value
/// token follows them on the command line.
const BOOLEAN_FLAGS: &[&str] = &["lenient", "quantized", "resume"];

impl Flags {
    /// Parse a flag list. Every flag must start with `--` and carry
    /// exactly one value — except the boolean flags in [`BOOLEAN_FLAGS`],
    /// which take none. Repeated flags keep the last value.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        let mut iter = argv.iter();
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "expected --flag, found {token:?}"
                )));
            };
            if BOOLEAN_FLAGS.contains(&key) {
                values.insert(key.to_string(), "true".to_string());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(CliError::Usage(format!("flag --{key} is missing a value")));
            };
            values.insert(key.to_string(), value.clone());
        }
        Ok(Flags { values })
    }

    /// Build from key/value pairs (tests and programmatic use).
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        Flags {
            values: pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Whether a boolean flag (e.g. `--lenient`) was given.
    pub fn is_set(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false" && v != "0")
    }

    /// Optional typed flag with default; malformed values are an error.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::Usage(format!("flag --{key} has invalid value {raw:?}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&strings(&["--seed", "7", "--out", "x.json"])).unwrap();
        assert_eq!(f.get("seed"), Some("7"));
        assert_eq!(f.require("out").unwrap(), "x.json");
        assert_eq!(f.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(f.get_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn rejects_positional() {
        assert!(Flags::parse(&strings(&["oops"])).is_err());
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(Flags::parse(&strings(&["--seed"])).is_err());
    }

    #[test]
    fn boolean_flag_takes_no_value() {
        let f = Flags::parse(&strings(&["--lenient", "--out", "x.json"])).unwrap();
        assert!(f.is_set("lenient"));
        assert_eq!(f.get("out"), Some("x.json"));
    }

    #[test]
    fn trailing_boolean_flag_parses() {
        let f = Flags::parse(&strings(&["--out", "x.json", "--lenient"])).unwrap();
        assert!(f.is_set("lenient"));
        assert!(!f.is_set("missing"));
    }

    #[test]
    fn missing_required_flag() {
        let f = Flags::parse(&[]).unwrap();
        let err = f.require("dataset").unwrap_err();
        assert!(err.to_string().contains("--dataset"));
    }

    #[test]
    fn invalid_typed_value() {
        let f = Flags::from_pairs(&[("seed", "abc")]);
        assert!(f.get_or("seed", 0u64).is_err());
    }

    #[test]
    fn repeated_flag_keeps_last() {
        let f = Flags::parse(&strings(&["--seed", "1", "--seed", "2"])).unwrap();
        assert_eq!(f.get("seed"), Some("2"));
    }
}
