//! `leapme analyze` — error breakdown of a similarity graph against a
//! dataset's ground truth.

use super::{load_dataset, load_graph};
use crate::args::Flags;
use crate::CliError;
use leapme::core::analysis::analyze;
use leapme::data::model::PropertyPair;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let dataset = load_dataset(flags.require("dataset")?)?;
    let graph = load_graph(flags.require("graph")?)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;

    let candidates: Vec<PropertyPair> = graph.iter().map(|(p, _)| p.clone()).collect();
    let predicted = graph.matches(threshold);
    let report = analyze(&dataset, &predicted, &candidates);
    Ok(report.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::simgraph::SimilarityGraph;
    use leapme::data::domains::{generate, Domain};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn analyzes_imperfect_graph() {
        let ds = generate(Domain::Headphones, 12);
        let ds_path = tmp("analyze_ds.json");
        std::fs::write(&ds_path, ds.to_json()).unwrap();

        // Graph: all ground truth at 0.9, but miss every third pair
        // (scored 0.2) and add noise edges.
        let mut graph = SimilarityGraph::new();
        for (i, p) in ds.ground_truth_pairs().into_iter().enumerate() {
            graph.add(p, if i % 3 == 0 { 0.2 } else { 0.9 });
        }
        let graph_path = tmp("analyze_graph.json");
        std::fs::write(&graph_path, serde_json::to_string(&graph).unwrap()).unwrap();

        let out = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(out.contains("hardest reference properties"), "{out}");
        assert!(out.contains("missed"), "{out}");
        std::fs::remove_file(ds_path).ok();
        std::fs::remove_file(graph_path).ok();
    }
}
