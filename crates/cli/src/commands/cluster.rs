//! `leapme cluster` — derive property clusters from a similarity graph.

use super::{load_graph, to_json_pretty};
use crate::args::Flags;
use crate::CliError;
use leapme::core::cluster::{connected_components, star_clustering, Clustering};
use std::fmt::Write as _;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let graph = load_graph(flags.require("graph")?)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;
    let method = flags.get("method").unwrap_or("star");

    let clustering: Clustering = match method {
        "star" => star_clustering(&graph, threshold),
        "components" => connected_components(&graph, threshold),
        other => {
            return Err(CliError::Usage(format!(
                "unknown method {other:?} (expected star or components)"
            )))
        }
    };

    let mut out = String::new();
    let non_trivial: Vec<_> = clustering.non_trivial().collect();
    writeln!(
        out,
        "{} clusters ({} with ≥2 members) from {} nodes at threshold {threshold} ({method})",
        clustering.len(),
        non_trivial.len(),
        graph.nodes().len()
    )
    .unwrap();
    let mut sorted = non_trivial.clone();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for cluster in sorted.iter().take(20) {
        writeln!(out, "── cluster of {}:", cluster.len()).unwrap();
        for key in cluster.iter().take(8) {
            writeln!(out, "   {key}").unwrap();
        }
        if cluster.len() > 8 {
            writeln!(out, "   … and {} more", cluster.len() - 8).unwrap();
        }
    }
    if let Some(json_out) = flags.get("out") {
        let clusters_json: Vec<Vec<String>> = clustering
            .clusters()
            .iter()
            .map(|c| c.iter().map(|k| k.to_string()).collect())
            .collect();
        leapme::data::io::atomic_write(
            std::path::Path::new(json_out),
            to_json_pretty(&clusters_json, "clusters")?.as_bytes(),
        )?;
        writeln!(out, "[clusters written to {json_out}]").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::simgraph::SimilarityGraph;
    use leapme::data::model::{PropertyKey, PropertyPair, SourceId};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn graph_file(name: &str) -> std::path::PathBuf {
        let mut g = SimilarityGraph::new();
        let key = |s: u16, n: &str| PropertyKey::new(SourceId(s), n);
        g.add(PropertyPair::new(key(0, "mp"), key(1, "resolution")), 0.9);
        g.add(PropertyPair::new(key(1, "resolution"), key(2, "pixels")), 0.8);
        g.add(PropertyPair::new(key(0, "mp"), key(2, "weight")), 0.1);
        let path = tmp(name);
        std::fs::write(&path, serde_json::to_string(&g).unwrap()).unwrap();
        path
    }

    #[test]
    fn clusters_with_both_methods() {
        let path = graph_file("cluster_graph.json");
        for method in ["star", "components"] {
            let out = run(&Flags::from_pairs(&[
                ("graph", path.to_str().unwrap()),
                ("method", method),
            ]))
            .unwrap();
            assert!(out.contains("clusters"), "{out}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writes_cluster_json() {
        let path = graph_file("cluster_graph2.json");
        let out_path = tmp("clusters.json");
        run(&Flags::from_pairs(&[
            ("graph", path.to_str().unwrap()),
            ("out", out_path.to_str().unwrap()),
        ]))
        .unwrap();
        let clusters: Vec<Vec<String>> =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(!clusters.is_empty());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn rejects_unknown_method() {
        let path = graph_file("cluster_graph3.json");
        let err = run(&Flags::from_pairs(&[
            ("graph", path.to_str().unwrap()),
            ("method", "kmeans"),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("kmeans"));
        std::fs::remove_file(path).ok();
    }
}
