//! `leapme continual` — run the continual-ingestion scenario: sources
//! arrive on a drifting schedule, each passes the validation gate (or
//! is quarantined with a typed reason), drift past the PSI threshold
//! triggers a champion/challenger refit with an active-learning label
//! budget, and a regressing challenger auto-rolls back. The command
//! prints the quality-over-time curve and writes the full report as
//! JSON.

use super::{to_json_pretty, cancel_token};
use crate::args::Flags;
use crate::CliError;
use leapme::core::continual::{run_schedule, ContinualConfig, RunOptions};
use leapme::core::journal::RunJournal;
use leapme::core::pipeline::LeapmeConfig;
use leapme::data::drift::{generate_drift_schedule, DriftConfig};
use leapme::data::stress::StressConfig;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use std::path::Path;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let properties: usize = flags.get_or("properties", 300usize)?;
    if properties == 0 {
        return Err(CliError::Usage("--properties must be at least 1".into()));
    }
    let epochs: usize = flags.get_or("epochs", 4usize)?;
    let seed: u64 = flags.get_or("seed", 42u64)?;
    let dim: usize = flags.get_or("dim", 16usize)?;
    let out = flags.require("out")?;

    let dcfg = DriftConfig {
        base: StressConfig {
            properties,
            properties_per_source: flags.get_or("properties-per-source", 25usize)?,
            cluster_size: 4,
            instances_per_property: 1,
            seed,
        },
        epochs,
        sources_per_epoch: flags.get_or("sources-per-epoch", 2usize)?,
        naming_drift: flags.get_or("naming-drift", 0.2f64)?,
        value_drift: flags.get_or("value-drift", 0.3f64)?,
        corrupt_every: flags.get_or("corrupt-every", 0usize)?,
    };
    let schedule = generate_drift_schedule(&dcfg);
    let embeddings = leapme::stress_embedding_store(&dcfg.base, dim, seed ^ 0xE5);

    let mut cfg = ContinualConfig {
        label_budget: flags.get_or("label-budget", 64usize)?,
        model: LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(16, 1e-3), (4, 1e-4)]),
                ..TrainConfig::default()
            },
            hidden: vec![24],
            ..LeapmeConfig::default()
        },
        seed: seed ^ 0xC0,
        ..ContinualConfig::default()
    };
    cfg.drift.threshold = flags.get_or("drift-threshold", cfg.drift.threshold)?;

    let journal = match flags.get("journal") {
        Some(path) => Some(
            RunJournal::open(Path::new(path))
                .map_err(|e| CliError::Pipeline(format!("{path}: {e}")))?,
        ),
        None => None,
    };
    let opts = RunOptions {
        force_refit_every: flags.get("force-refit-every").map(|v| v.parse()).transpose()
            .map_err(|_| CliError::Usage("--force-refit-every must be an integer".into()))?,
        stop_after_epoch: flags.get("stop-after-epoch").map(|v| v.parse()).transpose()
            .map_err(|_| CliError::Usage("--stop-after-epoch must be an integer".into()))?,
        cancel: Some(cancel_token(flags)?),
    };

    let report = run_schedule(&schedule, &embeddings, &cfg, journal.as_ref(), &opts)
        .map_err(|e| super::pipeline_err(e, "journaled decisions survive; rerun to resume"))?;

    std::fs::write(out, to_json_pretty(&report, "continual report")?)?;

    // Quality-over-time curve, one line per epoch — the human-readable
    // face of the report the JSON file carries in full.
    let mut text = String::from(
        "epoch  sources  props  precision  recall     f1     drift(feat/score)  quar  decision  gen\n",
    );
    for p in &report.points {
        text.push_str(&format!(
            "{:>5}  {:>7}  {:>5}  {:>9.4}  {:>6.4}  {:>6.4}  {:>8.3}/{:<8.3}  {:>4}  {:<8}  {:>3}\n",
            p.epoch,
            p.sources,
            p.properties,
            p.precision,
            p.recall,
            p.f1,
            p.drift_features,
            p.drift_scores,
            p.quarantined,
            p.decision.as_deref().unwrap_or("-"),
            p.generation,
        ));
    }
    text.push_str(&format!(
        "quarantined={} promotions={} rollbacks={} labels_used={} final_f1={:.4}\n",
        report.quarantined.len(),
        report.promotions,
        report.rollbacks,
        report.labels_used,
        report.final_f1,
    ));
    for q in &report.quarantined {
        text.push_str(&format!(
            "quarantine epoch={} source={} reason={}\n",
            q.epoch, q.source, q.reason
        ));
    }
    text.push_str(&format!("continual report written to {out}\n"));
    Ok(text)
}
