//! `leapme embed` — train GloVe embeddings on domain corpora and save in
//! the standard text format.

use super::parse_domain;
use crate::args::Flags;
use crate::CliError;
use leapme::embedding::glove::GloVeConfig;
use leapme::{train_domain_embeddings, EmbeddingTrainingConfig};

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let domains: Vec<_> = flags
        .require("domains")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_domain(s.trim()))
        .collect::<Result<_, _>>()?;
    if domains.is_empty() {
        return Err(CliError::Usage("--domains must name at least one domain".into()));
    }
    let dim: usize = flags.get_or("dim", 50)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let epochs: usize = flags.get_or("epochs", 25)?;
    let out = flags.require("out")?;

    let cfg = EmbeddingTrainingConfig {
        glove: GloVeConfig {
            dim,
            epochs,
            ..GloVeConfig::default()
        },
        ..EmbeddingTrainingConfig::default()
    };
    let store = train_domain_embeddings(&domains, &cfg, seed)
        .map_err(|e| CliError::Pipeline(format!("embedding training failed: {e}")))?;
    store
        .save_text(std::path::Path::new(out))
        .map_err(|e| CliError::Pipeline(format!("saving {out}: {e}")))?;
    Ok(format!(
        "wrote {out}: {} vectors × {dim} dims ({} domains, {epochs} epochs, seed {seed})",
        store.len(),
        domains.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::embedding::store::EmbeddingStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn trains_and_saves_loadable_vectors() {
        let path = tmp("embed.txt");
        let flags = Flags::from_pairs(&[
            ("domains", "tvs"),
            ("dim", "8"),
            ("epochs", "2"),
            ("out", path.to_str().unwrap()),
        ]);
        let msg = run(&flags).unwrap();
        assert!(msg.contains("8 dims"));
        let store = EmbeddingStore::load_text(&path).unwrap();
        assert_eq!(store.dim(), 8);
        assert!(store.len() > 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_domains() {
        let flags = Flags::from_pairs(&[("domains", ""), ("out", "x.txt")]);
        assert!(run(&flags).is_err());
    }

    #[test]
    fn rejects_unknown_domain() {
        let flags = Flags::from_pairs(&[("domains", "toasters"), ("out", "x.txt")]);
        assert!(run(&flags).is_err());
    }
}
