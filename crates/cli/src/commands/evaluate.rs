//! `leapme evaluate` — score a similarity graph against a dataset's
//! ground truth.

use super::{load_dataset, load_graph};
use crate::args::Flags;
use crate::CliError;
use leapme::core::metrics::Metrics;
use leapme::data::model::PropertyPair;
use std::collections::BTreeSet;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let dataset = load_dataset(flags.require("dataset")?)?;
    let graph = load_graph(flags.require("graph")?)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;

    let predicted = graph.matches(threshold);
    // Restrict ground truth to the pairs the graph actually scored — the
    // graph typically covers only the held-out region.
    let scored: BTreeSet<PropertyPair> = graph.iter().map(|(p, _)| p.clone()).collect();
    let actual: BTreeSet<PropertyPair> = dataset
        .ground_truth_pairs()
        .into_iter()
        .filter(|p| scored.contains(p))
        .collect();
    let m = Metrics::from_sets(&predicted, &actual);
    Ok(format!(
        "graph: {} scored pairs, {} predicted matches at threshold {threshold}\n\
         ground truth in scope: {} pairs\n{m}",
        graph.len(),
        predicted.len(),
        actual.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::simgraph::SimilarityGraph;
    use leapme::data::domains::{generate, Domain};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn evaluates_perfect_graph() {
        let ds = generate(Domain::Headphones, 4);
        let ds_path = tmp("eval_ds.json");
        std::fs::write(&ds_path, ds.to_json()).unwrap();

        // Build a graph scoring exactly the ground truth at 1.0.
        let mut graph = SimilarityGraph::new();
        for p in ds.ground_truth_pairs() {
            graph.add(p, 1.0);
        }
        let graph_path = tmp("eval_graph.json");
        std::fs::write(&graph_path, serde_json::to_string(&graph).unwrap()).unwrap();

        let out = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(out.contains("P=1.000 R=1.000"), "{out}");
        std::fs::remove_file(ds_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn threshold_changes_predictions() {
        let ds = generate(Domain::Headphones, 5);
        let ds_path = tmp("eval_ds2.json");
        std::fs::write(&ds_path, ds.to_json()).unwrap();
        let mut graph = SimilarityGraph::new();
        for (i, p) in ds.ground_truth_pairs().into_iter().enumerate() {
            graph.add(p, if i % 2 == 0 { 0.9 } else { 0.4 });
        }
        let graph_path = tmp("eval_graph2.json");
        std::fs::write(&graph_path, serde_json::to_string(&graph).unwrap()).unwrap();

        let strict = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
            ("threshold", "0.5"),
        ]))
        .unwrap();
        let loose = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
            ("threshold", "0.1"),
        ]))
        .unwrap();
        assert!(strict.contains("R=0.5") || strict.contains("R=0.4"), "{strict}");
        assert!(loose.contains("R=1.000"), "{loose}");
        std::fs::remove_file(ds_path).ok();
        std::fs::remove_file(graph_path).ok();
    }
}
