//! `leapme fuse` — derive a unified schema from a similarity graph.

use super::{load_dataset, load_graph, to_json_pretty};
use crate::args::Flags;
use crate::CliError;
use leapme::core::cluster::{connected_components, star_clustering};
use leapme::core::fusion::fuse;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let dataset = load_dataset(flags.require("dataset")?)?;
    let graph = load_graph(flags.require("graph")?)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;
    let method = flags.get("method").unwrap_or("star");

    let clustering = match method {
        "star" => star_clustering(&graph, threshold),
        "components" => connected_components(&graph, threshold),
        other => {
            return Err(CliError::Usage(format!(
                "unknown method {other:?} (expected star or components)"
            )))
        }
    };
    let schema = fuse(&dataset, &clustering);

    let mut out = schema.to_text();
    if let Some(path) = flags.get("out") {
        leapme::data::io::atomic_write(
            std::path::Path::new(path),
            to_json_pretty(&schema, "unified schema")?.as_bytes(),
        )?;
        out.push_str(&format!("\n[schema written to {path}]\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::simgraph::SimilarityGraph;
    use leapme::data::domains::{generate, Domain};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fuses_ground_truth_graph() {
        let ds = generate(Domain::Headphones, 3);
        let ds_path = tmp("fuse_ds.json");
        std::fs::write(&ds_path, ds.to_json()).unwrap();

        let mut graph = SimilarityGraph::new();
        for p in ds.ground_truth_pairs() {
            graph.add(p, 0.95);
        }
        let graph_path = tmp("fuse_graph.json");
        std::fs::write(&graph_path, serde_json::to_string(&graph).unwrap()).unwrap();
        let schema_path = tmp("fuse_schema.json");

        let out = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
            ("out", schema_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(out.contains("unified schema"), "{out}");
        assert!(out.contains("samples:"), "{out}");
        assert!(schema_path.exists());
        let schema: leapme::core::fusion::UnifiedSchema =
            serde_json::from_str(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
        assert!(!schema.properties.is_empty());
        for p in [ds_path, graph_path, schema_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn propagates_graph_errors() {
        let err = run(&Flags::from_pairs(&[
            ("dataset", "/no/ds.json"),
            ("graph", "/no/graph.json"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn unknown_method_rejected() {
        let ds = generate(Domain::Tvs, 4);
        let ds_path = tmp("fuse_ds2.json");
        std::fs::write(&ds_path, ds.to_json()).unwrap();
        let graph_path = tmp("fuse_graph2.json");
        std::fs::write(
            &graph_path,
            serde_json::to_string(&SimilarityGraph::new()).unwrap(),
        )
        .unwrap();
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds_path.to_str().unwrap()),
            ("graph", graph_path.to_str().unwrap()),
            ("method", "dbscan"),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("dbscan"));
        std::fs::remove_file(ds_path).ok();
        std::fs::remove_file(graph_path).ok();
    }
}
