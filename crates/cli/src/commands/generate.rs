//! `leapme generate` — emit a synthetic evaluation dataset as JSON.

use super::parse_domain;
use crate::args::Flags;
use crate::CliError;
use leapme::data::domains::generate;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let domain = parse_domain(flags.require("domain")?)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let out = flags.require("out")?;

    let dataset = generate(domain, seed);
    leapme::data::io::atomic_write(std::path::Path::new(out), dataset.to_json().as_bytes())?;
    let stats = dataset.stats();
    Ok(format!(
        "wrote {out}: {} sources, {} properties, {} instances, {} matching pairs (seed {seed})",
        stats.sources, stats.properties, stats.instances, stats.matching_pairs
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::data::model::Dataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generates_loadable_dataset() {
        let path = tmp("gen_tvs.json");
        let flags = Flags::from_pairs(&[
            ("domain", "tvs"),
            ("seed", "7"),
            ("out", path.to_str().unwrap()),
        ]);
        let msg = run(&flags).unwrap();
        assert!(msg.contains("8 sources"));
        let ds = Dataset::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(ds.name(), "tvs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requires_domain_and_out() {
        assert!(run(&Flags::from_pairs(&[("out", "x")])).is_err());
        assert!(run(&Flags::from_pairs(&[("domain", "tvs")])).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p1 = tmp("gen_a.json");
        let p2 = tmp("gen_b.json");
        for p in [&p1, &p2] {
            run(&Flags::from_pairs(&[
                ("domain", "headphones"),
                ("seed", "3"),
                ("out", p.to_str().unwrap()),
            ]))
            .unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&p1).unwrap(),
            std::fs::read_to_string(&p2).unwrap()
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}
