//! `leapme import` — convert CSV instance (and optional alignment) files
//! into a dataset JSON ready for `leapme match`.

use crate::args::Flags;
use crate::CliError;
use leapme::data::io::{read_dataset, read_dataset_lenient};
use std::path::Path;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let instances = flags.require("instances")?;
    let name = flags.get("name").unwrap_or("imported");
    let out = flags.require("out")?;
    let alignments = flags.get("alignments").map(Path::new);

    // Strict mode (the default) fails the whole import on the first
    // malformed row; `--lenient` imports the good rows and reports the
    // skipped ones (capped at the first 20).
    let (dataset, note) = if flags.is_set("lenient") {
        let (dataset, report) = read_dataset_lenient(name, Path::new(instances), alignments)
            .map_err(|e| CliError::Parse(e.to_string()))?;
        let note = if report.skipped > 0 {
            format!("\n{}", report.summary())
        } else {
            String::new()
        };
        (dataset, note)
    } else {
        let dataset = read_dataset(name, Path::new(instances), alignments)
            .map_err(|e| CliError::Parse(e.to_string()))?;
        (dataset, String::new())
    };
    leapme::data::io::atomic_write(Path::new(out), dataset.to_json().as_bytes())?;
    let s = dataset.stats();
    Ok(format!(
        "wrote {out}: {} sources, {} properties ({} aligned), {} instances, {} matching pairs{note}",
        s.sources, s.properties, s.aligned_properties, s.instances, s.matching_pairs
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::data::model::Dataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn imports_csv_pair() {
        let inst = tmp("import_instances.csv");
        std::fs::write(
            &inst,
            "source,property,entity,value\nshopA,mp,e1,20 MP\nshopB,resolution,x1,20\n",
        )
        .unwrap();
        let align = tmp("import_alignments.csv");
        std::fs::write(
            &align,
            "source,property,reference\nshopA,mp,resolution\nshopB,resolution,resolution\n",
        )
        .unwrap();
        let out = tmp("import_out.json");
        let msg = run(&Flags::from_pairs(&[
            ("instances", inst.to_str().unwrap()),
            ("alignments", align.to_str().unwrap()),
            ("name", "myshop"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("1 matching pairs"), "{msg}");
        let ds = Dataset::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(ds.name(), "myshop");
        for p in [inst, align, out] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn lenient_import_skips_bad_rows_and_reports_them() {
        let inst = tmp("import_lenient.csv");
        std::fs::write(
            &inst,
            "source,property,entity,value\n\
             shopA,mp,e1,20 MP\n\
             too,few\n\
             shopB,resolution,x1,20\n",
        )
        .unwrap();
        let out = tmp("import_lenient_out.json");
        let msg = run(&Flags::from_pairs(&[
            ("instances", inst.to_str().unwrap()),
            ("lenient", "true"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("2 instances"), "{msg}");
        assert!(msg.contains("skipped 1 malformed"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
        for p in [inst, out] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn reports_csv_errors() {
        let inst = tmp("import_bad.csv");
        std::fs::write(&inst, "h\ntoo,few\n").unwrap();
        let err = run(&Flags::from_pairs(&[
            ("instances", inst.to_str().unwrap()),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(inst).ok();
    }
}
