//! `leapme match` — train LEAPME on part of a dataset (or load a
//! previously trained `.lmp` model) and score pairs into a similarity
//! graph.
//!
//! Candidate generation has two regimes (DESIGN.md §12):
//!
//! * default / `--blocking token|embedding` — enumerate the quadratic
//!   cross-source pair space (optionally pruned by a full-scan blocker);
//! * `--blocking ann|lsh|combined` — never enumerate: top-k retrieval
//!   per property from an HNSW graph over embedding vectors, a banded
//!   name-LSH index, or the union of both.
//!
//! `--stress N` swaps the dataset/embedding files for the in-memory
//! stress generator at N properties — the 100k–1M scale where the
//! index-backed modes are the only ones that finish.

use super::{cancel_token, load_dataset, pipeline_err, to_json, to_json_pretty};
use crate::args::Flags;
use crate::CliError;
use leapme::core::blocking::{
    self, AnnBlocker, EmbeddingBlocker, LshBlocker, RetrievalMode, TokenBlocker,
};
use leapme::core::feature_cache;
use leapme::core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
use leapme::core::sampling;
use leapme::data::io::atomic_write;
use leapme::data::model::{PropertyPair, SourceId};
use leapme::data::stress::{generate_stress_dataset, StressConfig};
use leapme::embedding::store::EmbeddingStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::path::Path;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let blocking_mode = flags.get("blocking");
    let index_blocking = matches!(blocking_mode, Some("ann" | "lsh" | "combined"));

    let (dataset, mut embeddings) = match flags.get("stress") {
        Some(spec) => {
            let n: usize = spec
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --stress property count {spec:?}")))?;
            if n == 0 {
                return Err(CliError::Usage("--stress needs at least one property".into()));
            }
            if !index_blocking {
                return Err(CliError::Usage(
                    "--stress datasets are index-scale; enumerating their quadratic pair \
                     space is off the table, so pass --blocking ann, lsh or combined"
                        .into(),
                ));
            }
            let stress_seed: u64 = flags.get_or("stress-seed", 7u64)?;
            let dim: usize = flags.get_or("stress-dim", 24usize)?;
            let cfg = StressConfig::new(n, stress_seed);
            let dataset = generate_stress_dataset(&cfg);
            let store = leapme::stress_embedding_store(&cfg, dim, stress_seed ^ 0xE5);
            (dataset, store)
        }
        None => {
            let dataset = load_dataset(flags.require("dataset")?)?;
            let emb_path = flags.require("embeddings")?;
            let embeddings = EmbeddingStore::load_text(Path::new(emb_path))
                .map_err(|e| CliError::Parse(format!("{emb_path}: {e}")))?;
            (dataset, embeddings)
        }
    };
    embeddings.set_fuzzy_oov(flags.get_or("fuzzy-oov", 1u8)? != 0);

    let seed: u64 = flags.get_or("seed", 42)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;
    let out = flags.require("out")?;
    let token = cancel_token(flags)?;
    let check = token.checker();
    const NOTHING_SAVED: &str = "no partial output written";

    let mut rng = StdRng::seed_from_u64(seed);
    // A pretrained `.lmp` model skips the training half entirely and
    // scores every cross-source pair; otherwise train on part of the
    // dataset and score only the held-out pairs.
    let pretrained = flags.get("model");
    let train_sources: Vec<SourceId> = if pretrained.is_some() {
        Vec::new()
    } else {
        // Training sources: explicit list wins over a fraction.
        let train_sources: Vec<SourceId> = match flags.get("train-sources") {
            Some(spec) => spec
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse::<u16>()
                        .map(SourceId)
                        .map_err(|_| CliError::Usage(format!("bad source id {s:?}")))
                })
                .collect::<Result<_, _>>()?,
            None => {
                if flags.get("stress").is_some() {
                    // A train *fraction* of a stress dataset means
                    // thousands of training sources and a quadratic
                    // within-train pair enumeration — refuse up front.
                    return Err(CliError::Usage(
                        "stress mode needs an explicit small --train-sources list \
                         (e.g. 0,1,2,3) or a pretrained --model"
                            .into(),
                    ));
                }
                let fraction: f64 = flags.get_or("train-fraction", 0.8)?;
                sampling::split_sources(dataset.sources().len(), fraction, &mut rng)
                    .map_err(|e| CliError::Pipeline(e.to_string()))?
                    .train
            }
        };
        if train_sources.len() < 2 {
            return Err(CliError::Usage(
                "need at least two training sources".into(),
            ));
        }
        train_sources
    };

    let (store, cache_status) = feature_cache::load_or_build(
        flags.get("feature-cache").map(Path::new),
        &dataset,
        &embeddings,
        leapme::features::worker_threads(),
        Some(&check),
    )
    .map_err(|e| pipeline_err(e, NOTHING_SAVED))?;
    // Degraded-mode report: properties without embedding signal are
    // still scored on the 29 non-embedding features, but the user
    // should know their run is degraded (DESIGN.md §8).
    let mut warnings = String::new();
    warnings.push_str(&cache_status.describe(store.len()));
    if !store.degradation().is_clean() {
        warnings.push_str(&format!("warning: {}\n", store.degradation().summary()));
    }
    let sanitize = store.sanitize_stats();
    if !sanitize.is_clean() {
        warnings.push_str(&format!(
            "warning: repaired {} non-finite and clamped {} oversized feature values\n",
            sanitize.nonfinite, sanitize.clamped
        ));
    }

    let (model, train_len) = match pretrained {
        Some(model_path) => {
            // Dataset compatibility (feature dimension) is validated by
            // the model itself before any pair is scored.
            let (model, open_path) = LeapmeModel::load_with_report(Path::new(model_path))
                .map_err(|e| CliError::Pipeline(e.to_string()))?;
            // mmap / read (v2 zero-copy) or legacy-v1 (full parse) —
            // the verify drill greps this to pin the fast path.
            eprintln!("loaded {model_path} open={}", open_path.label());
            (model, 0)
        }
        None => {
            let train = sampling::training_pairs(&dataset, &train_sources, 2, &mut rng);
            if train.is_empty() {
                return Err(CliError::Pipeline(
                    "no labeled pairs within the chosen training sources".into(),
                ));
            }
            let cfg = LeapmeConfig {
                threshold,
                seed,
                ..LeapmeConfig::default()
            };
            let opts = leapme::core::pipeline::DurableFitOptions {
                cancel: Some(&check),
                ..Default::default()
            };
            let model = Leapme::fit_durable(&store, &train, &cfg, &opts)
                .map_err(|e| pipeline_err(e, NOTHING_SAVED))?;
            let len = train.len();
            (model, len)
        }
    };

    let mut candidates: Vec<PropertyPair>;
    if let Some(mode @ ("ann" | "lsh" | "combined")) = blocking_mode {
        // Index-backed retrieval: the quadratic pair space is never
        // enumerated. Candidates come back as a sorted flat Vec from
        // top-k queries against the HNSW graph and/or name-LSH bands.
        let k: usize = flags.get_or("blocking-k", AnnBlocker::default().k)?;
        let rmode = match mode {
            "ann" => RetrievalMode::Ann,
            "lsh" => RetrievalMode::Lsh,
            _ => RetrievalMode::Both,
        };
        let ann = AnnBlocker {
            k,
            ..AnnBlocker::default()
        };
        let lsh = LshBlocker {
            k,
            ..LshBlocker::default()
        };
        candidates =
            blocking::retrieval_candidates(&dataset, &embeddings, rmode, &ann, &lsh, Some(&check))
                .map_err(|e| pipeline_err(e, NOTHING_SAVED))?;
        let stats = blocking::evaluate_blocking_sorted(&dataset, &candidates);
        let retrieved = candidates.len();
        if !train_sources.is_empty() {
            // Same held-out semantics as `sampling::test_pairs`: drop
            // candidates that live entirely inside the training sources.
            let train_set: BTreeSet<SourceId> = train_sources.iter().copied().collect();
            candidates.retain(|PropertyPair(a, b)| {
                !(train_set.contains(&a.source) && train_set.contains(&b.source))
            });
        }
        warnings.push_str(&format!(
            "blocking({mode}): scoring {} of {retrieved} retrieved pairs, \
             full space {} (reduction {:.1}%, pair completeness {:.3})\n",
            candidates.len(),
            stats.full_space,
            100.0 * stats.reduction_ratio,
            stats.pair_completeness,
        ));
    } else {
        candidates = sampling::test_pairs(&dataset, &train_sources);
        // Optional full-scan blocking: prune the enumerated pair space
        // before scoring, reporting completeness/reduction so a
        // too-aggressive blocker is visible rather than silently
        // dropping true matches.
        if let Some(mode) = blocking_mode {
            let k: usize = flags.get_or("blocking-k", EmbeddingBlocker::default().k)?;
            let keep: BTreeSet<PropertyPair> = match mode {
                "token" => TokenBlocker::default().candidates(&dataset),
                "embedding" => EmbeddingBlocker { k }.candidates(&dataset, &embeddings),
                other => {
                    return Err(CliError::Usage(format!(
                        "--blocking must be token, embedding, ann, lsh or combined \
                         (got {other:?})"
                    )))
                }
            };
            let stats = blocking::evaluate_blocking(&dataset, &keep);
            let before = candidates.len();
            candidates.retain(|p| keep.contains(p));
            warnings.push_str(&format!(
                "blocking({mode}): scoring {} of {before} test pairs \
                 (reduction {:.1}%, pair completeness {:.3})\n",
                candidates.len(),
                100.0 * stats.reduction_ratio,
                stats.pair_completeness,
            ));
        }
    }
    // `--quantized` scores through the int8 inference path, but only if
    // a calibration batch stays within the documented tolerance of the
    // f32 reference — otherwise the run falls back transparently and
    // says so (DESIGN.md §11).
    let graph = if flags.is_set("quantized") {
        let (graph, report) = model
            .predict_graph_quantized_cancellable(&store, &candidates, Some(&check))
            .map_err(|e| pipeline_err(e, NOTHING_SAVED))?;
        if report.used_quantized {
            warnings.push_str(&format!(
                "quantized scoring: int8 path active \
                 (calibration max |Δp| {:.5} over {} pairs)\n",
                report.calibration_max_abs_error, report.calibration_pairs,
            ));
        } else {
            warnings.push_str(&format!(
                "quantized scoring: calibration error {:.5} exceeded tolerance, \
                 fell back to exact f32 scoring\n",
                report.calibration_max_abs_error,
            ));
        }
        graph
    } else {
        model
            .predict_graph_cancellable(&store, &candidates, Some(&check))
            .map_err(|e| pipeline_err(e, NOTHING_SAVED))?
    };
    atomic_write(
        Path::new(out),
        to_json_pretty(&graph, "similarity graph")?.as_bytes(),
    )?;

    if let Some(model_path) = flags.get("save-model") {
        atomic_write(Path::new(model_path), to_json(&model, "model")?.as_bytes())?;
    }

    let provenance = if train_sources.is_empty() {
        "pretrained model, all cross-source pairs".to_string()
    } else {
        format!(
            "{train_len} training pairs from {} sources",
            train_sources.len()
        )
    };
    Ok(format!(
        "{warnings}wrote {out}: {} scored pairs, {} matches at threshold {threshold} ({provenance})",
        graph.len(),
        graph.matches(threshold).len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::simgraph::SimilarityGraph;
    use leapme::data::domains::{generate, Domain};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Build the shared fixture: a dataset file and an embedding file.
    fn fixture() -> (std::path::PathBuf, std::path::PathBuf) {
        let ds_path = tmp("match_ds.json");
        std::fs::write(&ds_path, generate(Domain::Tvs, 2).to_json()).unwrap();
        let emb_path = tmp("match_emb.txt");
        // Quick low-dim embeddings to keep the test fast.
        crate::commands::embed::run(&Flags::from_pairs(&[
            ("domains", "tvs"),
            ("dim", "8"),
            ("epochs", "2"),
            ("out", emb_path.to_str().unwrap()),
        ]))
        .unwrap();
        (ds_path, emb_path)
    }

    #[test]
    fn match_produces_similarity_graph() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_graph.json");
        let model_path = tmp("match_model.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-fraction", "0.8"),
            ("out", graph_path.to_str().unwrap()),
            ("save-model", model_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("scored pairs"));
        let graph: SimilarityGraph =
            serde_json::from_str(&std::fs::read_to_string(&graph_path).unwrap()).unwrap();
        assert!(!graph.is_empty());
        assert!(model_path.exists());
        for p in [graph_path, model_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn explicit_train_sources() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_graph2.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-sources", "0,1,2,3,4,5"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("6 sources"));
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn degraded_embeddings_warn_but_still_match() {
        let (ds, _emb) = fixture();
        // An embedding vocabulary that resolves nothing: every property
        // falls back to the non-embedding features, and the run reports it.
        let emb_path = tmp("match_emb_useless.txt");
        std::fs::write(&emb_path, "qqqq 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8\n").unwrap();
        let graph_path = tmp("match_graph_degraded.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb_path.to_str().unwrap()),
            ("fuzzy-oov", "0"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("degraded"), "{msg}");
        assert!(msg.contains("scored pairs"), "{msg}");
        for p in [emb_path, graph_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn pretrained_model_scores_all_cross_source_pairs() {
        let (ds, emb) = fixture();
        let model_path = tmp("match_pretrained.lmp");
        crate::commands::train::run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("save", model_path.to_str().unwrap()),
        ]))
        .unwrap();
        let graph_path = tmp("match_graph_pretrained.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("model", model_path.to_str().unwrap()),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("pretrained model"), "{msg}");
        let graph: SimilarityGraph =
            serde_json::from_str(&std::fs::read_to_string(&graph_path).unwrap()).unwrap();
        // With no sources held out for training, the pretrained path
        // scores strictly more pairs than any train/test split could.
        assert!(!graph.is_empty());
        for p in [graph_path, model_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn corrupt_model_file_is_reported_not_scored() {
        let (ds, emb) = fixture();
        let model_path = tmp("match_corrupt.lmp");
        std::fs::write(&model_path, b"LEAPMECPgarbage").unwrap();
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("model", model_path.to_str().unwrap()),
            ("out", tmp("unused_graph.json").to_str().unwrap()),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Pipeline(_)), "{err}");
        assert!(err.to_string().contains("checkpoint"), "{err}");
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn timeout_zero_exits_cancelled_without_output() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_never.json");
        let _ = std::fs::remove_file(&graph_path);
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("out", graph_path.to_str().unwrap()),
            ("timeout-secs", "0"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Cancelled(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
        assert!(!graph_path.exists(), "no partial graph on cancellation");
    }

    #[test]
    fn feature_cache_round_trip_is_byte_identical_and_heals() {
        let (ds, emb) = fixture();
        let cache_path = tmp("match_feature_cache.lfc");
        let _ = std::fs::remove_file(&cache_path);
        let graph_a = tmp("match_graph_cache_a.json");
        let graph_b = tmp("match_graph_cache_b.json");
        let base = [
            ("dataset", ds.to_str().unwrap().to_string()),
            ("embeddings", emb.to_str().unwrap().to_string()),
            ("train-sources", "0,1,2,3,4,5".to_string()),
            ("feature-cache", cache_path.to_str().unwrap().to_string()),
        ];
        let run_to = |graph: &std::path::Path| {
            let mut pairs: Vec<(&str, &str)> =
                base.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let g = graph.to_str().unwrap();
            pairs.push(("out", g));
            run(&Flags::from_pairs(&pairs)).unwrap()
        };

        let cold = run_to(&graph_a);
        assert!(cold.contains("feature cache rebuilt"), "{cold}");
        assert!(cache_path.exists());
        let warm = run_to(&graph_b);
        assert!(warm.contains("feature cache hit"), "{warm}");
        assert_eq!(
            std::fs::read(&graph_a).unwrap(),
            std::fs::read(&graph_b).unwrap(),
            "cached features must score byte-identically"
        );

        // A damaged cache degrades to a clean rebuild, not a failure.
        let mut bytes = std::fs::read(&cache_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&cache_path, &bytes).unwrap();
        let healed = run_to(&graph_b);
        assert!(healed.contains("feature cache rebuilt"), "{healed}");
        assert_eq!(
            std::fs::read(&graph_a).unwrap(),
            std::fs::read(&graph_b).unwrap()
        );
        for p in [graph_a, graph_b, cache_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn quantized_flag_reports_path_and_scores_pairs() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_graph_quantized.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-sources", "0,1,2,3,4,5"),
            ("quantized", "true"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        // Either outcome is legitimate (the calibration gate decides),
        // but the run must say which path scored the graph.
        assert!(msg.contains("quantized scoring:"), "{msg}");
        assert!(
            msg.contains("int8 path active") || msg.contains("fell back to exact f32"),
            "{msg}"
        );
        assert!(msg.contains("scored pairs"), "{msg}");
        let graph: SimilarityGraph =
            serde_json::from_str(&std::fs::read_to_string(&graph_path).unwrap()).unwrap();
        assert!(!graph.is_empty());
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn blocking_prunes_candidates_and_reports_stats() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_graph_blocking.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-sources", "0,1,2,3,4,5"),
            ("blocking", "combined"),
            ("blocking-k", "5"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("blocking(combined): scoring"), "{msg}");
        assert!(msg.contains("pair completeness"), "{msg}");
        assert!(msg.contains("scored pairs"), "{msg}");
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn ann_blocking_retrieves_and_scores() {
        let (ds, emb) = fixture();
        let graph_path = tmp("match_graph_ann.json");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-sources", "0,1,2,3,4,5"),
            ("blocking", "ann"),
            ("blocking-k", "5"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("blocking(ann): scoring"), "{msg}");
        assert!(msg.contains("pair completeness"), "{msg}");
        let graph: SimilarityGraph =
            serde_json::from_str(&std::fs::read_to_string(&graph_path).unwrap()).unwrap();
        assert!(!graph.is_empty());
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn stress_mode_runs_end_to_end_with_index_blocking() {
        let graph_path = tmp("match_graph_stress.json");
        let msg = run(&Flags::from_pairs(&[
            ("stress", "400"),
            ("blocking", "combined"),
            ("blocking-k", "6"),
            ("train-sources", "0,1,2,3"),
            ("out", graph_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("blocking(combined): scoring"), "{msg}");
        assert!(msg.contains("scored pairs"), "{msg}");
        let graph: SimilarityGraph =
            serde_json::from_str(&std::fs::read_to_string(&graph_path).unwrap()).unwrap();
        assert!(!graph.is_empty());
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn stress_mode_requires_index_blocking_and_explicit_sources() {
        // No blocking mode at all: the quadratic space is refused.
        let err = run(&Flags::from_pairs(&[
            ("stress", "400"),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--blocking"), "{err}");

        // A full-scan blocker is still quadratic: refused too.
        let err = run(&Flags::from_pairs(&[
            ("stress", "400"),
            ("blocking", "token"),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        // Index blocking but an implicit train fraction: refused.
        let err = run(&Flags::from_pairs(&[
            ("stress", "400"),
            ("blocking", "ann"),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--train-sources"), "{err}");
    }

    #[test]
    fn unknown_blocking_mode_is_usage_error() {
        let (ds, emb) = fixture();
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("blocking", "psychic"),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("psychic"), "{err}");
    }

    #[test]
    fn rejects_single_training_source() {
        let (ds, emb) = fixture();
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("train-sources", "0"),
            ("out", "unused.json"),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("two training sources"));
    }
}
