//! The `leapme` subcommand implementations.

pub mod analyze;
pub mod cluster;
pub mod continual;
pub mod embed;
pub mod evaluate;
pub mod fuse;
pub mod generate;
pub mod import;
pub mod match_cmd;
pub mod registry;
pub mod serve;
pub mod stats;
pub mod train;

use crate::CliError;
use leapme::core::cancel::CancelToken;
use leapme::core::CoreError;
use leapme::data::domains::Domain;

/// Resolve a domain name flag.
pub(crate) fn parse_domain(name: &str) -> Result<Domain, CliError> {
    Domain::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown domain {name:?} (expected cameras, headphones, phones, or tvs)"
            ))
        })
}

/// Load a dataset JSON file.
pub(crate) fn load_dataset(path: &str) -> Result<leapme::data::model::Dataset, CliError> {
    let json = std::fs::read_to_string(path)?;
    leapme::data::model::Dataset::from_json(&json)
        .map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

/// Serialize a value to pretty JSON, surfacing failures as a
/// [`CliError`] instead of panicking.
pub(crate) fn to_json_pretty<T: serde::Serialize>(
    value: &T,
    what: &str,
) -> Result<String, CliError> {
    serde_json::to_string_pretty(value)
        .map_err(|e| CliError::Pipeline(format!("cannot serialize {what}: {e}")))
}

/// Serialize a value to compact JSON, surfacing failures as a
/// [`CliError`] instead of panicking.
pub(crate) fn to_json<T: serde::Serialize>(value: &T, what: &str) -> Result<String, CliError> {
    serde_json::to_string(value)
        .map_err(|e| CliError::Pipeline(format!("cannot serialize {what}: {e}")))
}

/// Load a similarity graph JSON file.
pub(crate) fn load_graph(path: &str) -> Result<leapme::core::simgraph::SimilarityGraph, CliError> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

/// Build the cancellation token every long-running command polls: it
/// observes the process-wide SIGINT/SIGTERM flag and, when the command
/// was given `--timeout-secs`, a wall-clock deadline.
pub(crate) fn cancel_token(flags: &crate::args::Flags) -> Result<CancelToken, CliError> {
    let mut token = CancelToken::new().with_flag(crate::interrupted_flag());
    if let Some(raw) = flags.get("timeout-secs") {
        let secs: u64 = raw.parse().map_err(|_| {
            CliError::Usage(format!("flag --timeout-secs has invalid value {raw:?}"))
        })?;
        token = token.with_timeout(std::time::Duration::from_secs(secs));
    }
    Ok(token)
}

/// Map a pipeline error to the CLI error space, routing cooperative
/// cancellation to exit code 3 with a note about what durable state
/// survived the interruption.
pub(crate) fn pipeline_err(e: CoreError, saved: &str) -> CliError {
    match e {
        CoreError::Cancelled => CliError::Cancelled(saved.to_string()),
        e => CliError::Pipeline(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_parsing() {
        assert_eq!(parse_domain("tvs").unwrap(), Domain::Tvs);
        assert!(parse_domain("fridges").is_err());
    }

    #[test]
    fn load_dataset_reports_path() {
        let err = load_dataset("/nonexistent/path.json").unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
