//! `leapme registry` — inspect a multi-domain model registry root and
//! migrate legacy v1 artifacts to the zero-copy v2 container layout.
//!
//! Two modes:
//!
//! * `--dir <root>` faults every domain in and prints one line per
//!   domain (open path, resident bytes, open latency, feature-store
//!   source) plus the aggregate stats the server would report under
//!   `/metrics` → `registry`.
//! * `--upgrade <in> --out <out>` rewrites a v1 `.lmp` model, `.lfc`
//!   feature cache, or resident snapshot as a v2 section container.
//!   Loading goes through the normal typed-validation path, so a
//!   corrupt input fails cleanly instead of propagating garbage.

use super::to_json_pretty;
use crate::args::Flags;
use crate::CliError;
use leapme::core::feature_cache;
use leapme::core::pipeline::LeapmeModel;
use leapme::core::registry::{ModelRegistry, RegistryConfig};
use leapme::nn::checkpoint::{KIND_FEATURE_CACHE, KIND_PIPELINE, KIND_RESIDENT};
use leapme::nn::container2::{open_any, Opened};
use leapme::serve::snapshot;
use std::fmt::Write as _;
use std::path::Path;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    match (flags.get("dir"), flags.get("upgrade")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--dir and --upgrade are exclusive; inspect or migrate, not both".into(),
        )),
        (Some(dir), None) => inspect(dir),
        (None, Some(input)) => upgrade(input, flags.require("out")?),
        (None, None) => Err(CliError::Usage(
            "registry needs --dir <root> (inspect) or --upgrade <in> --out <out> (migrate v1 → v2)"
                .into(),
        )),
    }
}

/// Fault every domain in and print what the server would keep resident.
///
/// Inspect is also the integrity sweep: the serve path defers payload
/// checksums on zero-copy sections (that is what makes fault-in O(1)),
/// so this command re-opens every domain artifact and forces the full
/// per-section CRC walk — a corrupted slab that a resident server would
/// happily map fails *here*, typed, which is what the verify.sh
/// corrupt-section drill leans on.
fn inspect(dir: &str) -> Result<String, CliError> {
    let registry = ModelRegistry::open(Path::new(dir), RegistryConfig::default())
        .map_err(|e| CliError::Pipeline(format!("{dir}: {e}")))?;
    let mut out = String::new();
    for name in registry.domains() {
        let domain = registry
            .get(&name)
            .map_err(|e| CliError::Pipeline(format!("domain {name}: {e}")))?;
        let verified = verify_domain_artifacts(Path::new(dir), &name)?;
        let _ = writeln!(
            out,
            "{name}: open={} store={} bytes={} open_ms={} properties={} sources={} verified={verified}",
            domain.model_open_path.label(),
            domain.store_source,
            domain.bytes,
            domain.open_ms,
            domain.store.len(),
            domain.dataset.sources().len(),
        );
    }
    let stats = to_json_pretty(&registry.stats(), "registry stats")?;
    let _ = write!(out, "{stats}");
    Ok(out)
}

/// Full checksum sweep over one domain's container artifacts. v1 files
/// verify their single payload CRC at parse; v2 files get the explicit
/// every-section [`verify_all`] walk the lazy serve path skips.
///
/// [`verify_all`]: leapme::nn::container2::V2Container::verify_all
fn verify_domain_artifacts(root: &Path, name: &str) -> Result<&'static str, CliError> {
    let dir = root.join(name);
    for (file, kind) in [
        ("model.lmp", KIND_PIPELINE),
        ("features.lfc", KIND_FEATURE_CACHE),
    ] {
        let path = dir.join(file);
        if !path.exists() {
            continue; // embeddings.txt domains build their store fresh
        }
        match open_any(&path, kind)
            .map_err(|e| CliError::Pipeline(format!("domain {name}: {file}: {e}")))?
        {
            Opened::V1(_) => {} // parse already checked the payload CRC
            Opened::V2(container) => container
                .verify_all()
                .map_err(|e| CliError::Pipeline(format!("domain {name}: {file}: {e}")))?,
        }
    }
    Ok("full")
}

/// Sniff the container version + kind (both formats keep the kind byte
/// at offset 12) and rewrite the artifact in the v2 layout.
fn upgrade(input: &str, output: &str) -> Result<String, CliError> {
    let in_path = Path::new(input);
    let out_path = Path::new(output);
    let header = {
        let bytes = std::fs::read(in_path)?;
        if bytes.len() < 13 {
            return Err(CliError::Parse(format!(
                "{input}: too short to be a LEAPMECP container"
            )));
        }
        (
            u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            bytes[12],
        )
    };
    let (version, kind) = header;
    let what = match kind {
        KIND_PIPELINE => {
            let (model, open_path) = LeapmeModel::load_with_report(in_path)
                .map_err(|e| CliError::Pipeline(format!("{input}: {e}")))?;
            model
                .save(out_path)
                .map_err(|e| CliError::Pipeline(format!("{output}: {e}")))?;
            format!("model (read via {})", open_path.label())
        }
        KIND_FEATURE_CACHE => {
            let (store, fp, source) = feature_cache::load_resident(in_path)
                .map_err(|e| CliError::Pipeline(format!("{input}: {e}")))?;
            feature_cache::save(out_path, &store, &fp)
                .map_err(|e| CliError::Pipeline(format!("{output}: {e}")))?;
            format!("feature cache (read via {source})")
        }
        KIND_RESIDENT => {
            let snap = snapshot::load(in_path)
                .map_err(|e| CliError::Pipeline(format!("{input}: {e}")))?
                .ok_or_else(|| CliError::Parse(format!("{input}: no snapshot present")))?;
            snapshot::save(out_path, &snap)
                .map_err(|e| CliError::Pipeline(format!("{output}: {e}")))?;
            "resident snapshot".to_string()
        }
        other => {
            return Err(CliError::Usage(format!(
                "{input}: container kind {other} has no registry artifact upgrade \
                 (supported: model .lmp, feature cache .lfc, resident snapshot)"
            )));
        }
    };
    Ok(format!(
        "upgraded {what}: v{version} {input} -> v2 {output}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::data::domains::{generate, Domain};
    use leapme::embedding::store::EmbeddingStore;
    use leapme::features::PropertyFeatureStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_registry_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn modes_are_exclusive_and_one_is_required() {
        let err = run(&Flags::from_pairs(&[])).unwrap_err();
        assert!(err.to_string().contains("--dir"));
        let err = run(&Flags::from_pairs(&[("dir", "x"), ("upgrade", "y")])).unwrap_err();
        assert!(err.to_string().contains("exclusive"));
    }

    #[test]
    fn upgrade_migrates_a_v1_feature_cache() {
        let dataset = generate(Domain::Tvs, 3);
        let embeddings = EmbeddingStore::new(8);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let fp = feature_cache::fingerprint(&dataset, &embeddings);
        let v1 = tmp("up_v1.lfc");
        let v2 = tmp("up_v2.lfc");
        feature_cache::save_v1(&v1, &store, &fp).unwrap();

        let msg = run(&Flags::from_pairs(&[
            ("upgrade", v1.to_str().unwrap()),
            ("out", v2.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("upgraded feature cache"), "{msg}");
        assert!(msg.contains("legacy-v1"), "{msg}");

        // The migrated file opens on the zero-copy path and carries the
        // same fingerprint and vectors.
        let (back, back_fp, source) = feature_cache::load_resident(&v2).unwrap();
        assert_ne!(source, "legacy-v1");
        assert_eq!(back_fp.dataset, fp.dataset);
        assert_eq!(back.len(), store.len());
        for (key, vector) in store.iter() {
            assert_eq!(back.property_vector(key).unwrap(), vector);
        }
        for p in [v1, v2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn upgrade_rejects_garbage_and_wrong_kinds() {
        let garbage = tmp("up_garbage.bin");
        std::fs::write(&garbage, b"short").unwrap();
        let err = run(&Flags::from_pairs(&[
            ("upgrade", garbage.to_str().unwrap()),
            ("out", tmp("up_garbage_out.bin").to_str().unwrap()),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        std::fs::remove_file(garbage).ok();
    }
}
