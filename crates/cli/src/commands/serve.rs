//! `leapme serve` — keep a trained model and feature store resident and
//! answer scoring/matching/integration requests over HTTP.
//!
//! The command loads everything once (model, embeddings, dataset,
//! feature cache), prints the bound address, and blocks until
//! SIGINT/SIGTERM starts the graceful drain: the accept loop stops, the
//! admission queue empties, in-flight requests finish or cancel at
//! their deadline, and the drain summary decides the exit code — `0`
//! when every admitted request was honored, `3` when any were cut off.

use super::{load_dataset, to_json};
use crate::args::Flags;
use crate::CliError;
use leapme::core::feature_cache;
use leapme::core::journal::RunJournal;
use leapme::core::pipeline::LeapmeModel;
use leapme::core::registry::{ModelRegistry, RegistryConfig};
use leapme::embedding::store::EmbeddingStore;
use leapme::features::PropertyFeatureStore;
use leapme::serve::{self, snapshot, Resident, ServeConfig, ServeState};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Run the command. Blocks until a signal starts the drain.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    if flags.get("models").is_some() {
        return run_registry(flags);
    }
    let model_path = flags.require("model")?;
    let model = LeapmeModel::load(Path::new(model_path))
        .map_err(|e| CliError::Pipeline(format!("{model_path}: {e}")))?;

    let dataset = load_dataset(flags.require("dataset")?)?;
    let emb_path = flags.require("embeddings")?;
    let mut embeddings = EmbeddingStore::load_text(Path::new(emb_path))
        .map_err(|e| CliError::Parse(format!("{emb_path}: {e}")))?;
    embeddings.set_fuzzy_oov(flags.get_or("fuzzy-oov", 1u8)? != 0);

    let (store, cache_status) = feature_cache::load_or_build(
        flags.get("feature-cache").map(Path::new),
        &dataset,
        &embeddings,
        leapme::features::worker_threads(),
        None,
    )
    .map_err(|e| CliError::Pipeline(e.to_string()))?;
    eprint!("{}", cache_status.describe(store.len()));

    let journal = match flags.get("journal") {
        Some(path) => Some(
            RunJournal::open(Path::new(path))
                .map_err(|e| CliError::Pipeline(format!("{path}: {e}")))?,
        ),
        None => None,
    };

    let config = build_config(flags)?;

    // Snapshot recovery: a present snapshot is the last good generation
    // `integrate-source` persisted before a swap — it supersedes the
    // `--dataset` file (which only describes the world at first boot).
    // The feature store is rebuilt over the recovered dataset; the
    // snapshot stays bitwise as written, proving a SIGKILL mid
    // integration lost nothing.
    let recovered = match &config.snapshot_path {
        Some(path) => snapshot::load(path)
            .map_err(|e| CliError::Pipeline(format!("{}: {e}", path.display())))?,
        None => None,
    };
    let state = match recovered {
        Some(snap) => {
            let store = PropertyFeatureStore::build(&snap.dataset, &embeddings);
            println!(
                "leapme serve recovered snapshot generation={} sources={} graph_edges={}",
                snap.generation,
                snap.dataset.sources().len(),
                snap.graph.len()
            );
            Arc::new(ServeState::with_resident(
                model,
                embeddings,
                Resident {
                    dataset: snap.dataset,
                    store,
                    graph: snap.graph,
                    generation: snap.generation,
                },
                journal,
                config,
            ))
        }
        None => Arc::new(ServeState::new(
            model, embeddings, dataset, store, journal, config,
        )),
    };
    let handle = serve::start(Arc::clone(&state), Some(crate::interrupted_flag()))
        .map_err(CliError::Io)?;

    // The readiness line goes out before we block: scripts (and the
    // verify drill) grep it for the port when binding to `:0`.
    println!(
        "leapme serve listening on http://{} (workers={} queue={})",
        handle.addr(),
        state.config.workers,
        state.config.queue_depth
    );
    let _ = std::io::stdout().flush();

    // Blocks until SIGINT/SIGTERM flips the interrupted flag, the
    // accept loop notices, closes the queue, and the workers drain.
    let report = handle.join();
    let summary = to_json(&report, "drain report")?;
    if report.clean {
        Ok(format!("leapme serve drained cleanly\n{summary}"))
    } else {
        Err(CliError::Cancelled(format!(
            "drain dropped {} queued connection(s)\n{summary}",
            report.dropped_at_shutdown
        )))
    }
}

/// Server tunables shared by the single-model and registry modes.
fn build_config(flags: &Flags) -> Result<ServeConfig, CliError> {
    let mut config = ServeConfig {
        addr: flags.get_or("addr", "127.0.0.1:7878".to_string())?,
        workers: flags.get_or("workers", ServeConfig::default().workers)?,
        queue_depth: flags.get_or("queue-depth", ServeConfig::default().queue_depth)?,
        request_timeout: Duration::from_millis(flags.get_or("request-timeout-ms", 5_000u64)?),
        io_timeout: Duration::from_millis(flags.get_or("io-timeout-ms", 2_000u64)?),
        snapshot_path: flags.get("snapshot").map(PathBuf::from),
        keep_alive_max_requests: flags.get_or(
            "keep-alive-max",
            ServeConfig::default().keep_alive_max_requests,
        )?,
        ..ServeConfig::default()
    };
    config.limits.max_body_bytes =
        flags.get_or("max-body-bytes", config.limits.max_body_bytes)?;
    if config.workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    if config.keep_alive_max_requests == 0 {
        return Err(CliError::Usage("--keep-alive-max must be at least 1".into()));
    }
    Ok(config)
}

/// `leapme serve --models dir/`: one server over a directory of domain
/// subdirectories (`<dir>/<name>/{model.lmp, dataset.json,
/// features.lfc|embeddings.txt}`). Requests route by the `model` body
/// field or `x-leapme-model` header; domains fault in lazily under the
/// optional `--resident-budget-mb` ceiling with LRU eviction, and
/// `POST /reload` hot-swaps one domain from disk.
fn run_registry(flags: &Flags) -> Result<String, CliError> {
    for conflicting in ["model", "dataset", "embeddings", "feature-cache", "snapshot"] {
        if flags.get(conflicting).is_some() {
            return Err(CliError::Usage(format!(
                "--models is exclusive with --{conflicting}; each domain directory carries its own artifacts"
            )));
        }
    }
    let root = flags.require("models")?;
    let budget_mb: Option<u64> = match flags.get("resident-budget-mb") {
        Some(v) => Some(v.parse().map_err(|_| {
            CliError::Usage(format!("--resident-budget-mb must be an integer, got {v:?}"))
        })?),
        None => None,
    };
    let registry = ModelRegistry::open(
        Path::new(root),
        RegistryConfig {
            resident_budget_bytes: budget_mb.map(|mb| mb * 1024 * 1024),
        },
    )
    .map_err(|e| CliError::Pipeline(format!("{root}: {e}")))?;
    let domains = registry.domains();

    let journal = match flags.get("journal") {
        Some(path) => Some(
            RunJournal::open(Path::new(path))
                .map_err(|e| CliError::Pipeline(format!("{path}: {e}")))?,
        ),
        None => None,
    };
    let config = build_config(flags)?;
    let state = Arc::new(ServeState::with_registry(
        Arc::new(registry),
        journal,
        config,
    ));
    let handle = serve::start(Arc::clone(&state), Some(crate::interrupted_flag()))
        .map_err(CliError::Io)?;

    println!(
        "leapme serve listening on http://{} (registry domains={} workers={} queue={})",
        handle.addr(),
        domains.len(),
        state.config.workers,
        state.config.queue_depth
    );
    println!("domains: {}", domains.join(", "));
    let _ = std::io::stdout().flush();

    let report = handle.join();
    let summary = to_json(&report, "drain report")?;
    if report.clean {
        Ok(format!("leapme serve drained cleanly\n{summary}"))
    } else {
        Err(CliError::Cancelled(format!(
            "drain dropped {} queued connection(s)\n{summary}",
            report.dropped_at_shutdown
        )))
    }
}
