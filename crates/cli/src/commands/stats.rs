//! `leapme stats` — dataset statistics.

use super::load_dataset;
use crate::args::Flags;
use crate::CliError;
use std::fmt::Write as _;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let dataset = load_dataset(flags.require("dataset")?)?;
    let s = dataset.stats();
    let mut out = String::new();
    writeln!(out, "dataset        : {}", dataset.name()).unwrap();
    writeln!(out, "sources        : {}", s.sources).unwrap();
    writeln!(out, "properties     : {} ({} aligned)", s.properties, s.aligned_properties).unwrap();
    writeln!(out, "entities       : {}", s.entities).unwrap();
    writeln!(out, "instances      : {}", s.instances).unwrap();
    writeln!(out, "matching pairs : {}", s.matching_pairs).unwrap();
    writeln!(out, "\nper-source schema sizes:").unwrap();
    for (i, name) in dataset.sources().iter().enumerate() {
        let schema = dataset.schema_of(leapme::data::model::SourceId(i as u16));
        writeln!(out, "  {name:<24} {:>4} properties", schema.len()).unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::data::domains::{generate, Domain};

    #[test]
    fn prints_statistics() {
        let dir = std::env::temp_dir().join("leapme_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats_ds.json");
        std::fs::write(&path, generate(Domain::Headphones, 1).to_json()).unwrap();
        let out = run(&Flags::from_pairs(&[("dataset", path.to_str().unwrap())])).unwrap();
        assert!(out.contains("sources        : 8"));
        assert!(out.contains("per-source schema sizes"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run(&Flags::from_pairs(&[("dataset", "/no/such.json")])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
