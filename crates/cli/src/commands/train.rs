//! `leapme train` — train LEAPME on part of a dataset and persist the
//! model as a versioned, checksummed `.lmp` file.
//!
//! The durable counterpart of the training half of `leapme match`:
//!
//! * `--save model.lmp` — atomic, checksummed model persistence; the
//!   saved model scores bitwise identically to the in-memory one.
//! * `--checkpoint train.ckpt [--checkpoint-every N]` — periodic
//!   training checkpoints (optimizer state, RNG, epoch position).
//! * `--resume` — continue a previously interrupted run from its
//!   checkpoint, bitwise identically to an uninterrupted run.
//! * `--timeout-secs N` / Ctrl-C — cooperative cancellation: the state
//!   is checkpointed, then the process exits with code 3.

use super::{cancel_token, load_dataset, pipeline_err};
use crate::args::Flags;
use crate::CliError;
use leapme::core::feature_cache;
use leapme::core::pipeline::{DurableFitOptions, Leapme, LeapmeConfig};
use leapme::core::sampling;
use leapme::data::model::SourceId;
use leapme::embedding::store::EmbeddingStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Run the command.
pub fn run(flags: &Flags) -> Result<String, CliError> {
    let seed: u64 = flags.get_or("seed", 42)?;
    let threshold: f32 = flags.get_or("threshold", 0.5)?;
    let save_path = flags.require("save")?;
    let checkpoint = flags.get("checkpoint").map(Path::new);
    let checkpoint_every: usize = flags.get_or("checkpoint-every", 0)?;
    let resume = flags.is_set("resume");
    if resume && checkpoint.is_none() {
        return Err(CliError::Usage("--resume requires --checkpoint".into()));
    }

    let dataset = load_dataset(flags.require("dataset")?)?;
    let emb_path = flags.require("embeddings")?;
    let mut embeddings = EmbeddingStore::load_text(Path::new(emb_path))
        .map_err(|e| CliError::Parse(format!("{emb_path}: {e}")))?;
    embeddings.set_fuzzy_oov(flags.get_or("fuzzy-oov", 1u8)? != 0);

    let token = cancel_token(flags)?;
    let check = token.checker();

    let mut rng = StdRng::seed_from_u64(seed);
    let train_sources: Vec<SourceId> = match flags.get("train-sources") {
        Some(spec) => spec
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u16>()
                    .map(SourceId)
                    .map_err(|_| CliError::Usage(format!("bad source id {s:?}")))
            })
            .collect::<Result<_, _>>()?,
        None => {
            let fraction: f64 = flags.get_or("train-fraction", 0.8)?;
            sampling::split_sources(dataset.sources().len(), fraction, &mut rng)
                .map_err(|e| CliError::Pipeline(e.to_string()))?
                .train
        }
    };
    if train_sources.len() < 2 {
        return Err(CliError::Usage(
            "need at least two training sources".into(),
        ));
    }

    let cancelled_note = match checkpoint {
        Some(p) => format!("training state checkpointed to {}", p.display()),
        None => "no --checkpoint configured, training state lost".to_string(),
    };
    let (store, cache_status) = feature_cache::load_or_build(
        flags.get("feature-cache").map(Path::new),
        &dataset,
        &embeddings,
        leapme::features::worker_threads(),
        Some(&check),
    )
    .map_err(|e| pipeline_err(e, &cancelled_note))?;
    let mut warnings = String::new();
    warnings.push_str(&cache_status.describe(store.len()));
    if !store.degradation().is_clean() {
        warnings.push_str(&format!("warning: {}\n", store.degradation().summary()));
    }

    let train = sampling::training_pairs(&dataset, &train_sources, 2, &mut rng);
    if train.is_empty() {
        return Err(CliError::Pipeline(
            "no labeled pairs within the chosen training sources".into(),
        ));
    }
    let cfg = LeapmeConfig {
        threshold,
        seed,
        ..LeapmeConfig::default()
    };
    let opts = DurableFitOptions {
        checkpoint_path: checkpoint,
        checkpoint_every,
        resume,
        cancel: Some(&check),
    };
    let model = Leapme::fit_durable(&store, &train, &cfg, &opts)
        .map_err(|e| pipeline_err(e, &cancelled_note))?;

    model
        .save_with_retry(
            Path::new(save_path),
            &leapme::core::retry::RetryPolicy::default(),
        )
        .map_err(|e| CliError::Pipeline(e.to_string()))?;

    Ok(format!(
        "{warnings}wrote {save_path}: model over {} features \
         ({} training pairs from {} sources, threshold {threshold}{})",
        model.input_dim(),
        train.len(),
        train_sources.len(),
        if resume { ", resumed from checkpoint" } else { "" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme::core::pipeline::LeapmeModel;
    use leapme::data::domains::{generate, Domain};
    use std::sync::atomic::Ordering;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_cli_train_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn fixture() -> (std::path::PathBuf, std::path::PathBuf) {
        let ds_path = tmp("train_ds.json");
        std::fs::write(&ds_path, generate(Domain::Tvs, 2).to_json()).unwrap();
        let emb_path = tmp("train_emb.txt");
        crate::commands::embed::run(&Flags::from_pairs(&[
            ("domains", "tvs"),
            ("dim", "8"),
            ("epochs", "2"),
            ("out", emb_path.to_str().unwrap()),
        ]))
        .unwrap();
        (ds_path, emb_path)
    }

    #[test]
    fn trains_and_saves_loadable_model() {
        let (ds, emb) = fixture();
        let model_path = tmp("trained.lmp");
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("save", model_path.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let model = LeapmeModel::load(&model_path).unwrap();
        assert!(model.input_dim() > 0);
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn resume_without_checkpoint_is_usage_error() {
        let err = run(&Flags::from_pairs(&[
            ("dataset", "x.json"),
            ("embeddings", "y.txt"),
            ("save", "m.lmp"),
            ("resume", "true"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn interrupted_training_checkpoints_and_exits_cancelled() {
        let (ds, emb) = fixture();
        let model_path = tmp("interrupted.lmp");
        let ckpt_path = tmp("interrupted.ckpt");
        let _ = std::fs::remove_file(&ckpt_path);

        // Simulate Ctrl-C before the run starts: the very first poll
        // fires, and the checkpoint (empty training progress) is saved.
        crate::interrupted_flag().store(true, Ordering::SeqCst);
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("save", model_path.to_str().unwrap()),
            ("checkpoint", ckpt_path.to_str().unwrap()),
        ]))
        .unwrap_err();
        crate::interrupted_flag().store(false, Ordering::SeqCst);
        assert!(matches!(err, CliError::Cancelled(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
        assert!(!model_path.exists(), "no model on a cancelled run");

        // Rerunning with --resume (checkpoint may or may not exist yet,
        // depending on where the cancel landed) completes and saves.
        let msg = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("save", model_path.to_str().unwrap()),
            ("checkpoint", ckpt_path.to_str().unwrap()),
            ("resume", "true"),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        assert!(!ckpt_path.exists(), "checkpoint removed after completion");
        LeapmeModel::load(&model_path).unwrap();
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn timeout_zero_cancels_immediately() {
        let (ds, emb) = fixture();
        let err = run(&Flags::from_pairs(&[
            ("dataset", ds.to_str().unwrap()),
            ("embeddings", emb.to_str().unwrap()),
            ("save", tmp("never.lmp").to_str().unwrap()),
            ("timeout-secs", "0"),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Cancelled(_)), "{err}");
    }
}
