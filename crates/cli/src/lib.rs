//! Implementation of the `leapme` command-line tool.
//!
//! The binary is a thin `main` over this library so every command is unit
//! testable. Subcommands:
//!
//! | command | purpose |
//! |---|---|
//! | `generate` | emit one of the four synthetic evaluation datasets as JSON |
//! | `embed` | train GloVe embeddings on domain corpora, save as `glove.txt` |
//! | `stats` | print dataset statistics (sources, properties, ground truth) |
//! | `match` | train LEAPME and score held-out pairs into a similarity graph |
//! | `evaluate` | score a similarity graph against a dataset's ground truth |
//! | `cluster` | derive property clusters from a similarity graph |
//!
//! Run `leapme help` (or any command with `--help`-less wrong args) for
//! usage.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use std::fmt;

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or bad flag usage.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input file.
    Parse(String),
    /// A pipeline stage failed.
    Pipeline(String),
}

impl CliError {
    /// Process exit code the top-level handler should use: `2` for
    /// usage errors (bad flags, unknown command), `1` for everything
    /// else that fails at run time. Success exits `0`.
    pub fn exit_code(&self) -> i32 {
        if self.is_usage() {
            2
        } else {
            1
        }
    }

    /// Whether the top-level handler should append [`USAGE`] — only
    /// worth it when the user got the invocation itself wrong.
    pub fn is_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
            CliError::Pipeline(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
leapme — learning-based property matching with embeddings

USAGE:
    leapme <COMMAND> [--flag value …]

COMMANDS:
    generate   --domain <cameras|headphones|phones|tvs> [--seed N] --out <dataset.json>
    import     --instances <instances.csv> [--alignments <alignments.csv>]
               [--name NAME] [--lenient] --out <dataset.json>
               (--lenient skips malformed CSV rows and reports them
                instead of failing the import)
    embed      --domains <d1,d2,…> [--dim N] [--seed N] --out <vectors.txt>
    stats      --dataset <dataset.json>
    match      --dataset <dataset.json> --embeddings <vectors.txt>
               [--train-fraction 0.8 | --train-sources 0,1,2] [--seed N]
               [--threshold 0.5] --out <graph.json> [--save-model <model.json>]
    evaluate   --dataset <dataset.json> --graph <graph.json> [--threshold 0.5]
    analyze    --dataset <dataset.json> --graph <graph.json> [--threshold 0.5]
    cluster    --graph <graph.json> [--method components|star] [--threshold 0.5]
    fuse       --dataset <dataset.json> --graph <graph.json>
               [--method components|star] [--threshold 0.5] [--out <schema.json>]
    help       print this message
";

/// Dispatch a full argument vector (excluding the binary name).
/// Returns the text to print on success.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let flags = args::Flags::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => commands::generate::run(&flags),
        "import" => commands::import::run(&flags),
        "embed" => commands::embed::run(&flags),
        "stats" => commands::stats::run(&flags),
        "match" => commands::match_cmd::run(&flags),
        "evaluate" => commands::evaluate::run(&flags),
        "cluster" => commands::cluster::run(&flags),
        "fuse" => commands::fuse::run(&flags),
        "analyze" => commands::analyze::run(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = run(&["help".to_string()]).unwrap();
        assert!(out.contains("COMMANDS"));
    }

    #[test]
    fn missing_command_is_usage_error() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn usage_errors_exit_2_run_errors_exit_1() {
        let usage = CliError::Usage("bad".into());
        assert!(usage.is_usage());
        assert_eq!(usage.exit_code(), 2);
        for err in [
            CliError::Io(std::io::Error::other("disk")),
            CliError::Parse("bad json".into()),
            CliError::Pipeline("training failed".into()),
        ] {
            assert!(!err.is_usage());
            assert_eq!(err.exit_code(), 1);
        }
    }
}
