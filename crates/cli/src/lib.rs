//! Implementation of the `leapme` command-line tool.
//!
//! The binary is a thin `main` over this library so every command is unit
//! testable. Subcommands:
//!
//! | command | purpose |
//! |---|---|
//! | `generate` | emit one of the four synthetic evaluation datasets as JSON |
//! | `embed` | train GloVe embeddings on domain corpora, save as `glove.txt` |
//! | `stats` | print dataset statistics (sources, properties, ground truth) |
//! | `train` | train LEAPME and save the model as a checksummed `.lmp` file |
//! | `match` | train LEAPME (or load a `.lmp` model) and score pairs into a similarity graph |
//! | `serve` | resident matching service: warm model + feature store behind HTTP with admission control, deadlines, graceful drain; `--models` serves a whole registry of domains |
//! | `registry` | inspect a multi-domain registry root; migrate v1 artifacts to zero-copy v2 containers |
//! | `evaluate` | score a similarity graph against a dataset's ground truth |
//! | `cluster` | derive property clusters from a similarity graph |
//!
//! Run `leapme help` (or any command with `--help`-less wrong args) for
//! usage.
//!
//! # Exit codes
//!
//! * `0` — success.
//! * `1` — runtime failure (I/O, parse, pipeline).
//! * `2` — usage error (bad flags, unknown command).
//! * `3` — cancelled: a `--timeout-secs` deadline elapsed or the process
//!   received SIGINT/SIGTERM. Durable state (training checkpoint, run
//!   journal) is persisted before exiting, so rerunning with `--resume`
//!   continues where the run stopped.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use std::fmt;
use std::sync::atomic::AtomicBool;

/// Process-wide interruption flag, set by the binary's SIGINT/SIGTERM
/// handler and observed by every cancellable command through a
/// [`leapme::core::cancel::CancelToken`].
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// The flag flipped on SIGINT/SIGTERM. Exposed so the binary's signal
/// handler (the only unsafe code in the CLI) can reach it, and so tests
/// can simulate an interrupt.
pub fn interrupted_flag() -> &'static AtomicBool {
    &INTERRUPTED
}

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or bad flag usage.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input file.
    Parse(String),
    /// A pipeline stage failed.
    Pipeline(String),
    /// The run was cancelled (deadline or signal) after persisting any
    /// configured durable state; the message says what was saved.
    Cancelled(String),
}

impl CliError {
    /// Process exit code the top-level handler should use: `2` for
    /// usage errors (bad flags, unknown command), `3` for cooperative
    /// cancellation (deadline / SIGINT with durable state saved), `1`
    /// for everything else that fails at run time. Success exits `0`.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Cancelled(_) => 3,
            _ => 1,
        }
    }

    /// Whether the top-level handler should append [`USAGE`] — only
    /// worth it when the user got the invocation itself wrong.
    pub fn is_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
            CliError::Pipeline(m) => write!(f, "{m}"),
            CliError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
leapme — learning-based property matching with embeddings

USAGE:
    leapme <COMMAND> [--flag value …]

COMMANDS:
    generate   --domain <cameras|headphones|phones|tvs> [--seed N] --out <dataset.json>
    import     --instances <instances.csv> [--alignments <alignments.csv>]
               [--name NAME] [--lenient] --out <dataset.json>
               (--lenient skips malformed CSV rows and reports them
                instead of failing the import)
    embed      --domains <d1,d2,…> [--dim N] [--seed N] --out <vectors.txt>
    stats      --dataset <dataset.json>
    train      --dataset <dataset.json> --embeddings <vectors.txt>
               --save <model.lmp>
               [--train-fraction 0.8 | --train-sources 0,1,2] [--seed N]
               [--threshold 0.5] [--checkpoint <train.ckpt>]
               [--checkpoint-every N] [--resume] [--timeout-secs N]
               (on timeout or Ctrl-C the training state is checkpointed
                and the process exits 3; rerun with --resume to continue)
    match      --dataset <dataset.json> --embeddings <vectors.txt>
               [--model <model.lmp>]
               [--train-fraction 0.8 | --train-sources 0,1,2] [--seed N]
               [--threshold 0.5] [--timeout-secs N]
               [--blocking token|embedding|ann|lsh|combined] [--blocking-k N]
               [--stress N [--stress-seed S] [--stress-dim D]]
               --out <graph.json> [--save-model <model.json>]
               (--model skips training and scores every cross-source
                pair with the loaded model; ann/lsh/combined retrieve
                top-k candidates from an HNSW / name-LSH index instead
                of enumerating the quadratic pair space; --stress N
                swaps the dataset/embedding files for the in-memory
                stress generator at N properties and requires an
                index-backed blocking mode plus explicit
                --train-sources or --model)
    serve      --model <model.lmp> --dataset <dataset.json>
               --embeddings <vectors.txt> [--feature-cache <cache.lfc>]
               [--addr 127.0.0.1:7878] [--workers 4] [--queue-depth 64]
               [--request-timeout-ms 5000] [--io-timeout-ms 2000]
               [--max-body-bytes N] [--journal <serve.journal>]
               [--snapshot <resident.snap>] [--keep-alive-max 32]
               (resident matching service: POST /score, /match,
                /integrate-source; GET /healthz, /readyz, /metrics.
                Per-request deadlines via the x-leapme-deadline-ms
                header; overload sheds 503 + Retry-After; SIGINT/SIGTERM
                drains gracefully and exits 0, or 3 if connections
                were dropped. --snapshot persists the resident state
                before every integration swap and recovers the last
                good generation on restart; clients sending
                Connection: keep-alive get up to --keep-alive-max
                requests per connection)
               registry mode: --models <dir> [--resident-budget-mb N]
               instead of --model/--dataset/--embeddings; each
               <dir>/<name>/ holds model.lmp + dataset.json +
               features.lfc|embeddings.txt, requests pick a domain via
               the \"model\" body field or x-leapme-model header, and
               POST /reload hot-swaps one domain from disk
    registry   --dir <root> | --upgrade <artifact> --out <artifact>
               (inspect a registry root: per-domain open path, bytes,
                latency, and aggregate stats; or migrate a v1 model /
                feature cache / snapshot to the zero-copy v2 container)
    evaluate   --dataset <dataset.json> --graph <graph.json> [--threshold 0.5]
    analyze    --dataset <dataset.json> --graph <graph.json> [--threshold 0.5]
    cluster    --graph <graph.json> [--method components|star] [--threshold 0.5]
    continual  --out <report.json> [--properties 300] [--epochs 4]
               [--sources-per-epoch 2] [--properties-per-source 25]
               [--naming-drift 0.2] [--value-drift 0.3] [--corrupt-every N]
               [--label-budget 64] [--drift-threshold 0.25]
               [--force-refit-every N] [--stop-after-epoch N]
               [--journal <continual.journal>] [--seed N] [--dim 16]
               (continual-ingestion scenario: drifting source schedule,
                validation gate with typed quarantine, PSI drift
                detection, champion/challenger refit with an
                active-learning label budget and automatic rollback;
                prints the quality-over-time curve; decisions are
                journaled and honored on a resumed run)
    fuse       --dataset <dataset.json> --graph <graph.json>
               [--method components|star] [--threshold 0.5] [--out <schema.json>]
    help       print this message

EXIT CODES:
    0 success · 1 runtime failure · 2 usage error · 3 cancelled
    (deadline or SIGINT; durable state was saved first)
";

/// Dispatch a full argument vector (excluding the binary name).
/// Returns the text to print on success.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let flags = args::Flags::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => commands::generate::run(&flags),
        "import" => commands::import::run(&flags),
        "embed" => commands::embed::run(&flags),
        "stats" => commands::stats::run(&flags),
        "train" => commands::train::run(&flags),
        "match" => commands::match_cmd::run(&flags),
        "serve" => commands::serve::run(&flags),
        "registry" => commands::registry::run(&flags),
        "evaluate" => commands::evaluate::run(&flags),
        "cluster" => commands::cluster::run(&flags),
        "continual" => commands::continual::run(&flags),
        "fuse" => commands::fuse::run(&flags),
        "analyze" => commands::analyze::run(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = run(&["help".to_string()]).unwrap();
        assert!(out.contains("COMMANDS"));
    }

    #[test]
    fn missing_command_is_usage_error() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn usage_errors_exit_2_run_errors_exit_1() {
        let usage = CliError::Usage("bad".into());
        assert!(usage.is_usage());
        assert_eq!(usage.exit_code(), 2);
        for err in [
            CliError::Io(std::io::Error::other("disk")),
            CliError::Parse("bad json".into()),
            CliError::Pipeline("training failed".into()),
        ] {
            assert!(!err.is_usage());
            assert_eq!(err.exit_code(), 1);
        }
    }

    #[test]
    fn cancellation_exits_3() {
        let err = CliError::Cancelled("checkpoint saved".into());
        assert!(!err.is_usage());
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().starts_with("cancelled:"));
    }
}
