//! The `leapme` command-line binary (thin wrapper over `leapme_cli`).

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match leapme_cli::run(&argv) {
        Ok(output) => {
            // Tolerate a closed pipe (`leapme … | head`) instead of
            // panicking like the default print! machinery does.
            let stdout = std::io::stdout();
            let mut handle = stdout.lock();
            let _ = writeln!(handle, "{output}");
        }
        Err(e) => {
            // The single top-level error printer: usage mistakes get the
            // usage text and exit 2, runtime failures exit 1.
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!("\n{}", leapme_cli::USAGE);
            }
            std::process::exit(e.exit_code());
        }
    }
}
