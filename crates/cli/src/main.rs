//! The `leapme` command-line binary (thin wrapper over `leapme_cli`).

use std::io::Write;
use std::sync::atomic::Ordering;

/// Signal handler for SIGINT/SIGTERM: flip the process-wide flag that
/// every cancellable command polls. Only async-signal-safe work happens
/// here (a single atomic store); the command notices the flag at its
/// next poll point, checkpoints durable state, and exits 3.
extern "C" fn on_interrupt(_signum: i32) {
    leapme_cli::interrupted_flag().store(true, Ordering::SeqCst);
}

/// Install [`on_interrupt`] for SIGINT (2) and SIGTERM (15) via the
/// libc `signal` symbol, declared here directly so the crate needs no
/// FFI dependency. This is the only unsafe code in the CLI.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_interrupt);
        signal(SIGTERM, on_interrupt);
    }
}

fn main() {
    install_signal_handlers();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match leapme_cli::run(&argv) {
        Ok(output) => {
            // Tolerate a closed pipe (`leapme … | head`) instead of
            // panicking like the default print! machinery does.
            let stdout = std::io::stdout();
            let mut handle = stdout.lock();
            let _ = writeln!(handle, "{output}");
        }
        Err(e) => {
            // The single top-level error printer: usage mistakes get the
            // usage text and exit 2, runtime failures exit 1, cancelled
            // runs (deadline or signal, durable state saved) exit 3.
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!("\n{}", leapme_cli::USAGE);
            }
            std::process::exit(e.exit_code());
        }
    }
}
