//! End-to-end CLI workflow: every subcommand chained the way a user would
//! run them, through `leapme_cli::run` (no subprocess needed).

use leapme_cli::run;

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("leapme_cli_workflow");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn generate_embed_match_evaluate_cluster_fuse_analyze() {
    let dir = tmp_dir();
    let ds = dir.join("wf_tvs.json");
    let vecs = dir.join("wf_vectors.txt");
    let graph = dir.join("wf_graph.json");
    let model = dir.join("wf_model.json");
    let schema = dir.join("wf_schema.json");

    // generate
    let out = run(&args(&[
        "generate",
        "--domain",
        "tvs",
        "--seed",
        "13",
        "--out",
        ds.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("8 sources"), "{out}");

    // stats
    let out = run(&args(&["stats", "--dataset", ds.to_str().unwrap()])).unwrap();
    assert!(out.contains("matching pairs"), "{out}");

    // embed (small config to keep the test quick)
    let out = run(&args(&[
        "embed",
        "--domains",
        "tvs",
        "--dim",
        "12",
        "--epochs",
        "4",
        "--out",
        vecs.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("12 dims"), "{out}");

    // match
    let out = run(&args(&[
        "match",
        "--dataset",
        ds.to_str().unwrap(),
        "--embeddings",
        vecs.to_str().unwrap(),
        "--train-fraction",
        "0.8",
        "--seed",
        "13",
        "--out",
        graph.to_str().unwrap(),
        "--save-model",
        model.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("scored pairs"), "{out}");
    assert!(model.exists());

    // evaluate
    let out = run(&args(&[
        "evaluate",
        "--dataset",
        ds.to_str().unwrap(),
        "--graph",
        graph.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("F1="), "{out}");

    // cluster
    let out = run(&args(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--method",
        "star",
    ]))
    .unwrap();
    assert!(out.contains("clusters"), "{out}");

    // fuse
    let out = run(&args(&[
        "fuse",
        "--dataset",
        ds.to_str().unwrap(),
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        schema.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("unified schema"), "{out}");
    assert!(schema.exists());

    // analyze
    let out = run(&args(&[
        "analyze",
        "--dataset",
        ds.to_str().unwrap(),
        "--graph",
        graph.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("false positives by category"), "{out}");

    for p in [ds, vecs, graph, model, schema] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn csv_import_to_match_workflow() {
    let dir = tmp_dir();
    let inst = dir.join("wf_instances.csv");
    let align = dir.join("wf_alignments.csv");
    let ds = dir.join("wf_imported.json");

    // Three small sources with aligned properties.
    let mut instances = String::from("source,property,entity,value\n");
    let mut alignments = String::from("source,property,reference\n");
    for (shop, prop) in [("a", "megapixels"), ("b", "resolution"), ("c", "mp count")] {
        for e in 0..4 {
            instances.push_str(&format!("shop{shop},{prop},e{e},{} MP\n", 10 + e));
        }
        alignments.push_str(&format!("shop{shop},{prop},resolution\n"));
        for e in 0..4 {
            instances.push_str(&format!("shop{shop},weight,e{e},{} g\n", 100 + e));
        }
        alignments.push_str(&format!("shop{shop},weight,weight\n"));
    }
    std::fs::write(&inst, instances).unwrap();
    std::fs::write(&align, alignments).unwrap();

    let out = run(&args(&[
        "import",
        "--instances",
        inst.to_str().unwrap(),
        "--alignments",
        align.to_str().unwrap(),
        "--name",
        "shops",
        "--out",
        ds.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("3 sources"), "{out}");
    assert!(out.contains("6 matching pairs"), "{out}"); // 2 refs × 3 pairs

    for p in [inst, align, ds] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let err = run(&args(&["transmogrify"])).unwrap_err();
    assert!(err.to_string().contains("transmogrify"));
    // Flag without value.
    let err = run(&args(&["generate", "--domain"])).unwrap_err();
    assert!(err.to_string().contains("missing a value"));
    // Missing required flag.
    let err = run(&args(&["generate", "--domain", "tvs"])).unwrap_err();
    assert!(err.to_string().contains("--out"));
}
