//! Error analysis of match decisions.
//!
//! Aggregate P/R/F1 hides *where* a matcher fails. This module
//! categorizes the errors against the reference alignment:
//!
//! * false positives split by what was wrongly joined — two unaligned
//!   ("junk") properties, an unaligned with an aligned one, or two
//!   properties aligned to *different* reference properties (semantic
//!   confusions, the interesting class);
//! * false negatives grouped by reference property, surfacing which
//!   concepts the matcher systematically misses.

use crate::metrics::Metrics;
use leapme_data::model::{Dataset, PropertyPair};
use std::collections::{BTreeMap, BTreeSet};

/// Categories of false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FpCategory {
    /// Both properties aligned, to different reference properties —
    /// a semantic confusion (e.g. "front camera" vs "rear camera").
    CrossReference,
    /// One aligned property joined with an unaligned one.
    AlignedToJunk,
    /// Two unaligned properties joined.
    JunkToJunk,
}

impl FpCategory {
    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            FpCategory::CrossReference => "cross-reference confusion",
            FpCategory::AlignedToJunk => "aligned × unaligned",
            FpCategory::JunkToJunk => "unaligned × unaligned",
        }
    }
}

/// A false-negative group: one reference property and its missed pairs.
#[derive(Debug, Clone)]
pub struct MissedReference {
    /// The reference property name.
    pub reference: String,
    /// Ground-truth pairs for this reference inside the evaluated scope.
    pub total_pairs: usize,
    /// How many of them were missed.
    pub missed_pairs: usize,
    /// Example missed pairs (up to 3).
    pub examples: Vec<PropertyPair>,
}

/// Full error report.
#[derive(Debug, Clone)]
pub struct ErrorReport {
    /// Aggregate metrics over the evaluated pairs.
    pub metrics: Metrics,
    /// False-positive counts per category.
    pub fp_by_category: BTreeMap<FpCategory, usize>,
    /// Example false positives per category (up to 5 each).
    pub fp_examples: BTreeMap<FpCategory, Vec<PropertyPair>>,
    /// References sorted by missed-pair count, descending.
    pub missed_references: Vec<MissedReference>,
}

/// Analyze predictions against the dataset's alignment.
///
/// `predicted` are the pairs called matches; `candidates` is the
/// evaluated candidate space (ground truth is restricted to it).
pub fn analyze(
    dataset: &Dataset,
    predicted: &BTreeSet<PropertyPair>,
    candidates: &[PropertyPair],
) -> ErrorReport {
    let scope: BTreeSet<&PropertyPair> = candidates.iter().collect();
    let gt: BTreeSet<PropertyPair> = dataset
        .ground_truth_pairs()
        .into_iter()
        .filter(|p| scope.contains(p))
        .collect();

    let metrics = Metrics::from_sets(predicted, &gt);

    // --- false positives ---
    let mut fp_by_category: BTreeMap<FpCategory, usize> = BTreeMap::new();
    let mut fp_examples: BTreeMap<FpCategory, Vec<PropertyPair>> = BTreeMap::new();
    for p in predicted {
        if gt.contains(p) {
            continue;
        }
        let PropertyPair(a, b) = p;
        let (ra, rb) = (dataset.alignment_of(a), dataset.alignment_of(b));
        let category = match (ra, rb) {
            (Some(_), Some(_)) => FpCategory::CrossReference,
            (None, None) => FpCategory::JunkToJunk,
            _ => FpCategory::AlignedToJunk,
        };
        *fp_by_category.entry(category).or_insert(0) += 1;
        let examples = fp_examples.entry(category).or_default();
        if examples.len() < 5 {
            examples.push(p.clone());
        }
    }

    // --- false negatives by reference ---
    let mut per_reference: BTreeMap<String, (usize, usize, Vec<PropertyPair>)> = BTreeMap::new();
    for p in &gt {
        let reference = dataset
            .alignment_of(&p.0)
            .expect("gt pairs are aligned")
            .to_string();
        let entry = per_reference.entry(reference).or_default();
        entry.0 += 1;
        if !predicted.contains(p) {
            entry.1 += 1;
            if entry.2.len() < 3 {
                entry.2.push(p.clone());
            }
        }
    }
    let mut missed_references: Vec<MissedReference> = per_reference
        .into_iter()
        .filter(|(_, (_, missed, _))| *missed > 0)
        .map(|(reference, (total_pairs, missed_pairs, examples))| MissedReference {
            reference,
            total_pairs,
            missed_pairs,
            examples,
        })
        .collect();
    missed_references.sort_by(|a, b| {
        b.missed_pairs
            .cmp(&a.missed_pairs)
            .then(a.reference.cmp(&b.reference))
    });

    ErrorReport {
        metrics,
        fp_by_category,
        fp_examples,
        missed_references,
    }
}

impl ErrorReport {
    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "{}", self.metrics).unwrap();
        writeln!(out, "\nfalse positives by category:").unwrap();
        for (cat, count) in &self.fp_by_category {
            writeln!(out, "  {:<28} {count}", cat.name()).unwrap();
            if let Some(examples) = self.fp_examples.get(cat) {
                for e in examples.iter().take(3) {
                    writeln!(out, "      e.g. {} || {}", e.0, e.1).unwrap();
                }
            }
        }
        writeln!(out, "\nhardest reference properties (missed pairs):").unwrap();
        for m in self.missed_references.iter().take(10) {
            writeln!(
                out,
                "  {:<28} {}/{} missed",
                m.reference, m.missed_pairs, m.total_pairs
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};
    use std::collections::BTreeMap as Map;

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    fn pair(a: u16, an: &str, b: u16, bn: &str) -> PropertyPair {
        PropertyPair::new(key(a, an), key(b, bn))
    }

    fn dataset() -> Dataset {
        let mut alignment = Map::new();
        alignment.insert(key(0, "mp"), "resolution".to_string());
        alignment.insert(key(1, "res"), "resolution".to_string());
        alignment.insert(key(2, "pixels"), "resolution".to_string());
        alignment.insert(key(0, "weight"), "weight".to_string());
        alignment.insert(key(1, "wt"), "weight".to_string());
        Dataset::new(
            "toy",
            vec!["a".into(), "b".into(), "c".into()],
            vec![],
            alignment,
        )
        .unwrap()
    }

    #[test]
    fn categorizes_false_positives() {
        let ds = dataset();
        let candidates = vec![
            pair(0, "mp", 1, "res"),      // tp
            pair(0, "mp", 1, "wt"),       // fp: cross-reference
            pair(0, "mp", 1, "junk1"),    // fp: aligned × junk
            pair(0, "junk0", 1, "junk1"), // fp: junk × junk
            pair(0, "weight", 1, "wt"),   // fn if not predicted
            pair(1, "res", 2, "pixels"),  // fn
        ];
        let predicted: BTreeSet<PropertyPair> = [
            pair(0, "mp", 1, "res"),
            pair(0, "mp", 1, "wt"),
            pair(0, "mp", 1, "junk1"),
            pair(0, "junk0", 1, "junk1"),
        ]
        .into();
        let report = analyze(&ds, &predicted, &candidates);
        assert_eq!(report.metrics.tp, 1);
        assert_eq!(report.metrics.fp, 3);
        assert_eq!(report.metrics.fn_, 2);
        assert_eq!(report.fp_by_category[&FpCategory::CrossReference], 1);
        assert_eq!(report.fp_by_category[&FpCategory::AlignedToJunk], 1);
        assert_eq!(report.fp_by_category[&FpCategory::JunkToJunk], 1);
    }

    #[test]
    fn groups_false_negatives_by_reference() {
        let ds = dataset();
        let candidates = vec![
            pair(0, "mp", 1, "res"),
            pair(1, "res", 2, "pixels"),
            pair(0, "mp", 2, "pixels"),
            pair(0, "weight", 1, "wt"),
        ];
        let predicted: BTreeSet<PropertyPair> = [pair(0, "mp", 1, "res")].into();
        let report = analyze(&ds, &predicted, &candidates);
        // resolution: 3 pairs, 2 missed; weight: 1 pair, 1 missed.
        assert_eq!(report.missed_references.len(), 2);
        assert_eq!(report.missed_references[0].reference, "resolution");
        assert_eq!(report.missed_references[0].missed_pairs, 2);
        assert_eq!(report.missed_references[0].total_pairs, 3);
        assert_eq!(report.missed_references[1].reference, "weight");
    }

    #[test]
    fn perfect_prediction_has_no_errors() {
        let ds = dataset();
        let candidates = vec![pair(0, "mp", 1, "res"), pair(0, "junk0", 1, "junk1")];
        let predicted: BTreeSet<PropertyPair> = [pair(0, "mp", 1, "res")].into();
        let report = analyze(&ds, &predicted, &candidates);
        assert_eq!(report.metrics.f1, 1.0);
        assert!(report.fp_by_category.is_empty());
        assert!(report.missed_references.is_empty());
    }

    #[test]
    fn text_rendering() {
        let ds = dataset();
        let candidates = vec![pair(0, "mp", 1, "wt"), pair(0, "mp", 1, "res")];
        let predicted: BTreeSet<PropertyPair> = [pair(0, "mp", 1, "wt")].into();
        let report = analyze(&ds, &predicted, &candidates);
        let text = report.to_text();
        assert!(text.contains("cross-reference confusion"));
        assert!(text.contains("resolution"));
    }
}
