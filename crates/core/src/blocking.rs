//! Candidate blocking: pruning the quadratic pair space.
//!
//! Scoring every cross-source pair is O(P²) in the number of properties —
//! the paper's camera dataset (>3200 properties) already yields millions
//! of candidates, and holistic KG integration (paper §I) faces far more.
//! Blocking produces a candidate subset that keeps (almost) all true
//! matches while discarding the bulk of the negatives, after which the
//! classifier only scores the survivors.
//!
//! Two complementary blockers are provided, plus their union:
//!
//! * [`TokenBlocker`] — inverted index over (fuzzy-normalized) name
//!   tokens: pairs sharing at least one token become candidates. Catches
//!   lexical matches, misses cross-synonym matches.
//! * [`EmbeddingBlocker`] — for each property, the k nearest properties
//!   by name-embedding cosine. Catches synonym matches.
//!
//! [`BlockingStats`] measures the two quantities that matter: *pair
//! completeness* (recall of the ground truth inside the candidate set)
//! and the *reduction ratio* (how much of the quadratic space was
//! pruned).

use leapme_data::model::{Dataset, PropertyPair, SourceId};
use leapme_embedding::store::{cosine, EmbeddingStore};
use std::collections::{BTreeMap, BTreeSet};

/// Quality metrics of a blocking pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Candidates produced.
    pub candidates: usize,
    /// Size of the full cross-source pair space.
    pub full_space: usize,
    /// `1 − candidates / full_space` (higher is cheaper).
    pub reduction_ratio: f64,
    /// Fraction of ground-truth pairs kept (higher is safer).
    pub pair_completeness: f64,
}

/// Compute blocking quality against a dataset's ground truth.
pub fn evaluate_blocking(dataset: &Dataset, candidates: &BTreeSet<PropertyPair>) -> BlockingStats {
    let all_sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let full_space = dataset.cross_source_pairs(&all_sources).len();
    let gt = dataset.ground_truth_pairs();
    let kept = gt.iter().filter(|p| candidates.contains(*p)).count();
    BlockingStats {
        candidates: candidates.len(),
        full_space,
        reduction_ratio: if full_space == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / full_space as f64
        },
        pair_completeness: if gt.is_empty() {
            1.0
        } else {
            kept as f64 / gt.len() as f64
        },
    }
}

/// Inverted-index blocker over name tokens.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    /// Ignore tokens occurring in more than this fraction of properties
    /// (stop-token guard: "the", "of", a ubiquitous brand token …).
    pub max_token_frequency: f64,
}

impl Default for TokenBlocker {
    fn default() -> Self {
        TokenBlocker {
            max_token_frequency: 0.25,
        }
    }
}

impl TokenBlocker {
    /// Candidates: cross-source pairs sharing ≥ 1 non-stop token.
    pub fn candidates(&self, dataset: &Dataset) -> BTreeSet<PropertyPair> {
        let properties = dataset.properties();
        let n = properties.len().max(1);
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in properties.iter().enumerate() {
            let tokens: BTreeSet<String> =
                leapme_embedding::tokenize::tokenize(&key.name).into_iter().collect();
            for t in tokens {
                index.entry(t).or_default().push(i);
            }
        }
        let cap = (self.max_token_frequency * n as f64).ceil() as usize;
        let mut out = BTreeSet::new();
        for postings in index.values() {
            if postings.len() > cap.max(1) {
                continue; // stop token
            }
            for (ai, &a) in postings.iter().enumerate() {
                for &b in &postings[ai + 1..] {
                    let (pa, pb) = (&properties[a], &properties[b]);
                    if pa.source != pb.source {
                        out.insert(PropertyPair::new(pa.clone(), pb.clone()));
                    }
                }
            }
        }
        out
    }
}

/// k-nearest-neighbour blocker over name embeddings.
#[derive(Debug, Clone)]
pub struct EmbeddingBlocker {
    /// Neighbours kept per property.
    pub k: usize,
}

impl Default for EmbeddingBlocker {
    fn default() -> Self {
        EmbeddingBlocker { k: 20 }
    }
}

impl EmbeddingBlocker {
    /// Candidates: for every property, its `k` closest cross-source
    /// properties by average-name-embedding cosine. Properties whose
    /// names are entirely out of vocabulary produce no candidates.
    pub fn candidates(
        &self,
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
    ) -> BTreeSet<PropertyPair> {
        let properties = dataset.properties();
        let vectors: Vec<Vec<f32>> = properties
            .iter()
            .map(|p| embeddings.average_text(&p.name))
            .collect();
        let non_zero: Vec<bool> = vectors
            .iter()
            .map(|v| v.iter().any(|&x| x != 0.0))
            .collect();

        let mut out = BTreeSet::new();
        for (i, key) in properties.iter().enumerate() {
            if !non_zero[i] {
                continue;
            }
            let mut sims: Vec<(f64, usize)> = properties
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && other.source != key.source && non_zero[*j])
                .map(|(j, _)| (cosine(&vectors[i], &vectors[j]), j))
                .collect();
            sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            for &(_, j) in sims.iter().take(self.k) {
                out.insert(PropertyPair::new(key.clone(), properties[j].clone()));
            }
        }
        out
    }
}

/// Union of token and embedding blocking — the recommended configuration
/// (lexical + semantic coverage).
pub fn combined_candidates(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    token: &TokenBlocker,
    embedding: &EmbeddingBlocker,
) -> BTreeSet<PropertyPair> {
    let mut out = token.candidates(dataset);
    out.extend(embedding.candidates(dataset, embeddings));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train, GloVeConfig};
    use leapme_embedding::vocab::Vocab;

    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 10,
                filler_sentences: 30,
            },
            5,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 10,
                ..GloVeConfig::default()
            },
            5,
        )
        .unwrap()
    }

    #[test]
    fn token_blocking_reduces_space_and_keeps_lexical_matches() {
        let ds = generate(Domain::Tvs, 21);
        let cands = TokenBlocker::default().candidates(&ds);
        let stats = evaluate_blocking(&ds, &cands);
        assert!(stats.reduction_ratio > 0.5, "{stats:?}");
        // Token blocking alone keeps a decent share of the ground truth
        // (Zipf-weighted names make many matches lexical).
        assert!(stats.pair_completeness > 0.5, "{stats:?}");
        // All candidates are cross-source.
        assert!(cands.iter().all(|PropertyPair(a, b)| a.source != b.source));
    }

    #[test]
    fn embedding_blocking_catches_synonyms() {
        let ds = generate(Domain::Tvs, 22);
        let emb = embeddings(Domain::Tvs);
        let token = TokenBlocker::default().candidates(&ds);
        let emb_cands = EmbeddingBlocker { k: 15 }.candidates(&ds, &emb);
        // The embedding blocker must recover ground-truth pairs the token
        // blocker misses (pure synonyms with no shared token).
        let gt = ds.ground_truth_pairs();
        let recovered = gt
            .iter()
            .filter(|p| !token.contains(*p) && emb_cands.contains(*p))
            .count();
        assert!(recovered > 0, "embedding blocker added nothing");
    }

    #[test]
    fn combined_blocking_dominates_parts() {
        let ds = generate(Domain::Headphones, 23);
        let emb = embeddings(Domain::Headphones);
        let token = TokenBlocker::default();
        let knn = EmbeddingBlocker { k: 30 };
        let combined = combined_candidates(&ds, &emb, &token, &knn);
        let t_stats = evaluate_blocking(&ds, &token.candidates(&ds));
        let e_stats = evaluate_blocking(&ds, &knn.candidates(&ds, &emb));
        let c_stats = evaluate_blocking(&ds, &combined);
        // The union dominates both parts and keeps most of the ground
        // truth while pruning most of the space. (The residual misses are
        // heavily noise-mangled names — invisible to tokens and to the
        // deliberately tiny test embeddings alike.)
        assert!(c_stats.pair_completeness >= t_stats.pair_completeness);
        assert!(c_stats.pair_completeness >= e_stats.pair_completeness);
        assert!(
            c_stats.pair_completeness > 0.7,
            "combined completeness too low: {c_stats:?}"
        );
        assert!(c_stats.reduction_ratio > 0.3, "{c_stats:?}");
    }

    #[test]
    fn stop_tokens_are_skipped() {
        // With a tiny max frequency everything is a stop token → no pairs.
        let ds = generate(Domain::Tvs, 24);
        let strict = TokenBlocker {
            max_token_frequency: 0.0,
        };
        // cap.max(1) keeps singleton postings usable; ubiquitous tokens die.
        let loose = TokenBlocker {
            max_token_frequency: 1.0,
        };
        let s = strict.candidates(&ds);
        let l = loose.candidates(&ds);
        assert!(s.len() < l.len());
    }

    #[test]
    fn evaluate_blocking_edge_cases() {
        let ds = generate(Domain::Tvs, 25);
        let empty = BTreeSet::new();
        let stats = evaluate_blocking(&ds, &empty);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.pair_completeness, 0.0);
        assert!((stats.reduction_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn knn_k_controls_candidate_count() {
        let ds = generate(Domain::Tvs, 26);
        let emb = embeddings(Domain::Tvs);
        let small = EmbeddingBlocker { k: 2 }.candidates(&ds, &emb);
        let large = EmbeddingBlocker { k: 30 }.candidates(&ds, &emb);
        assert!(small.len() < large.len());
    }
}
