//! Candidate blocking: pruning the quadratic pair space.
//!
//! Scoring every cross-source pair is O(P²) in the number of properties —
//! the paper's camera dataset (>3200 properties) already yields millions
//! of candidates, and holistic KG integration (paper §I) faces far more.
//! Blocking produces a candidate subset that keeps (almost) all true
//! matches while discarding the bulk of the negatives, after which the
//! classifier only scores the survivors.
//!
//! Two families of blockers are provided:
//!
//! * Full-scan blockers (quality-first, O(n²) pair visits):
//!   [`TokenBlocker`] — inverted index over (fuzzy-normalized) name
//!   tokens: pairs sharing at least one token become candidates; and
//!   [`EmbeddingBlocker`] — for each property, the exact k nearest
//!   properties by name-embedding similarity. Their union is
//!   [`combined_candidates`].
//! * Index-backed blockers (sublinear, DESIGN.md §12): [`AnnBlocker`]
//!   retrieves top-k per property from the deterministic HNSW graph in
//!   [`crate::index::hnsw`]; [`LshBlocker`] from the banded name-minhash
//!   index in [`crate::index::lsh`]. Both take the union of retrieval
//!   directions (a pair survives if *either* endpoint retrieves the
//!   other) and emit a **sorted, deduplicated flat
//!   `Vec<PropertyPair>`** — the hot-path representation scoring
//!   consumes directly, with membership via binary search instead of
//!   `BTreeSet` pointer-chasing.
//!
//! [`BlockingStats`] measures the two quantities that matter: *pair
//! completeness* (recall of the ground truth inside the candidate set)
//! and the *reduction ratio* (how much of the quadratic space was
//! pruned). The full-space denominator is computed arithmetically
//! ([`Dataset::cross_source_pair_count`]) so evaluating blocking never
//! materializes the O(n²) space it is there to avoid.

use crate::index::hnsw::{HnswConfig, HnswIndex, VisitedSet};
use crate::index::lsh::{NameLshConfig, NameLshIndex};
use crate::index::{CancelCheck, PropertyVectors};
use crate::CoreError;
use leapme_data::model::{Dataset, PropertyKey, PropertyPair, SourceId};
use leapme_embedding::store::EmbeddingStore;
use std::collections::{BTreeMap, BTreeSet};

/// Quality metrics of a blocking pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Candidates produced.
    pub candidates: usize,
    /// Size of the full cross-source pair space.
    pub full_space: usize,
    /// `1 − candidates / full_space` (higher is cheaper).
    pub reduction_ratio: f64,
    /// Fraction of ground-truth pairs kept (higher is safer).
    pub pair_completeness: f64,
}

fn stats_from(candidates: usize, full_space: usize, gt: usize, kept: usize) -> BlockingStats {
    BlockingStats {
        candidates,
        full_space,
        reduction_ratio: if full_space == 0 {
            0.0
        } else {
            1.0 - candidates as f64 / full_space as f64
        },
        pair_completeness: if gt == 0 {
            1.0
        } else {
            kept as f64 / gt as f64
        },
    }
}

fn full_pair_space(dataset: &Dataset) -> usize {
    let all_sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    dataset.cross_source_pair_count(&all_sources)
}

/// Compute blocking quality against a dataset's ground truth.
pub fn evaluate_blocking(dataset: &Dataset, candidates: &BTreeSet<PropertyPair>) -> BlockingStats {
    let gt = dataset.ground_truth_pairs();
    let kept = gt.iter().filter(|p| candidates.contains(*p)).count();
    stats_from(candidates.len(), full_pair_space(dataset), gt.len(), kept)
}

/// [`evaluate_blocking`] over the flat sorted candidate representation
/// the index-backed blockers emit (membership by binary search).
///
/// # Panics
///
/// Debug-asserts that `candidates` is sorted and deduplicated.
pub fn evaluate_blocking_sorted(dataset: &Dataset, candidates: &[PropertyPair]) -> BlockingStats {
    debug_assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must be sorted and deduplicated"
    );
    let gt = dataset.ground_truth_pairs();
    let kept = gt
        .iter()
        .filter(|p| candidates.binary_search(p).is_ok())
        .count();
    stats_from(candidates.len(), full_pair_space(dataset), gt.len(), kept)
}

/// Canonicalize a raw retrieval pair stream into the sorted, deduplicated
/// flat form all downstream consumers (scoring, [`evaluate_blocking_sorted`])
/// assume.
pub fn sort_dedup_pairs(mut pairs: Vec<PropertyPair>) -> Vec<PropertyPair> {
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Inverted-index blocker over name tokens.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    /// Ignore tokens occurring in more than this fraction of properties
    /// (stop-token guard: "the", "of", a ubiquitous brand token …).
    pub max_token_frequency: f64,
}

impl Default for TokenBlocker {
    fn default() -> Self {
        TokenBlocker {
            max_token_frequency: 0.25,
        }
    }
}

impl TokenBlocker {
    /// Candidates: cross-source pairs sharing ≥ 1 non-stop token.
    pub fn candidates(&self, dataset: &Dataset) -> BTreeSet<PropertyPair> {
        let properties = dataset.properties();
        let n = properties.len().max(1);
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in properties.iter().enumerate() {
            let tokens: BTreeSet<String> =
                leapme_embedding::tokenize::tokenize(&key.name).into_iter().collect();
            for t in tokens {
                index.entry(t).or_default().push(i);
            }
        }
        let cap = (self.max_token_frequency * n as f64).ceil() as usize;
        let mut out = BTreeSet::new();
        for postings in index.values() {
            if postings.len() > cap.max(1) {
                continue; // stop token
            }
            for (ai, &a) in postings.iter().enumerate() {
                for &b in &postings[ai + 1..] {
                    let (pa, pb) = (&properties[a], &properties[b]);
                    if pa.source != pb.source {
                        out.insert(PropertyPair::new(pa.clone(), pb.clone()));
                    }
                }
            }
        }
        out
    }
}

/// k-nearest-neighbour blocker over name embeddings.
#[derive(Debug, Clone)]
pub struct EmbeddingBlocker {
    /// Neighbours kept per property.
    pub k: usize,
}

impl Default for EmbeddingBlocker {
    fn default() -> Self {
        EmbeddingBlocker { k: 20 }
    }
}

impl EmbeddingBlocker {
    /// Candidates: for every property, its `k` closest cross-source
    /// properties by average-name-embedding similarity. Properties whose
    /// names are entirely out of vocabulary produce no candidates.
    ///
    /// Each vector is normalized once in [`PropertyVectors::build`]
    /// (instead of cosine re-deriving both norms inside the O(n²) inner
    /// loop), after which the scan is the exact top-k oracle
    /// ([`PropertyVectors::top_k`]) the ANN index is measured against.
    pub fn candidates(
        &self,
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
    ) -> BTreeSet<PropertyPair> {
        let vectors = PropertyVectors::build(dataset, embeddings);
        let mut out = BTreeSet::new();
        for i in 0..vectors.len() {
            for n in vectors.top_k(i, self.k) {
                out.insert(pair_of(&vectors.properties, i, n.id as usize));
            }
        }
        out
    }
}

fn pair_of(properties: &[PropertyKey], i: usize, j: usize) -> PropertyPair {
    PropertyPair::new(properties[i].clone(), properties[j].clone())
}

/// Index-backed ANN blocker: top-k retrieval per property from the
/// deterministic HNSW graph, union of both directions, sorted flat
/// output. Sublinear in the pair space — the only O(n²) work left is
/// what the candidate set itself contains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnBlocker {
    /// Cross-source neighbors retrieved per property.
    pub k: usize,
    /// Graph construction/search knobs.
    pub config: HnswConfig,
}

impl Default for AnnBlocker {
    fn default() -> Self {
        AnnBlocker {
            k: 8,
            config: HnswConfig::default(),
        }
    }
}

impl AnnBlocker {
    /// Build the vector matrix + graph and retrieve candidates.
    /// Cancellation-aware (index build polls per insert, retrieval per
    /// query batch).
    pub fn candidates_sorted(
        &self,
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
        cancel: CancelCheck<'_>,
    ) -> Result<Vec<PropertyPair>, CoreError> {
        let vectors = PropertyVectors::build(dataset, embeddings);
        self.candidates_from_vectors(&vectors, cancel)
    }

    /// Retrieval over a pre-built vector matrix (shared with the bench's
    /// oracle measurements).
    pub fn candidates_from_vectors(
        &self,
        vectors: &PropertyVectors,
        cancel: CancelCheck<'_>,
    ) -> Result<Vec<PropertyPair>, CoreError> {
        let index = HnswIndex::build(vectors, self.config, cancel)?;
        let mut visited = VisitedSet::new(vectors.len());
        let mut pairs = Vec::new();
        for i in 0..vectors.len() {
            if i % 512 == 0 {
                crate::index::poll_cancel(cancel)?;
            }
            for n in index.search_node(vectors, i, self.k, &mut visited) {
                pairs.push(pair_of(&vectors.properties, i, n.id as usize));
            }
        }
        Ok(sort_dedup_pairs(pairs))
    }
}

/// Index-backed LSH blocker: top-k banded-minhash retrieval over name
/// token/shingle sets, union of both directions, sorted flat output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshBlocker {
    /// Cross-source neighbors retrieved per property.
    pub k: usize,
    /// Banding knobs.
    pub config: NameLshConfig,
}

impl Default for LshBlocker {
    fn default() -> Self {
        LshBlocker {
            k: 8,
            config: NameLshConfig::default(),
        }
    }
}

impl LshBlocker {
    /// Fingerprint, bucket, and retrieve candidates. Cancellation-aware.
    pub fn candidates_sorted(
        &self,
        dataset: &Dataset,
        cancel: CancelCheck<'_>,
    ) -> Result<Vec<PropertyPair>, CoreError> {
        let properties = dataset.properties();
        let index = NameLshIndex::build(&properties, self.config, cancel)?;
        let mut visited = VisitedSet::new(properties.len());
        let mut pairs = Vec::new();
        for i in 0..properties.len() {
            if i % 512 == 0 {
                crate::index::poll_cancel(cancel)?;
            }
            for n in index.search_node(i, self.k, &mut visited) {
                pairs.push(pair_of(&properties, i, n.id as usize));
            }
        }
        Ok(sort_dedup_pairs(pairs))
    }
}

/// Which retrieval path feeds the index-backed candidate generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalMode {
    /// HNSW over name-embedding vectors.
    Ann,
    /// Banded minhash over name tokens/shingles.
    Lsh,
    /// Union of both — semantic + lexical coverage, still sublinear.
    Both,
}

/// Index-backed candidate generation: retrieval instead of enumeration.
/// Returns the sorted flat candidate vector.
pub fn retrieval_candidates(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    mode: RetrievalMode,
    ann: &AnnBlocker,
    lsh: &LshBlocker,
    cancel: CancelCheck<'_>,
) -> Result<Vec<PropertyPair>, CoreError> {
    match mode {
        RetrievalMode::Ann => ann.candidates_sorted(dataset, embeddings, cancel),
        RetrievalMode::Lsh => lsh.candidates_sorted(dataset, cancel),
        RetrievalMode::Both => {
            let mut a = ann.candidates_sorted(dataset, embeddings, cancel)?;
            let b = lsh.candidates_sorted(dataset, cancel)?;
            a.extend(b);
            Ok(sort_dedup_pairs(a))
        }
    }
}

/// Union of token and embedding blocking — the recommended configuration
/// (lexical + semantic coverage).
pub fn combined_candidates(
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    token: &TokenBlocker,
    embedding: &EmbeddingBlocker,
) -> BTreeSet<PropertyPair> {
    let mut out = token.candidates(dataset);
    out.extend(embedding.candidates(dataset, embeddings));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train, GloVeConfig};
    use leapme_embedding::vocab::Vocab;

    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 10,
                filler_sentences: 30,
            },
            5,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 10,
                ..GloVeConfig::default()
            },
            5,
        )
        .unwrap()
    }

    #[test]
    fn token_blocking_reduces_space_and_keeps_lexical_matches() {
        let ds = generate(Domain::Tvs, 21);
        let cands = TokenBlocker::default().candidates(&ds);
        let stats = evaluate_blocking(&ds, &cands);
        assert!(stats.reduction_ratio > 0.5, "{stats:?}");
        // Token blocking alone keeps a decent share of the ground truth
        // (Zipf-weighted names make many matches lexical).
        assert!(stats.pair_completeness > 0.5, "{stats:?}");
        // All candidates are cross-source.
        assert!(cands.iter().all(|PropertyPair(a, b)| a.source != b.source));
    }

    #[test]
    fn embedding_blocking_catches_synonyms() {
        let ds = generate(Domain::Tvs, 22);
        let emb = embeddings(Domain::Tvs);
        let token = TokenBlocker::default().candidates(&ds);
        let emb_cands = EmbeddingBlocker { k: 15 }.candidates(&ds, &emb);
        // The embedding blocker must recover ground-truth pairs the token
        // blocker misses (pure synonyms with no shared token).
        let gt = ds.ground_truth_pairs();
        let recovered = gt
            .iter()
            .filter(|p| !token.contains(*p) && emb_cands.contains(*p))
            .count();
        assert!(recovered > 0, "embedding blocker added nothing");
    }

    #[test]
    fn combined_blocking_dominates_parts() {
        let ds = generate(Domain::Headphones, 23);
        let emb = embeddings(Domain::Headphones);
        let token = TokenBlocker::default();
        let knn = EmbeddingBlocker { k: 30 };
        let combined = combined_candidates(&ds, &emb, &token, &knn);
        let t_stats = evaluate_blocking(&ds, &token.candidates(&ds));
        let e_stats = evaluate_blocking(&ds, &knn.candidates(&ds, &emb));
        let c_stats = evaluate_blocking(&ds, &combined);
        // The union dominates both parts and keeps most of the ground
        // truth while pruning most of the space. (The residual misses are
        // heavily noise-mangled names — invisible to tokens and to the
        // deliberately tiny test embeddings alike.)
        assert!(c_stats.pair_completeness >= t_stats.pair_completeness);
        assert!(c_stats.pair_completeness >= e_stats.pair_completeness);
        assert!(
            c_stats.pair_completeness > 0.7,
            "combined completeness too low: {c_stats:?}"
        );
        assert!(c_stats.reduction_ratio > 0.3, "{c_stats:?}");
    }

    #[test]
    fn stop_tokens_are_skipped() {
        // With a tiny max frequency everything is a stop token → no pairs.
        let ds = generate(Domain::Tvs, 24);
        let strict = TokenBlocker {
            max_token_frequency: 0.0,
        };
        // cap.max(1) keeps singleton postings usable; ubiquitous tokens die.
        let loose = TokenBlocker {
            max_token_frequency: 1.0,
        };
        let s = strict.candidates(&ds);
        let l = loose.candidates(&ds);
        assert!(s.len() < l.len());
    }

    #[test]
    fn evaluate_blocking_edge_cases() {
        let ds = generate(Domain::Tvs, 25);
        let empty = BTreeSet::new();
        let stats = evaluate_blocking(&ds, &empty);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.pair_completeness, 0.0);
        assert!((stats.reduction_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ann_candidates_are_sorted_cross_source_and_match_btreeset_eval() {
        let ds = generate(Domain::Tvs, 27);
        let emb = embeddings(Domain::Tvs);
        let flat = AnnBlocker::default()
            .candidates_sorted(&ds, &emb, None)
            .unwrap();
        assert!(flat.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        assert!(flat.iter().all(|PropertyPair(a, b)| a.source != b.source));
        // Flat evaluation agrees with the BTreeSet path on the same set.
        let as_set: BTreeSet<PropertyPair> = flat.iter().cloned().collect();
        assert_eq!(
            evaluate_blocking_sorted(&ds, &flat),
            evaluate_blocking(&ds, &as_set)
        );
    }

    #[test]
    fn lsh_candidates_cover_lexical_matches() {
        let ds = generate(Domain::Tvs, 28);
        let flat = LshBlocker::default().candidates_sorted(&ds, None).unwrap();
        assert!(flat.windows(2).all(|w| w[0] < w[1]));
        let stats = evaluate_blocking_sorted(&ds, &flat);
        // Name-LSH is the lexical path: it must prune hard while keeping
        // a solid share of the (heavily lexical) ground truth.
        assert!(stats.reduction_ratio > 0.5, "{stats:?}");
        assert!(stats.pair_completeness > 0.4, "{stats:?}");
    }

    #[test]
    fn retrieval_union_dominates_parts() {
        let ds = generate(Domain::Headphones, 29);
        let emb = embeddings(Domain::Headphones);
        let ann = AnnBlocker::default();
        let lsh = LshBlocker::default();
        let a = evaluate_blocking_sorted(
            &ds,
            &retrieval_candidates(&ds, &emb, RetrievalMode::Ann, &ann, &lsh, None).unwrap(),
        );
        let l = evaluate_blocking_sorted(
            &ds,
            &retrieval_candidates(&ds, &emb, RetrievalMode::Lsh, &ann, &lsh, None).unwrap(),
        );
        let both = evaluate_blocking_sorted(
            &ds,
            &retrieval_candidates(&ds, &emb, RetrievalMode::Both, &ann, &lsh, None).unwrap(),
        );
        assert!(both.pair_completeness >= a.pair_completeness);
        assert!(both.pair_completeness >= l.pair_completeness);
        assert!(both.reduction_ratio > 0.3, "{both:?}");
    }

    #[test]
    fn cancelled_retrieval_returns_cancelled() {
        let ds = generate(Domain::Tvs, 30);
        let emb = embeddings(Domain::Tvs);
        let cancel = || true;
        assert!(matches!(
            AnnBlocker::default().candidates_sorted(&ds, &emb, Some(&cancel)),
            Err(CoreError::Cancelled)
        ));
        assert!(matches!(
            LshBlocker::default().candidates_sorted(&ds, Some(&cancel)),
            Err(CoreError::Cancelled)
        ));
    }

    #[test]
    fn knn_k_controls_candidate_count() {
        let ds = generate(Domain::Tvs, 26);
        let emb = embeddings(Domain::Tvs);
        let small = EmbeddingBlocker { k: 2 }.candidates(&ds, &emb);
        let large = EmbeddingBlocker { k: 30 }.candidates(&ds, &emb);
        assert!(small.len() < large.len());
    }
}
