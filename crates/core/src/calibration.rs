//! Probability calibration of similarity scores.
//!
//! LEAPME's output doubles as a similarity score consumed by downstream
//! clustering/fusion (paper §IV-D), so it matters whether a score of 0.8
//! really means ≈80% match probability. This module measures calibration
//! with the standard tools — reliability bins, expected calibration error
//! (ECE), and the Brier score — over scored, labeled pairs.

use serde::{Deserialize, Serialize};

/// One reliability bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Inclusive lower bound of the score range.
    pub lo: f32,
    /// Exclusive upper bound (inclusive for the last bin).
    pub hi: f32,
    /// Samples in the bin.
    pub count: usize,
    /// Mean predicted score in the bin.
    pub mean_score: f64,
    /// Empirical positive rate in the bin.
    pub positive_rate: f64,
}

/// Calibration report over scored pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The reliability bins (equal-width over `[0, 1]`).
    pub bins: Vec<ReliabilityBin>,
    /// Expected calibration error: Σ (count/n)·|positive_rate − mean_score|.
    pub ece: f64,
    /// Brier score: mean squared error of the probabilities.
    pub brier: f64,
    /// Total samples.
    pub samples: usize,
}

/// Build a calibration report with `n_bins` equal-width bins.
///
/// Returns `None` for empty input or `n_bins == 0`. Non-finite scores are
/// dropped; scores are clamped to `[0, 1]`.
pub fn calibration_report(scored: &[(f32, bool)], n_bins: usize) -> Option<CalibrationReport> {
    if n_bins == 0 {
        return None;
    }
    let samples: Vec<(f32, bool)> = scored
        .iter()
        .filter(|(s, _)| s.is_finite())
        .map(|&(s, y)| (s.clamp(0.0, 1.0), y))
        .collect();
    if samples.is_empty() {
        return None;
    }

    let mut counts = vec![0usize; n_bins];
    let mut score_sums = vec![0.0f64; n_bins];
    let mut positives = vec![0usize; n_bins];
    for &(s, y) in &samples {
        let mut b = (s as f64 * n_bins as f64) as usize;
        if b >= n_bins {
            b = n_bins - 1; // s == 1.0
        }
        counts[b] += 1;
        score_sums[b] += s as f64;
        if y {
            positives[b] += 1;
        }
    }

    let n = samples.len() as f64;
    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0;
    for b in 0..n_bins {
        let count = counts[b];
        let mean_score = if count > 0 {
            score_sums[b] / count as f64
        } else {
            0.0
        };
        let positive_rate = if count > 0 {
            positives[b] as f64 / count as f64
        } else {
            0.0
        };
        if count > 0 {
            ece += (count as f64 / n) * (positive_rate - mean_score).abs();
        }
        bins.push(ReliabilityBin {
            lo: b as f32 / n_bins as f32,
            hi: (b + 1) as f32 / n_bins as f32,
            count,
            mean_score,
            positive_rate,
        });
    }

    let brier = samples
        .iter()
        .map(|&(s, y)| {
            let target = if y { 1.0 } else { 0.0 };
            (s as f64 - target).powi(2)
        })
        .sum::<f64>()
        / n;

    Some(CalibrationReport {
        bins,
        ece,
        brier,
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_scores() {
        // Score 0.25 with 25% positives, score 0.75 with 75% positives.
        let mut scored = Vec::new();
        for i in 0..100 {
            scored.push((0.25f32, i % 4 == 0));
            scored.push((0.75f32, i % 4 != 0));
        }
        let r = calibration_report(&scored, 4).unwrap();
        assert!(r.ece < 1e-9, "ece {}", r.ece);
        // Brier = mean of p(1-p) style errors: 0.25²·… check value.
        // For (0.25, 25%): 0.25·(0.75)² + 0.75·(0.25)² = 0.1875.
        assert!((r.brier - 0.1875).abs() < 1e-9);
        assert_eq!(r.samples, 200);
    }

    #[test]
    fn overconfident_scores_have_high_ece() {
        // Everything scored 0.99 but only half are positive.
        let scored: Vec<(f32, bool)> = (0..100).map(|i| (0.99, i % 2 == 0)).collect();
        let r = calibration_report(&scored, 10).unwrap();
        assert!(r.ece > 0.4, "ece {}", r.ece);
        assert!(r.brier > 0.2);
    }

    #[test]
    fn bins_cover_unit_interval() {
        let scored = vec![(0.0f32, false), (0.5, true), (1.0, true)];
        let r = calibration_report(&scored, 5).unwrap();
        assert_eq!(r.bins.len(), 5);
        assert_eq!(r.bins[0].lo, 0.0);
        assert_eq!(r.bins[4].hi, 1.0);
        // 1.0 lands in the last bin.
        assert_eq!(r.bins[4].count, 1);
        let total: usize = r.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(calibration_report(&[], 10).is_none());
        assert!(calibration_report(&[(0.5, true)], 0).is_none());
        // NaN-only input collapses to empty.
        assert!(calibration_report(&[(f32::NAN, true)], 10).is_none());
    }

    #[test]
    fn out_of_range_scores_clamped() {
        let r = calibration_report(&[(1.7, true), (-0.3, false)], 2).unwrap();
        assert_eq!(r.samples, 2);
        assert_eq!(r.bins[1].count, 1); // clamped 1.0
        assert_eq!(r.bins[0].count, 1); // clamped 0.0
    }
}
