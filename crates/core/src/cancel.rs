//! Cooperative cancellation and deadlines for long-running pipeline work.
//!
//! A [`CancelToken`] bundles the three ways a LEAPME run can be asked to
//! stop — an in-process [`CancelToken::cancel`] call, an external signal
//! flag (the CLI's SIGINT handler flips a static `AtomicBool`), and a
//! wall-clock deadline (`--timeout-secs`). Work sites never block on it;
//! they poll [`CancelToken::is_cancelled`] between work blocks (feature
//! build blocks, pair-fill chunks, training epochs, scoring batches) and
//! bail out with a `Cancelled` error, giving the caller a chance to
//! checkpoint state before exiting.
//!
//! Substrate crates (`leapme-features`, `leapme-nn`) stay independent of
//! this type: they accept plain `Fn() -> bool` closures, produced here by
//! [`CancelToken::checker`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation token with an optional deadline.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same
/// [`CancelToken::cancel`] call. The token is *cooperative*: it never
/// interrupts anything, it only answers "should we stop?".
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// External stop flag, e.g. flipped by a signal handler.
    external: Option<&'static AtomicBool>,
    deadline: Option<Instant>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("has_external", &self.external.is_some())
            .field("has_deadline", &self.deadline.is_some())
            .finish()
    }
}

impl CancelToken {
    /// A token that only fires when [`Self::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a wall-clock deadline `timeout` from now; the token reports
    /// cancelled once the deadline passes.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Also observe an external flag (e.g. set from a signal handler):
    /// the token reports cancelled while `flag` is `true`.
    pub fn with_flag(mut self, flag: &'static AtomicBool) -> Self {
        self.external = Some(flag);
        self
    }

    /// Request cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether any stop condition holds: explicit cancel, external flag,
    /// or an elapsed deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
            || self.external.is_some_and(|f| f.load(Ordering::SeqCst))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Remaining time before the deadline (`None` when no deadline is
    /// set; zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// A plain-closure view of this token, in the shape the substrate
    /// crates accept (`Option<&(dyn Fn() -> bool + Sync)>`). The closure
    /// clones the token, so it is `'static` apart from the borrow rules
    /// of whatever holds it.
    pub fn checker(&self) -> impl Fn() -> bool + Send + Sync + 'static {
        let token = self.clone();
        move || token.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_visible_to_clones_and_checkers() {
        let t = CancelToken::new();
        let clone = t.clone();
        let check = t.checker();
        assert!(!check());
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(check());
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let t = CancelToken::new().with_timeout(Duration::from_secs(0));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::new().with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn external_flag_cancels() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::new().with_flag(&FLAG);
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::SeqCst);
        assert!(t.is_cancelled());
        FLAG.store(false, Ordering::SeqCst);
        assert!(!t.is_cancelled());
    }
}
