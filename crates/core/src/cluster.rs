//! Property clustering over the similarity graph (paper §VI future work).
//!
//! The paper proposes deriving clusters of equivalent properties from the
//! pairwise match results so all matching properties across sources can
//! be fused. Two standard strategies are provided:
//!
//! * [`connected_components`] — transitive closure of above-threshold
//!   edges: simple, high recall, but one spurious edge merges clusters;
//! * [`star_clustering`] — greedy center-based clustering: pick the node
//!   with the highest aggregate similarity as a center, absorb its
//!   above-threshold neighbors, repeat. More robust to single bad edges.

use crate::simgraph::SimilarityGraph;
use leapme_data::model::{Dataset, PropertyKey};
use std::collections::{BTreeMap, BTreeSet};

/// A partition of properties into clusters (each sorted; singletons kept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Vec<PropertyKey>>,
}

impl Clustering {
    fn from_groups(mut groups: Vec<Vec<PropertyKey>>) -> Self {
        for g in &mut groups {
            g.sort();
        }
        groups.sort();
        Clustering { clusters: groups }
    }

    /// The clusters, each sorted, in deterministic order.
    pub fn clusters(&self) -> &[Vec<PropertyKey>] {
        &self.clusters
    }

    /// Number of clusters (including singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Clusters with at least two members (the actionable ones).
    pub fn non_trivial(&self) -> impl Iterator<Item = &Vec<PropertyKey>> + '_ {
        self.clusters.iter().filter(|c| c.len() > 1)
    }

    /// Cluster index of a property, if present.
    pub fn cluster_of(&self, key: &PropertyKey) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.binary_search(key).is_ok())
    }

    /// Pairwise precision/recall/F1 of the clustering against a dataset's
    /// ground truth, evaluated over cross-source co-clustered pairs.
    pub fn pairwise_metrics(&self, dataset: &Dataset) -> crate::metrics::Metrics {
        use leapme_data::model::PropertyPair;
        let mut predicted: BTreeSet<PropertyPair> = BTreeSet::new();
        for c in &self.clusters {
            for (i, a) in c.iter().enumerate() {
                for b in &c[i + 1..] {
                    if a.source != b.source {
                        predicted.insert(PropertyPair::new(a.clone(), b.clone()));
                    }
                }
            }
        }
        // Restrict ground truth to properties present in the clustering.
        let members: BTreeSet<&PropertyKey> = self.clusters.iter().flatten().collect();
        let actual: BTreeSet<PropertyPair> = dataset
            .ground_truth_pairs()
            .into_iter()
            .filter(|PropertyPair(a, b)| members.contains(a) && members.contains(b))
            .collect();
        crate::metrics::Metrics::from_sets(&predicted, &actual)
    }
}

/// Union–find over property keys.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Connected components of the graph restricted to edges with score ≥
/// `threshold`.
pub fn connected_components(graph: &SimilarityGraph, threshold: f32) -> Clustering {
    let nodes: Vec<PropertyKey> = graph.nodes().into_iter().collect();
    let index: BTreeMap<&PropertyKey, usize> =
        nodes.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let mut dsu = Dsu::new(nodes.len());
    for (pair, score) in graph.iter() {
        if score >= threshold {
            dsu.union(index[&pair.0], index[&pair.1]);
        }
    }
    let mut groups: BTreeMap<usize, Vec<PropertyKey>> = BTreeMap::new();
    for (i, key) in nodes.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(key.clone());
    }
    Clustering::from_groups(groups.into_values().collect())
}

/// Greedy star clustering: repeatedly select the unassigned node with the
/// highest summed similarity over its unassigned above-threshold
/// neighbors, make it a center, and assign those neighbors to it.
pub fn star_clustering(graph: &SimilarityGraph, threshold: f32) -> Clustering {
    let nodes: Vec<PropertyKey> = graph.nodes().into_iter().collect();
    let mut assigned: BTreeSet<PropertyKey> = BTreeSet::new();
    let mut groups: Vec<Vec<PropertyKey>> = Vec::new();

    loop {
        // Pick the best remaining center.
        let mut best: Option<(&PropertyKey, f64)> = None;
        for node in &nodes {
            if assigned.contains(node) {
                continue;
            }
            let weight: f64 = graph
                .neighbors(node, threshold)
                .into_iter()
                .filter(|(n, _)| !assigned.contains(n))
                .map(|(_, s)| s as f64)
                .sum();
            match best {
                Some((_, w)) if w >= weight => {}
                _ => best = Some((node, weight)),
            }
        }
        let Some((center, weight)) = best else { break };
        let mut cluster = vec![center.clone()];
        if weight > 0.0 {
            for (n, _) in graph.neighbors(center, threshold) {
                if !assigned.contains(&n) {
                    cluster.push(n);
                }
            }
        }
        for m in &cluster {
            assigned.insert(m.clone());
        }
        groups.push(cluster);
    }
    Clustering::from_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyPair, SourceId};

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    fn pair(a: u16, an: &str, b: u16, bn: &str) -> PropertyPair {
        PropertyPair::new(key(a, an), key(b, bn))
    }

    fn chain_graph() -> SimilarityGraph {
        // a0 — b1 — c2 chain plus isolated-ish d3 edge below threshold.
        [
            (pair(0, "a", 1, "b"), 0.9f32),
            (pair(1, "b", 2, "c"), 0.8),
            (pair(2, "c", 3, "d"), 0.2),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn components_respect_threshold() {
        let g = chain_graph();
        let c = connected_components(&g, 0.5);
        // {a,b,c} together, {d} alone.
        assert_eq!(c.len(), 2);
        let big = c.clusters().iter().find(|cl| cl.len() == 3).unwrap();
        assert!(big.contains(&key(0, "a")));
        assert!(big.contains(&key(2, "c")));
        assert_eq!(c.cluster_of(&key(3, "d")), c.cluster_of(&key(3, "d")));
        assert_ne!(c.cluster_of(&key(3, "d")), c.cluster_of(&key(0, "a")));
    }

    #[test]
    fn low_threshold_merges_everything() {
        let g = chain_graph();
        let c = connected_components(&g, 0.1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters()[0].len(), 4);
    }

    #[test]
    fn high_threshold_all_singletons() {
        let g = chain_graph();
        let c = connected_components(&g, 0.95);
        assert_eq!(c.len(), 4);
        assert_eq!(c.non_trivial().count(), 0);
    }

    #[test]
    fn star_clustering_splits_weak_chains() {
        // Star: center x1 strongly tied to a0 and b2; chain link from b2 to
        // far c3 is weaker. Star should pick x as a center and keep c out.
        let g: SimilarityGraph = [
            (pair(1, "x", 0, "a"), 0.9f32),
            (pair(1, "x", 2, "b"), 0.9),
            (pair(2, "b", 3, "c"), 0.55),
        ]
        .into_iter()
        .collect();
        let c = star_clustering(&g, 0.5);
        let star = c.clusters().iter().find(|cl| cl.len() == 3).unwrap();
        assert!(star.contains(&key(1, "x")));
        // c ends up in its own cluster: its only neighbor b is taken.
        assert_eq!(c.cluster_of(&key(3, "c")).map(|i| c.clusters()[i].len()), Some(1));
        // Connected components would have merged all four.
        assert_eq!(connected_components(&g, 0.5).len(), 1);
    }

    #[test]
    fn star_clustering_covers_all_nodes() {
        let g = chain_graph();
        let c = star_clustering(&g, 0.5);
        let total: usize = c.clusters().iter().map(Vec::len).sum();
        assert_eq!(total, g.nodes().len());
    }

    #[test]
    fn empty_graph_empty_clustering() {
        let g = SimilarityGraph::new();
        assert!(connected_components(&g, 0.5).is_empty());
        assert!(star_clustering(&g, 0.5).is_empty());
    }

    #[test]
    fn pairwise_metrics_against_dataset() {
        use std::collections::BTreeMap;
        // Dataset: a0/mp and b1/res aligned to same reference; c2/weight different.
        let instances = vec![];
        let mut alignment = BTreeMap::new();
        alignment.insert(key(0, "mp"), "resolution".to_string());
        alignment.insert(key(1, "res"), "resolution".to_string());
        alignment.insert(key(2, "weight"), "weight".to_string());
        let ds = leapme_data::model::Dataset::new(
            "toy",
            vec!["a".into(), "b".into(), "c".into()],
            instances,
            alignment,
        )
        .unwrap();

        // Perfect clustering.
        let g: SimilarityGraph = [
            (pair(0, "mp", 1, "res"), 0.9f32),
            (pair(0, "mp", 2, "weight"), 0.1),
        ]
        .into_iter()
        .collect();
        let c = connected_components(&g, 0.5);
        let m = c.pairwise_metrics(&ds);
        assert_eq!(m.f1, 1.0);

        // Over-merged clustering loses precision.
        let c_all = connected_components(&g, 0.05);
        let m2 = c_all.pairwise_metrics(&ds);
        assert!(m2.precision < 1.0);
        assert_eq!(m2.recall, 1.0);
    }
}
