//! Continual-ingestion hardening: source quarantine, drift detection,
//! and gated champion/challenger refits with automatic rollback.
//!
//! The paper frames LEAPME inside knowledge-graph construction pipelines
//! that grow over time (§I, §VI). [`crate::incremental::integrate_source`]
//! handles one new source; this module turns streaming arrival into a
//! first-class long-running scenario over a
//! [`leapme_data::drift::DriftSchedule`]:
//!
//! * every incoming source passes a **validation gate** ([`GatePolicy`])
//!   — schema and row-stat checks with typed [`QuarantineReason`]s.
//!   Quarantined sources are journaled and skipped; they never touch
//!   resident state.
//! * a **drift detector** ([`FeatureBaseline`]) tracks
//!   population-stability-index divergence over the 29 non-embedding
//!   instance features plus the score histogram. Past
//!   [`DriftPolicy::threshold`] it triggers a refit.
//! * refits are **champion/challenger**: a challenger is trained via
//!   [`crate::pipeline::Leapme::fit_durable`] on the accumulated labels
//!   plus an active-learning batch (the unlabeled pairs nearest the
//!   decision boundary, per the similarity-score framing of paper §VI,
//!   capped by [`ContinualConfig::label_budget`]). The challenger must
//!   beat the champion on a held-out labeled slice or the system
//!   **auto-rolls back** to the champion.
//! * every promote/rollback decision is appended to the
//!   [`crate::journal::RunJournal`]; because the whole driver is
//!   deterministic given `(schedule, config)`, a crashed run re-executes
//!   bit-identically while *honoring* the journaled decisions instead of
//!   re-deciding them — decisions survive the crash, and no decision is
//!   journaled twice.
//!
//! Fault sites `continual.validate` (a fired fault quarantines the
//! source) and `continual.refit` (`nan` sabotages the challenger so the
//! promotion gate must catch it; `io` fails the refit outright) extend
//! the chaos matrix.

use crate::cancel::CancelToken;
use crate::incremental::integrate_source;
use crate::journal::RunJournal;
use crate::metrics::Metrics;
use crate::pipeline::{DurableFitOptions, Leapme, LeapmeConfig, LeapmeModel};
use crate::retry::RetryPolicy;
use crate::sampling;
use crate::simgraph::SimilarityGraph;
use crate::CoreError;
use leapme_data::drift::{DriftSchedule, ScheduledSource};
use leapme_data::model::{Dataset, PropertyKey, PropertyPair, SourceId};
use leapme_embedding::store::EmbeddingStore;
use leapme_features::instance::NON_EMBEDDING_LEN;
use leapme_features::PropertyFeatureStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Why an incoming source was refused by the validation gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The source shipped zero rows.
    EmptySource,
    /// Fewer distinct properties than the gate's minimum.
    SchemaTooSmall {
        /// Distinct properties observed.
        properties: usize,
        /// Configured minimum.
        min: usize,
    },
    /// More distinct properties than the gate's maximum.
    SchemaTooLarge {
        /// Distinct properties observed.
        properties: usize,
        /// Configured maximum.
        max: usize,
    },
    /// More rows than the gate's volume cap (row flood).
    TooManyRows {
        /// Rows observed.
        rows: usize,
        /// Configured cap.
        max: usize,
    },
    /// A single value exceeded the per-value length cap.
    OversizedValue {
        /// Property carrying the value.
        property: String,
        /// Observed byte length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// Mean value length diverged too far from the resident baseline —
    /// the row-stat outlier check.
    ValueLengthOutlier {
        /// Mean value length of the incoming source.
        mean: f64,
        /// Resident baseline mean.
        baseline: f64,
        /// Configured maximum ratio (either direction).
        max_ratio: f64,
    },
    /// The merged dataset failed structural validation.
    Inconsistent {
        /// What the dataset constructor rejected.
        detail: String,
    },
    /// An injected `continual.validate` fault (chaos suite only).
    Injected,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::EmptySource => write!(f, "source shipped zero rows"),
            QuarantineReason::SchemaTooSmall { properties, min } => {
                write!(f, "{properties} properties < gate minimum {min}")
            }
            QuarantineReason::SchemaTooLarge { properties, max } => {
                write!(f, "{properties} properties > gate maximum {max}")
            }
            QuarantineReason::TooManyRows { rows, max } => {
                write!(f, "{rows} rows > gate cap {max}")
            }
            QuarantineReason::OversizedValue { property, len, max } => {
                write!(f, "value of {property:?} is {len} bytes (cap {max})")
            }
            QuarantineReason::ValueLengthOutlier { mean, baseline, max_ratio } => {
                write!(
                    f,
                    "mean value length {mean:.1} vs baseline {baseline:.1} exceeds ratio {max_ratio}"
                )
            }
            QuarantineReason::Inconsistent { detail } => write!(f, "inconsistent rows: {detail}"),
            QuarantineReason::Injected => write!(f, "injected validation fault"),
        }
    }
}

/// Schema/row-stat bounds enforced by the validation gate.
#[derive(Debug, Clone)]
pub struct GatePolicy {
    /// Minimum distinct properties an arriving source must carry.
    pub min_properties: usize,
    /// Maximum distinct properties.
    pub max_properties: usize,
    /// Maximum total rows.
    pub max_rows: usize,
    /// Maximum byte length of any single value.
    pub max_value_len: usize,
    /// Maximum ratio between the source's mean value length and the
    /// resident baseline (checked both directions).
    pub max_len_ratio: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            min_properties: 1,
            max_properties: 4096,
            max_rows: 65_536,
            max_value_len: 4096,
            max_len_ratio: 16.0,
        }
    }
}

/// Row statistics computed by the gate (and used as the next baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowStats {
    /// Distinct property names.
    pub properties: usize,
    /// Total rows.
    pub rows: usize,
    /// Mean value byte length.
    pub mean_value_len: f64,
    /// Longest value byte length.
    pub max_value_len: usize,
}

/// Compute [`RowStats`] over an arrival's rows.
pub fn row_stats(arrival: &ScheduledSource) -> RowStats {
    let mut names = BTreeSet::new();
    let mut total_len = 0usize;
    let mut max_len = 0usize;
    for row in &arrival.rows {
        names.insert(row.property.as_str());
        total_len += row.value.len();
        max_len = max_len.max(row.value.len());
    }
    RowStats {
        properties: names.len(),
        rows: arrival.rows.len(),
        mean_value_len: total_len as f64 / arrival.rows.len().max(1) as f64,
        max_value_len: max_len,
    }
}

/// Fault hook for `continual.validate`: a fired fault makes the gate
/// quarantine the source, as a validator crash-on-parse would.
#[cfg(feature = "faults")]
fn injected_validate_fault() -> Option<QuarantineReason> {
    use leapme_faults::{fires, sites, FaultKind};
    match fires(sites::CONTINUAL_VALIDATE)? {
        FaultKind::Malformed | FaultKind::Io => Some(QuarantineReason::Injected),
        _ => None,
    }
}

#[cfg(not(feature = "faults"))]
fn injected_validate_fault() -> Option<QuarantineReason> {
    None
}

/// What the `continual.refit` fault site injects.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
enum RefitFault {
    /// Train the challenger with a sabotaged config — the promotion gate
    /// must detect the regression and roll back.
    Sabotage,
    /// Fail the refit outright.
    Fail,
}

#[cfg(feature = "faults")]
fn injected_refit_fault() -> Option<RefitFault> {
    use leapme_faults::{fires, sites, FaultKind};
    match fires(sites::CONTINUAL_REFIT)? {
        FaultKind::Nan => Some(RefitFault::Sabotage),
        FaultKind::Io => Some(RefitFault::Fail),
        _ => None,
    }
}

#[cfg(not(feature = "faults"))]
fn injected_refit_fault() -> Option<RefitFault> {
    None
}

/// Run the validation gate over one arrival. `baseline_mean_len` is the
/// resident mean value length the outlier check compares against
/// (`None` skips that check — e.g. for the very first sources).
pub fn validate_arrival(
    policy: &GatePolicy,
    arrival: &ScheduledSource,
    baseline_mean_len: Option<f64>,
) -> Result<RowStats, QuarantineReason> {
    if let Some(reason) = injected_validate_fault() {
        return Err(reason);
    }
    if arrival.rows.is_empty() {
        return Err(QuarantineReason::EmptySource);
    }
    let stats = row_stats(arrival);
    if stats.properties < policy.min_properties {
        return Err(QuarantineReason::SchemaTooSmall {
            properties: stats.properties,
            min: policy.min_properties,
        });
    }
    if stats.properties > policy.max_properties {
        return Err(QuarantineReason::SchemaTooLarge {
            properties: stats.properties,
            max: policy.max_properties,
        });
    }
    if stats.rows > policy.max_rows {
        return Err(QuarantineReason::TooManyRows {
            rows: stats.rows,
            max: policy.max_rows,
        });
    }
    if stats.max_value_len > policy.max_value_len {
        let offender = arrival
            .rows
            .iter()
            .max_by_key(|r| r.value.len())
            .expect("non-empty rows");
        return Err(QuarantineReason::OversizedValue {
            property: offender.property.clone(),
            len: offender.value.len(),
            max: policy.max_value_len,
        });
    }
    if let Some(base) = baseline_mean_len {
        if base > 0.0 && stats.mean_value_len > 0.0 {
            let ratio = (stats.mean_value_len / base).max(base / stats.mean_value_len);
            if ratio > policy.max_len_ratio {
                return Err(QuarantineReason::ValueLengthOutlier {
                    mean: stats.mean_value_len,
                    baseline: base,
                    max_ratio: policy.max_len_ratio,
                });
            }
        }
    }
    Ok(stats)
}

/// Drift-detector tunables.
#[derive(Debug, Clone)]
pub struct DriftPolicy {
    /// Histogram bins per feature (and for the score histogram).
    pub bins: usize,
    /// PSI threshold past which a refit is triggered (0.25 is the
    /// classic "significant shift" cut-off).
    pub threshold: f64,
    /// Minimum epoch sample size before drift is computed at all.
    pub min_samples: usize,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            bins: 10,
            threshold: 0.25,
            min_samples: 8,
        }
    }
}

/// What the drift detector measured for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftStat {
    /// Largest per-feature PSI across the 29 instance features.
    pub features: f64,
    /// PSI of the score histogram.
    pub scores: f64,
    /// Index (0–28) of the most-drifted instance feature.
    pub worst_feature: usize,
}

impl DriftStat {
    /// The statistic the threshold is compared against.
    pub fn max(&self) -> f64 {
        self.features.max(self.scores)
    }
}

/// Per-feature and score histograms fitted on the resident population at
/// champion-fit time; later epochs are compared against it with a
/// population-stability-index divergence.
#[derive(Debug, Clone)]
pub struct FeatureBaseline {
    bins: usize,
    /// Per-feature `(lo, hi)` ranges over the baseline population.
    ranges: Vec<(f32, f32)>,
    /// Per-feature baseline bin probabilities (`bins` entries each).
    feature_probs: Vec<Vec<f64>>,
    /// Baseline score-histogram probabilities over `[0, 1]`.
    score_probs: Vec<f64>,
    /// Baseline mean value length (for the gate's outlier check).
    mean_value_len: f64,
}

/// Laplace-smoothed probability vector from counts.
fn smoothed(counts: &[usize], total: usize) -> Vec<f64> {
    let k = counts.len() as f64;
    counts
        .iter()
        .map(|&c| (c as f64 + 1.0) / (total as f64 + k))
        .collect()
}

/// PSI between two smoothed probability vectors of equal length.
fn psi(p: &[f64], q: &[f64]) -> f64 {
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| (pi - qi) * (pi / qi).ln())
        .sum()
}

/// Bin index of `v` in `bins` equal-width bins over `[lo, hi]`.
fn bin_of(v: f32, lo: f32, hi: f32, bins: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = f64::from((v - lo) / (hi - lo));
    ((t * bins as f64) as usize).min(bins - 1)
}

impl FeatureBaseline {
    /// Fit the baseline over `keys`' instance features in `store` plus
    /// the score population of `graph`.
    pub fn fit(
        store: &PropertyFeatureStore,
        keys: &[PropertyKey],
        graph: &SimilarityGraph,
        dataset: &Dataset,
        policy: &DriftPolicy,
    ) -> FeatureBaseline {
        let bins = policy.bins.max(2);
        let n_feat = NON_EMBEDDING_LEN;
        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n_feat];
        let vectors: Vec<&[f32]> = keys
            .iter()
            .filter_map(|k| store.property_vector(k))
            .collect();
        for v in &vectors {
            for (i, range) in ranges.iter_mut().enumerate() {
                range.0 = range.0.min(v[i]);
                range.1 = range.1.max(v[i]);
            }
        }
        for r in &mut ranges {
            if !r.0.is_finite() || !r.1.is_finite() {
                *r = (0.0, 0.0);
            }
        }

        let mut feature_counts = vec![vec![0usize; bins]; n_feat];
        for v in &vectors {
            for (i, counts) in feature_counts.iter_mut().enumerate() {
                counts[bin_of(v[i], ranges[i].0, ranges[i].1, bins)] += 1;
            }
        }
        let feature_probs = feature_counts
            .iter()
            .map(|c| smoothed(c, vectors.len()))
            .collect();

        let mut score_counts = vec![0usize; bins];
        let mut n_scores = 0usize;
        for (_, s) in graph.iter() {
            score_counts[bin_of(s, 0.0, 1.0, bins)] += 1;
            n_scores += 1;
        }
        let score_probs = smoothed(&score_counts, n_scores);

        let total_len: usize = dataset.instances().iter().map(|i| i.value.len()).sum();
        let mean_value_len = total_len as f64 / dataset.instances().len().max(1) as f64;

        FeatureBaseline {
            bins,
            ranges,
            feature_probs,
            score_probs,
            mean_value_len,
        }
    }

    /// The baseline mean value length (gate outlier input).
    pub fn mean_value_len(&self) -> f64 {
        self.mean_value_len
    }

    /// PSI of an epoch sample (property vectors + pair scores) against
    /// the baseline.
    pub fn drift(&self, vectors: &[Vec<f32>], scores: &[f32]) -> DriftStat {
        let mut worst = 0.0f64;
        let mut worst_feature = 0usize;
        for (i, base) in self.feature_probs.iter().enumerate() {
            let mut counts = vec![0usize; self.bins];
            for v in vectors {
                counts[bin_of(v[i], self.ranges[i].0, self.ranges[i].1, self.bins)] += 1;
            }
            let d = psi(base, &smoothed(&counts, vectors.len()));
            if d > worst {
                worst = d;
                worst_feature = i;
            }
        }
        let mut score_counts = vec![0usize; self.bins];
        for &s in scores {
            score_counts[bin_of(s, 0.0, 1.0, self.bins)] += 1;
        }
        let score_drift = if scores.is_empty() {
            0.0
        } else {
            psi(&self.score_probs, &smoothed(&score_counts, scores.len()))
        };
        DriftStat {
            features: worst,
            scores: score_drift,
            worst_feature,
        }
    }
}

/// Tunables for the whole continual scenario.
#[derive(Debug, Clone)]
pub struct ContinualConfig {
    /// Validation-gate bounds.
    pub gate: GatePolicy,
    /// Drift-detector tunables.
    pub drift: DriftPolicy,
    /// Active-learning label budget per refit: at most this many new
    /// oracle labels, taken from the unlabeled pairs nearest the
    /// decision boundary.
    pub label_budget: usize,
    /// Fraction of base sources used for the initial training split.
    pub train_fraction: f64,
    /// Negatives per positive in the initial training/holdout samples.
    pub negative_ratio: usize,
    /// Model/training configuration for champion and challengers.
    pub model: LeapmeConfig,
    /// A challenger must reach `champion_f1 - promote_margin` on the
    /// holdout to be promoted; anything less auto-rolls back.
    pub promote_margin: f64,
    /// Retry budget for journal appends.
    pub retry: RetryPolicy,
    /// Seed for the split/sampling RNG.
    pub seed: u64,
}

impl Default for ContinualConfig {
    fn default() -> Self {
        ContinualConfig {
            gate: GatePolicy::default(),
            drift: DriftPolicy::default(),
            label_budget: 64,
            train_fraction: 0.7,
            negative_ratio: 2,
            model: LeapmeConfig::default(),
            promote_margin: 0.0,
            retry: RetryPolicy::default(),
            seed: 0x0C01_71A7,
        }
    }
}

/// Per-run knobs that are not part of the scenario's identity.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stop after this epoch completes (simulates a crash for the
    /// recovery tests; `None` runs the whole schedule).
    pub stop_after_epoch: Option<usize>,
    /// Force a refit every N epochs regardless of drift (`None` = only
    /// drift-triggered refits). The verify drill uses this to exercise
    /// the promotion gate deterministically.
    pub force_refit_every: Option<usize>,
    /// Cooperative cancellation checked between arrivals.
    pub cancel: Option<CancelToken>,
}

/// One journal record of the continual driver. A single flat struct
/// (rather than an enum) so every record shares one schema; `event`
/// selects which optional fields are populated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinualEvent {
    /// `"epoch"`, `"quarantine"`, `"refit-start"`, `"promote"`, or
    /// `"rollback"`.
    pub event: String,
    /// Epoch the record belongs to (0 = initial fit).
    pub epoch: usize,
    /// Source name (quarantine records).
    pub source: Option<String>,
    /// Typed quarantine reason (quarantine records).
    pub quarantine: Option<QuarantineReason>,
    /// Feature-PSI drift measured this epoch (epoch records).
    pub drift_features: Option<f64>,
    /// Score-PSI drift measured this epoch (epoch records).
    pub drift_scores: Option<f64>,
    /// F1 over the resident graph vs ground truth (epoch records).
    pub f1: Option<f64>,
    /// Champion holdout F1 (promote/rollback records).
    pub champion_f1: Option<f64>,
    /// Challenger holdout F1 (promote/rollback records).
    pub challenger_f1: Option<f64>,
    /// Model generation after the event (promote records).
    pub generation: Option<u64>,
    /// Free-form detail (rollback error text).
    pub detail: Option<String>,
}

impl ContinualEvent {
    fn bare(event: &str, epoch: usize) -> ContinualEvent {
        ContinualEvent {
            event: event.to_string(),
            epoch,
            source: None,
            quarantine: None,
            drift_features: None,
            drift_scores: None,
            f1: None,
            champion_f1: None,
            challenger_f1: None,
            generation: None,
            detail: None,
        }
    }
}

/// One point on the quality-over-time curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Epoch (0 = the initial fit over the base dataset).
    pub epoch: usize,
    /// Resident sources after the epoch.
    pub sources: usize,
    /// Resident properties after the epoch.
    pub properties: usize,
    /// Precision of graph matches vs ground truth.
    pub precision: f64,
    /// Recall of graph matches vs ground truth.
    pub recall: f64,
    /// F1 of graph matches vs ground truth.
    pub f1: f64,
    /// Feature-PSI drift measured this epoch.
    pub drift_features: f64,
    /// Score-PSI drift measured this epoch.
    pub drift_scores: f64,
    /// Sources quarantined this epoch.
    pub quarantined: usize,
    /// Refit decision this epoch (`"promote"`, `"rollback"`, or `None`).
    pub decision: Option<String>,
    /// Champion generation after the epoch.
    pub generation: u64,
}

/// A quarantined source on the final report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuarantinedSource {
    /// Source name.
    pub source: String,
    /// Epoch it arrived in.
    pub epoch: usize,
    /// Why the gate refused it.
    pub reason: QuarantineReason,
}

/// What a full (or stopped) run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinualReport {
    /// Quality-over-time curve, one point per completed epoch.
    pub points: Vec<QualityPoint>,
    /// Every quarantined source with its typed reason.
    pub quarantined: Vec<QuarantinedSource>,
    /// Challenger promotions.
    pub promotions: usize,
    /// Automatic rollbacks (regressions caught by the holdout gate).
    pub rollbacks: usize,
    /// Oracle labels spent by active learning (excludes the initial
    /// training sample).
    pub labels_used: usize,
    /// F1 after the last completed epoch.
    pub final_f1: f64,
}

/// Evaluate a model's holdout F1: score the labeled slice, threshold,
/// compare.
fn holdout_f1(
    model: &LeapmeModel,
    store: &PropertyFeatureStore,
    holdout: &[(PropertyPair, bool)],
) -> Result<f64, CoreError> {
    let pairs: Vec<PropertyPair> = holdout.iter().map(|(p, _)| p.clone()).collect();
    let scores = model.score_pairs(store, &pairs)?;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for ((_, label), score) in holdout.iter().zip(&scores) {
        let predicted = *score >= model.threshold();
        match (predicted, *label) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    Ok(Metrics::from_counts(tp, fp, fn_).f1)
}

/// Quality of the resident graph against the dataset's ground truth.
fn graph_quality(graph: &SimilarityGraph, dataset: &Dataset, threshold: f32) -> Metrics {
    let predicted = graph.matches(threshold);
    let actual = dataset.ground_truth_pairs();
    Metrics::from_sets(&predicted, &actual)
}

/// The sabotaged challenger config the `continual.refit` `nan` fault
/// trains with: one epoch at a vanishing learning rate leaves the
/// single-unit network at its random initialization — a regression the
/// promotion gate must catch.
fn sabotaged(cfg: &LeapmeConfig) -> LeapmeConfig {
    let mut c = cfg.clone();
    c.hidden = vec![1];
    c.train.schedule = leapme_nn::schedule::LrSchedule::constant(1, 1e-12);
    c.train.validation_fraction = 0.0;
    c
}

/// Replayed decision state for one epoch, reconstructed from the journal.
#[derive(Debug, Clone, PartialEq)]
enum ReplayedDecision {
    Promote,
    Rollback,
}

/// Journal replay index: what already happened in a previous (crashed or
/// completed) run over the same journal.
struct Replay {
    /// Epochs whose `"epoch"` record exists.
    epochs: BTreeSet<usize>,
    /// Quarantine records already journaled, keyed by (epoch, source).
    quarantines: BTreeSet<(usize, String)>,
    /// `refit-start` epochs already journaled.
    refit_starts: BTreeSet<usize>,
    /// Decisions already journaled, by epoch.
    decisions: std::collections::BTreeMap<usize, ReplayedDecision>,
}

impl Replay {
    fn from_journal(journal: Option<&RunJournal>) -> Result<Replay, CoreError> {
        let mut r = Replay {
            epochs: BTreeSet::new(),
            quarantines: BTreeSet::new(),
            refit_starts: BTreeSet::new(),
            decisions: std::collections::BTreeMap::new(),
        };
        let Some(journal) = journal else {
            return Ok(r);
        };
        for ev in journal.replayed::<ContinualEvent>()? {
            match ev.event.as_str() {
                "epoch" => {
                    r.epochs.insert(ev.epoch);
                }
                "quarantine" => {
                    if let Some(src) = ev.source {
                        r.quarantines.insert((ev.epoch, src));
                    }
                }
                "refit-start" => {
                    r.refit_starts.insert(ev.epoch);
                }
                "promote" => {
                    r.decisions.insert(ev.epoch, ReplayedDecision::Promote);
                }
                "rollback" => {
                    r.decisions.insert(ev.epoch, ReplayedDecision::Rollback);
                }
                _ => {}
            }
        }
        Ok(r)
    }
}

/// Resident state the driver evolves across epochs.
struct ResidentState {
    dataset: Dataset,
    store: PropertyFeatureStore,
    graph: SimilarityGraph,
    champion: LeapmeModel,
    baseline: FeatureBaseline,
    generation: u64,
}

/// Append `event` unless the replay already contains it.
fn journal_once(
    journal: Option<&RunJournal>,
    retry: &RetryPolicy,
    already: bool,
    event: &ContinualEvent,
) -> Result<(), CoreError> {
    if already {
        return Ok(());
    }
    if let Some(j) = journal {
        j.append_retrying(event, retry)?;
    }
    Ok(())
}

/// Drive the full continual scenario over `schedule`.
///
/// Deterministic given `(schedule, embeddings, cfg)`: re-running after a
/// crash with the same journal reproduces the same state while honoring
/// every decision already journaled (promotes are re-applied, rollbacks
/// skip the challenger entirely) and never journaling a record twice.
pub fn run_schedule(
    schedule: &DriftSchedule,
    embeddings: &EmbeddingStore,
    cfg: &ContinualConfig,
    journal: Option<&RunJournal>,
    opts: &RunOptions,
) -> Result<ContinualReport, CoreError> {
    let replay = Replay::from_journal(journal)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ---- epoch 0: initial fit over the base dataset ----
    let n_sources = schedule.base.sources().len();
    let split = sampling::split_sources(n_sources, cfg.train_fraction, &mut rng)?;
    let mut labeled =
        sampling::training_pairs(&schedule.base, &split.train, cfg.negative_ratio, &mut rng);
    // The held-out labeled slice every challenger is judged on; fixed
    // for the whole run so champion/challenger comparisons are stable.
    let holdout =
        sampling::test_examples(&schedule.base, &split.train, cfg.negative_ratio, &mut rng);
    if holdout.is_empty() {
        return Err(CoreError::InvalidSplit(
            "base dataset leaves no held-out labeled slice".to_string(),
        ));
    }

    let store = PropertyFeatureStore::build(&schedule.base, embeddings);
    let champion = Leapme::fit_durable(&store, &labeled, &cfg.model, &DurableFitOptions::default())?;
    let all_pairs = sampling::test_pairs(&schedule.base, &[]);
    let graph = champion.predict_graph(&store, &all_pairs)?;
    let keys = schedule.base.properties();
    let baseline = FeatureBaseline::fit(&store, &keys, &graph, &schedule.base, &cfg.drift);

    let mut state = ResidentState {
        dataset: schedule.base.clone(),
        store,
        graph,
        champion,
        baseline,
        generation: 0,
    };

    let mut report = ContinualReport {
        points: Vec::new(),
        quarantined: Vec::new(),
        promotions: 0,
        rollbacks: 0,
        labels_used: 0,
        final_f1: 0.0,
    };

    let q0 = graph_quality(&state.graph, &state.dataset, state.champion.threshold());
    journal_once(
        journal,
        &cfg.retry,
        replay.epochs.contains(&0),
        &ContinualEvent {
            f1: Some(q0.f1),
            drift_features: Some(0.0),
            drift_scores: Some(0.0),
            generation: Some(0),
            ..ContinualEvent::bare("epoch", 0)
        },
    )?;
    report.points.push(QualityPoint {
        epoch: 0,
        sources: state.dataset.sources().len(),
        properties: state.dataset.properties().len(),
        precision: q0.precision,
        recall: q0.recall,
        f1: q0.f1,
        drift_features: 0.0,
        drift_scores: 0.0,
        quarantined: 0,
        decision: None,
        generation: 0,
    });

    let last_epoch = schedule.arrivals.iter().map(|a| a.epoch).max().unwrap_or(0);

    // ---- arrival epochs ----
    for epoch in 1..=last_epoch {
        if let Some(token) = &opts.cancel {
            if token.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
        }
        let mut epoch_quarantined = 0usize;
        let mut epoch_vectors: Vec<Vec<f32>> = Vec::new();
        let mut epoch_scores: Vec<f32> = Vec::new();

        for arrival in schedule.arrivals.iter().filter(|a| a.epoch == epoch) {
            let verdict = validate_arrival(
                &cfg.gate,
                arrival,
                Some(state.baseline.mean_value_len()),
            );
            let reason = match verdict {
                Ok(_) => match integrate_arrival(&mut state, arrival, embeddings) {
                    Ok((vectors, scores)) => {
                        epoch_vectors.extend(vectors);
                        epoch_scores.extend(scores);
                        None
                    }
                    Err(IntegrateFailure::Quarantine(reason)) => Some(reason),
                    Err(IntegrateFailure::Fatal(e)) => return Err(e),
                },
                Err(reason) => Some(reason),
            };
            if let Some(reason) = reason {
                epoch_quarantined += 1;
                journal_once(
                    journal,
                    &cfg.retry,
                    replay
                        .quarantines
                        .contains(&(epoch, arrival.name.clone())),
                    &ContinualEvent {
                        source: Some(arrival.name.clone()),
                        quarantine: Some(reason.clone()),
                        ..ContinualEvent::bare("quarantine", epoch)
                    },
                )?;
                report.quarantined.push(QuarantinedSource {
                    source: arrival.name.clone(),
                    epoch,
                    reason,
                });
            }
        }

        // ---- drift detection over this epoch's accepted population ----
        let drift = if epoch_vectors.len() >= cfg.drift.min_samples {
            state.baseline.drift(&epoch_vectors, &epoch_scores)
        } else {
            DriftStat {
                features: 0.0,
                scores: 0.0,
                worst_feature: 0,
            }
        };

        // ---- gated refit ----
        let forced = opts
            .force_refit_every
            .is_some_and(|n| n > 0 && epoch.is_multiple_of(n));
        let triggered = drift.max() > cfg.drift.threshold || forced;
        let mut decision: Option<String> = None;
        if triggered {
            decision = Some(refit_epoch(
                &mut state,
                &holdout,
                &mut labeled,
                &mut report,
                cfg,
                journal,
                &replay,
                epoch,
            )?);
        }

        let q = graph_quality(&state.graph, &state.dataset, state.champion.threshold());
        journal_once(
            journal,
            &cfg.retry,
            replay.epochs.contains(&epoch),
            &ContinualEvent {
                f1: Some(q.f1),
                drift_features: Some(drift.features),
                drift_scores: Some(drift.scores),
                generation: Some(state.generation),
                ..ContinualEvent::bare("epoch", epoch)
            },
        )?;
        report.points.push(QualityPoint {
            epoch,
            sources: state.dataset.sources().len(),
            properties: state.dataset.properties().len(),
            precision: q.precision,
            recall: q.recall,
            f1: q.f1,
            drift_features: drift.features,
            drift_scores: drift.scores,
            quarantined: epoch_quarantined,
            decision,
            generation: state.generation,
        });
        report.final_f1 = q.f1;

        if opts.stop_after_epoch == Some(epoch) {
            break;
        }
    }
    if report.final_f1 == 0.0 {
        report.final_f1 = report.points.last().map_or(0.0, |p| p.f1);
    }
    Ok(report)
}

/// Why integrating a validated arrival still failed.
enum IntegrateFailure {
    /// The merge itself was structurally invalid — gate-level refusal.
    Quarantine(QuarantineReason),
    /// A genuine pipeline error.
    Fatal(CoreError),
}

/// Merge one validated arrival into the resident state. Returns the new
/// source's property vectors and integration scores (the drift sample).
fn integrate_arrival(
    state: &mut ResidentState,
    arrival: &ScheduledSource,
    embeddings: &EmbeddingStore,
) -> Result<(Vec<Vec<f32>>, Vec<f32>), IntegrateFailure> {
    let sid = SourceId(state.dataset.sources().len() as u16);
    let mut sources = state.dataset.sources().to_vec();
    sources.push(arrival.name.clone());
    let mut instances = state.dataset.instances().to_vec();
    instances.extend(arrival.instances(sid));
    let mut alignment = state.dataset.alignment().clone();
    for (prop, reference) in &arrival.alignment {
        alignment.insert(PropertyKey::new(sid, prop.clone()), reference.clone());
    }
    let merged = Dataset::new(
        state.dataset.name().to_string(),
        sources,
        instances,
        alignment,
    )
    .map_err(|e| {
        IntegrateFailure::Quarantine(QuarantineReason::Inconsistent {
            detail: e.to_string(),
        })
    })?;

    let store = PropertyFeatureStore::build(&merged, embeddings);
    let mut graph = state.graph.clone();
    let outcome = match integrate_source(&state.champion, &store, &merged, &mut graph, sid) {
        Ok(o) => o,
        Err(CoreError::EmptySource(id)) => {
            // The gate rejects empty sources before this point; an
            // arrival whose rows all collapse to nothing still must not
            // poison resident state.
            let _ = id;
            return Err(IntegrateFailure::Quarantine(QuarantineReason::EmptySource));
        }
        Err(e) => return Err(IntegrateFailure::Fatal(e)),
    };

    // Drift sample: the new source's property vectors + the scores its
    // integration produced.
    let vectors: Vec<Vec<f32>> = merged
        .properties()
        .into_iter()
        .filter(|p| p.source == sid)
        .filter_map(|p| store.property_vector(&p).map(|v| v.to_vec()))
        .collect();
    let scores: Vec<f32> = {
        let before = &state.graph;
        graph
            .iter()
            .filter(|(pair, _)| before.score(pair).is_none())
            .map(|(_, s)| s)
            .collect()
    };
    let _ = outcome;

    state.dataset = merged;
    state.store = store;
    state.graph = graph;
    Ok((vectors, scores))
}

/// Run one champion/challenger refit for `epoch`, honoring any decision
/// already journaled. Returns `"promote"` or `"rollback"`.
#[allow(clippy::too_many_arguments)]
fn refit_epoch(
    state: &mut ResidentState,
    holdout: &[(PropertyPair, bool)],
    labeled: &mut Vec<(PropertyPair, bool)>,
    report: &mut ContinualReport,
    cfg: &ContinualConfig,
    journal: Option<&RunJournal>,
    replay: &Replay,
    epoch: usize,
) -> Result<String, CoreError> {
    journal_once(
        journal,
        &cfg.retry,
        replay.refit_starts.contains(&epoch),
        &ContinualEvent::bare("refit-start", epoch),
    )?;

    // Active learning: spend the label budget on the unlabeled pairs
    // nearest the decision boundary (paper §VI's similarity-score
    // framing — the scores the model is least sure about).
    let threshold = state.champion.threshold();
    let known: BTreeSet<&PropertyPair> = labeled.iter().map(|(p, _)| p).collect();
    let mut candidates: Vec<(PropertyPair, f32)> = state
        .graph
        .iter()
        .filter(|(pair, _)| !known.contains(pair))
        .map(|(pair, score)| (pair.clone(), (score - threshold).abs()))
        .collect();
    candidates.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    candidates.truncate(cfg.label_budget);
    report.labels_used += candidates.len();
    for (pair, _) in candidates {
        let is_match = state.dataset.matches(&pair.0, &pair.1);
        labeled.push((pair, is_match));
    }

    let replayed = replay.decisions.get(&epoch);

    // A journaled rollback means the challenger was already judged and
    // lost — don't even train it again.
    if replayed == Some(&ReplayedDecision::Rollback) {
        report.rollbacks += 1;
        return Ok("rollback".to_string());
    }

    let (challenger_cfg, refit_failed) = match injected_refit_fault() {
        Some(RefitFault::Sabotage) => (sabotaged(&cfg.model), false),
        Some(RefitFault::Fail) => (cfg.model.clone(), true),
        None => (cfg.model.clone(), false),
    };

    let challenger = if refit_failed {
        Err(CoreError::Nn(leapme_nn::NnError::NonFiniteLoss {
            epoch: 0,
            retries: 0,
        }))
    } else {
        Leapme::fit_durable(
            &state.store,
            labeled,
            &challenger_cfg,
            &DurableFitOptions::default(),
        )
    };

    let decision = match challenger {
        Err(_e) if replayed.is_none() => {
            // Refit failure auto-rolls back: the champion keeps serving.
            journal_once(
                journal,
                &cfg.retry,
                false,
                &ContinualEvent {
                    detail: Some("refit failed; champion retained".to_string()),
                    ..ContinualEvent::bare("rollback", epoch)
                },
            )?;
            report.rollbacks += 1;
            "rollback".to_string()
        }
        Err(e) => return Err(e),
        Ok(challenger) => {
            let champ_f1 = holdout_f1(&state.champion, &state.store, holdout)?;
            let chal_f1 = holdout_f1(&challenger, &state.store, holdout)?;
            let promote = match replayed {
                Some(ReplayedDecision::Promote) => true,
                Some(ReplayedDecision::Rollback) => false,
                None => chal_f1 + cfg.promote_margin >= champ_f1,
            };
            if promote {
                state.champion = challenger;
                state.generation += 1;
                // The graph's scores are the old champion's: re-predict
                // so served quality reflects the promoted model, and
                // re-anchor the drift baseline on the new population.
                let all_pairs = sampling::test_pairs(&state.dataset, &[]);
                state.graph = state.champion.predict_graph(&state.store, &all_pairs)?;
                let keys = state.dataset.properties();
                state.baseline = FeatureBaseline::fit(
                    &state.store,
                    &keys,
                    &state.graph,
                    &state.dataset,
                    &cfg.drift,
                );
                journal_once(
                    journal,
                    &cfg.retry,
                    replayed.is_some(),
                    &ContinualEvent {
                        champion_f1: Some(champ_f1),
                        challenger_f1: Some(chal_f1),
                        generation: Some(state.generation),
                        ..ContinualEvent::bare("promote", epoch)
                    },
                )?;
                report.promotions += 1;
                "promote".to_string()
            } else {
                journal_once(
                    journal,
                    &cfg.retry,
                    replayed.is_some(),
                    &ContinualEvent {
                        champion_f1: Some(champ_f1),
                        challenger_f1: Some(chal_f1),
                        detail: Some("challenger regressed on holdout".to_string()),
                        ..ContinualEvent::bare("rollback", epoch)
                    },
                )?;
                report.rollbacks += 1;
                "rollback".to_string()
            }
        }
    };
    Ok(decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::drift::{generate_drift_schedule, DriftConfig};
    use leapme_data::stress::{stress_vocabulary, StressConfig};
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;

    /// Hash-derived embeddings over the stress vocabulary (the same
    /// construction as the facade's `stress_embedding_store`, local so
    /// `leapme-core` needs no circular dev-dependency).
    fn hash_embeddings(cfg: &StressConfig, dim: usize, seed: u64) -> EmbeddingStore {
        fn mix(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let mut store = EmbeddingStore::new(dim);
        for word in stress_vocabulary(cfg) {
            let mut h = seed;
            for b in word.as_bytes() {
                h = mix(h ^ u64::from(*b));
            }
            let v: Vec<f32> = (0..dim)
                .map(|d| {
                    let r = mix(h ^ (d as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    ((r >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                })
                .collect();
            store.insert(&word, v).unwrap();
        }
        store
    }

    fn small_drift_config() -> DriftConfig {
        DriftConfig {
            base: StressConfig {
                properties: 120,
                properties_per_source: 20,
                cluster_size: 4,
                instances_per_property: 1,
                seed: 17,
            },
            epochs: 2,
            sources_per_epoch: 1,
            naming_drift: 0.3,
            value_drift: 0.4,
            corrupt_every: 0,
        }
    }

    fn small_continual_config() -> ContinualConfig {
        ContinualConfig {
            label_budget: 24,
            model: LeapmeConfig {
                train: TrainConfig {
                    schedule: LrSchedule::new(vec![(16, 1e-3), (4, 1e-4)]),
                    ..TrainConfig::default()
                },
                hidden: vec![24],
                ..LeapmeConfig::default()
            },
            ..ContinualConfig::default()
        }
    }

    #[test]
    fn gate_quarantines_typed_defects() {
        let policy = GatePolicy {
            max_rows: 100,
            max_value_len: 64,
            ..GatePolicy::default()
        };
        let mut c = small_drift_config();
        c.corrupt_every = 1; // every arrival is defective, rotating kinds
        let s = generate_drift_schedule(&c);
        let reasons: Vec<QuarantineReason> = s
            .arrivals
            .iter()
            .map(|a| validate_arrival(&policy, a, None).unwrap_err())
            .collect();
        assert_eq!(reasons[0], QuarantineReason::EmptySource);
        assert!(matches!(reasons[1], QuarantineReason::OversizedValue { .. }));
    }

    #[test]
    fn gate_accepts_clean_arrivals() {
        let s = generate_drift_schedule(&small_drift_config());
        for a in &s.arrivals {
            let stats = validate_arrival(&GatePolicy::default(), a, Some(10.0)).unwrap();
            assert!(stats.properties > 0);
            assert!(stats.rows >= stats.properties);
        }
    }

    #[test]
    fn psi_is_zero_on_the_baseline_population_and_positive_off_it() {
        let policy = DriftPolicy::default();
        let cfg = small_drift_config();
        let schedule = generate_drift_schedule(&cfg);
        let embeddings = hash_embeddings(&cfg.base, 12, 5);
        let store = PropertyFeatureStore::build(&schedule.base, &embeddings);
        let keys = schedule.base.properties();
        let mut graph = SimilarityGraph::new();
        let props = schedule.base.properties();
        graph.add(PropertyPair::new(props[0].clone(), props[21].clone()), 0.8);
        let baseline = FeatureBaseline::fit(&store, &keys, &graph, &schedule.base, &policy);

        let vectors: Vec<Vec<f32>> = keys
            .iter()
            .filter_map(|k| store.property_vector(k).map(|v| v.to_vec()))
            .collect();
        let self_drift = baseline.drift(&vectors, &[0.8]);
        assert!(
            self_drift.features < 0.05,
            "self-PSI should be ~0, got {}",
            self_drift.features
        );

        // A shifted population (every feature pushed to its max) drifts.
        let shifted: Vec<Vec<f32>> = vectors
            .iter()
            .map(|v| v.iter().map(|x| x * 100.0 + 50.0).collect())
            .collect();
        let off_drift = baseline.drift(&shifted, &[0.01]);
        assert!(
            off_drift.features > policy.threshold,
            "shifted population should exceed the threshold, got {}",
            off_drift.features
        );
    }

    #[test]
    fn schedule_runs_end_to_end_and_reports_quality_over_time() {
        let dcfg = small_drift_config();
        let schedule = generate_drift_schedule(&dcfg);
        let embeddings = hash_embeddings(&dcfg.base, 12, 5);
        let cfg = small_continual_config();
        let report =
            run_schedule(&schedule, &embeddings, &cfg, None, &RunOptions::default()).unwrap();
        assert_eq!(report.points.len(), 1 + dcfg.epochs);
        assert_eq!(report.points[0].epoch, 0);
        // Sources grow monotonically with accepted arrivals.
        assert!(report.points.last().unwrap().sources > report.points[0].sources);
        // The initial fit must produce a usable matcher.
        assert!(
            report.points[0].f1 > 0.5,
            "epoch-0 F1 too low: {}",
            report.points[0].f1
        );
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn forced_refit_promotes_or_rolls_back_and_journals_the_decision() {
        let dcfg = small_drift_config();
        let schedule = generate_drift_schedule(&dcfg);
        let embeddings = hash_embeddings(&dcfg.base, 12, 5);
        let cfg = small_continual_config();
        let dir = std::env::temp_dir().join(format!(
            "leapme-continual-forced-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let _ = std::fs::remove_file(&path);
        let journal = RunJournal::open(&path).unwrap();
        let opts = RunOptions {
            force_refit_every: Some(1),
            ..RunOptions::default()
        };
        let report = run_schedule(&schedule, &embeddings, &cfg, Some(&journal), &opts).unwrap();
        assert_eq!(report.promotions + report.rollbacks, dcfg.epochs);
        assert!(report.labels_used > 0, "active learning spent no labels");
        let events: Vec<ContinualEvent> =
            RunJournal::open(&path).unwrap().replayed().unwrap();
        let decisions = events
            .iter()
            .filter(|e| e.event == "promote" || e.event == "rollback")
            .count();
        assert_eq!(decisions, dcfg.epochs);
        let starts = events.iter().filter(|e| e.event == "refit-start").count();
        assert_eq!(starts, dcfg.epochs);
    }

    #[test]
    fn interrupted_run_resumes_from_the_journal_without_duplicating_decisions() {
        let dcfg = small_drift_config();
        let schedule = generate_drift_schedule(&dcfg);
        let embeddings = hash_embeddings(&dcfg.base, 12, 5);
        let cfg = small_continual_config();
        let dir = std::env::temp_dir().join(format!(
            "leapme-continual-resume-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let _ = std::fs::remove_file(&path);

        // Run 1 "crashes" after epoch 1.
        let journal = RunJournal::open(&path).unwrap();
        let stopped = run_schedule(
            &schedule,
            &embeddings,
            &cfg,
            Some(&journal),
            &RunOptions {
                stop_after_epoch: Some(1),
                force_refit_every: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(stopped.points.len(), 2);
        drop(journal);

        // Run 2 resumes over the same journal and completes.
        let journal = RunJournal::open(&path).unwrap();
        let resumed = run_schedule(
            &schedule,
            &embeddings,
            &cfg,
            Some(&journal),
            &RunOptions {
                force_refit_every: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        drop(journal);

        // An uninterrupted reference run (no journal) must agree bitwise
        // on the quality curve — deterministic recovery.
        let reference = run_schedule(
            &schedule,
            &embeddings,
            &cfg,
            None,
            &RunOptions {
                force_refit_every: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.points.len(), reference.points.len());
        for (a, b) in resumed.points.iter().zip(&reference.points) {
            assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "epoch {} diverged", a.epoch);
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.generation, b.generation);
        }

        // Epoch-1 decision journaled exactly once across both runs.
        let events: Vec<ContinualEvent> =
            RunJournal::open(&path).unwrap().replayed().unwrap();
        let epoch1_decisions = events
            .iter()
            .filter(|e| (e.event == "promote" || e.event == "rollback") && e.epoch == 1)
            .count();
        assert_eq!(epoch1_decisions, 1);
    }

    #[test]
    fn quarantined_sources_never_touch_resident_state() {
        let mut dcfg = small_drift_config();
        dcfg.corrupt_every = 2; // arrival 2 (epoch 2) is empty
        let schedule = generate_drift_schedule(&dcfg);
        let embeddings = hash_embeddings(&dcfg.base, 12, 5);
        let cfg = small_continual_config();
        let report =
            run_schedule(&schedule, &embeddings, &cfg, None, &RunOptions::default()).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].reason, QuarantineReason::EmptySource);
        // The quarantined epoch added no source.
        let p1 = &report.points[1];
        let p2 = &report.points[2];
        assert_eq!(p2.sources, p1.sources, "quarantined source was integrated");
        assert_eq!(p2.quarantined, 1);
    }

    #[test]
    fn event_roundtrips_through_json() {
        let ev = ContinualEvent {
            source: Some("s".to_string()),
            quarantine: Some(QuarantineReason::OversizedValue {
                property: "p".to_string(),
                len: 9000,
                max: 4096,
            }),
            ..ContinualEvent::bare("quarantine", 3)
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: ContinualEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.event, "quarantine");
        assert_eq!(back.epoch, 3);
        assert_eq!(back.quarantine, ev.quarantine);
    }
}
