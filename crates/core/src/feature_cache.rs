//! Persisted property-feature cache.
//!
//! Building the [`PropertyFeatureStore`] is pure recomputation: the same
//! dataset and embeddings always produce the same vectors (bitwise — see
//! the thread-sweep suites in `leapme-features`). Repeated runs — bench
//! `--repeats`, `match --model`, durable reruns — therefore waste the
//! whole featurize stage. This module persists the store in the PR 4
//! checkpoint container format (`KIND_FEATURE_CACHE`, CRC-64 trailer,
//! atomic write) together with a fingerprint of everything the vectors
//! depend on: the dataset's full instance stream, the embedding-store
//! contents (including the fuzzy-OOV flag, which changes lookups), and a
//! feature-layout version.
//!
//! A cache is only ever used when every fingerprint component matches;
//! any mismatch, corruption, or format skew surfaces as a typed error
//! and [`load_or_build`] falls back to a clean rebuild (then rewrites the
//! cache). The store caches *full* property vectors — feature
//! configurations are masks applied downstream, so one cache serves all
//! nine paper configurations.

use crate::CoreError;
use leapme_data::model::{Dataset, PropertyKey, SourceId};
use leapme_embedding::store::EmbeddingStore;
use leapme_features::{CancelCheck, PropertyFeatureStore, SanitizeStats};
use leapme_nn::checkpoint::{
    self, crc64, CheckpointError, Decoder, Encoder, KIND_FEATURE_CACHE,
};
use leapme_nn::container2::{self, Opened, V2Container, V2Writer};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Version of the *feature layout* a cache stores. Bump whenever the
/// meaning, order, or count of property-vector components changes —
/// stale caches from older layouts are then rejected by fingerprint
/// rather than silently decoded into wrong columns.
pub const FEATURE_LAYOUT_VERSION: u32 = 1;

/// Everything a cached feature store depends on, reduced to checkable
/// integers. Recorded at save time, recomputed and compared at load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureFingerprint {
    /// CRC-64 over the dataset identity: name, source list, and the full
    /// instance stream in stored (deterministic) order.
    pub dataset: u64,
    /// Order-independent digest of the embedding store: XOR of per-entry
    /// CRCs, folded with the dimension and the fuzzy-OOV flag.
    pub embeddings: u64,
    /// [`FEATURE_LAYOUT_VERSION`] at write time.
    pub layout: u32,
    /// Embedding dimensionality (also implied by `embeddings`, but kept
    /// separate so a dimension skew yields a precise error).
    pub dim: u64,
}

/// Fingerprint of `dataset`'s feature-relevant content.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut e = Encoder::new();
    e.u64(dataset.name().len() as u64);
    e.bytes(dataset.name().as_bytes());
    e.u64(dataset.sources().len() as u64);
    for s in dataset.sources() {
        e.u64(s.len() as u64);
        e.bytes(s.as_bytes());
    }
    let instances = dataset.instances();
    e.u64(instances.len() as u64);
    for inst in instances {
        e.u32(u32::from(inst.source.0));
        for field in [&inst.property, &inst.entity, &inst.value] {
            e.u64(field.len() as u64);
            e.bytes(field.as_bytes());
        }
    }
    crc64(&e.finish())
}

/// Fingerprint of `embeddings`' content.
///
/// The store is hash-map-backed with no stable iteration order, so
/// per-entry CRCs are combined with XOR (order-independent), then folded
/// with the dimension and the fuzzy-OOV flag — both of which change
/// every lookup result.
pub fn embeddings_fingerprint(embeddings: &EmbeddingStore) -> u64 {
    let mut acc = 0u64;
    for (word, vector) in embeddings.iter() {
        let mut e = Encoder::new();
        e.u64(word.len() as u64);
        e.bytes(word.as_bytes());
        e.f32s(vector);
        acc ^= crc64(&e.finish());
    }
    let mut tail = Encoder::new();
    tail.u64(acc);
    tail.u64(embeddings.dim() as u64);
    tail.u8(u8::from(embeddings.fuzzy_oov()));
    crc64(&tail.finish())
}

/// The full fingerprint for a `(dataset, embeddings)` input pair.
pub fn fingerprint(dataset: &Dataset, embeddings: &EmbeddingStore) -> FeatureFingerprint {
    FeatureFingerprint {
        dataset: dataset_fingerprint(dataset),
        embeddings: embeddings_fingerprint(embeddings),
        layout: FEATURE_LAYOUT_VERSION,
        dim: embeddings.dim() as u64,
    }
}

/// Which fingerprint component a stale cache failed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mismatch {
    /// The cache was written by a different feature layout.
    Layout {
        /// Layout version recorded in the file.
        found: u32,
        /// Layout version this build produces.
        expected: u32,
    },
    /// The cache was built at a different embedding dimensionality.
    Dim {
        /// Dimension recorded in the file.
        found: u64,
        /// Dimension of the current embeddings.
        expected: u64,
    },
    /// The dataset changed since the cache was written.
    Dataset,
    /// The embedding store changed since the cache was written.
    Embeddings,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::Layout { found, expected } => write!(
                f,
                "feature layout version {found} (this build produces {expected})"
            ),
            Mismatch::Dim { found, expected } => {
                write!(f, "embedding dimension {found} (current is {expected})")
            }
            Mismatch::Dataset => write!(f, "dataset contents changed"),
            Mismatch::Embeddings => write!(f, "embedding store contents changed"),
        }
    }
}

/// Errors from the cache load path. A [`FeatureCacheError::Stale`] cache
/// is healthy on disk but built from different inputs; everything else
/// is a container-level failure ([`CheckpointError`] keeps the precise
/// corruption mode).
#[derive(Debug)]
pub enum FeatureCacheError {
    /// The container failed to read, parse, or checksum.
    Checkpoint(CheckpointError),
    /// The container is valid but fingerprints do not match the current
    /// inputs.
    Stale(Mismatch),
}

impl std::fmt::Display for FeatureCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureCacheError::Checkpoint(e) => write!(f, "{e}"),
            FeatureCacheError::Stale(m) => write!(f, "stale feature cache: {m}"),
        }
    }
}

impl std::error::Error for FeatureCacheError {}

impl From<CheckpointError> for FeatureCacheError {
    fn from(e: CheckpointError) -> Self {
        FeatureCacheError::Checkpoint(e)
    }
}

/// How [`load_or_build`] obtained its store — surfaced in CLI output so
/// operators (and the verify.sh cache drill) can see cache behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache path configured; the store was built directly.
    Disabled,
    /// The cache matched and was loaded; featurization was skipped.
    Hit,
    /// The cache was absent, stale, or damaged; the store was rebuilt
    /// and the cache rewritten. The string says why.
    Rebuilt(String),
}

impl CacheStatus {
    /// One-line human-readable description for CLI output.
    pub fn describe(&self, properties: usize) -> String {
        match self {
            CacheStatus::Disabled => String::new(),
            CacheStatus::Hit => {
                format!("feature cache hit: loaded {properties} property vectors\n")
            }
            CacheStatus::Rebuilt(reason) => {
                format!("feature cache rebuilt ({reason}): stored {properties} property vectors\n")
            }
        }
    }
}

/// Persist `store` to `path` under `fp`, atomically, in the v2 section
/// container: a `meta` section (fingerprint + sanitize stats + count),
/// a `keys` section (sorted property keys), and a `vectors` section —
/// one contiguous f32 slab, row per property in key order — that loads
/// back as a zero-copy view.
pub fn save(
    path: &Path,
    store: &PropertyFeatureStore,
    fp: &FeatureFingerprint,
) -> Result<(), CheckpointError> {
    // Sort keys so the byte stream (and thus the section CRCs) is
    // deterministic across runs and hash-map orders.
    let mut entries: Vec<(&PropertyKey, &[f32])> = store.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let sanitize = store.sanitize_stats();
    let mut meta = Encoder::new();
    meta.u32(fp.layout);
    meta.u64(fp.dim);
    meta.u64(fp.dataset);
    meta.u64(fp.embeddings);
    meta.u64(sanitize.nonfinite);
    meta.u64(sanitize.clamped);
    meta.u64(entries.len() as u64);
    let plen = leapme_features::property::len(store.dim());
    let mut keys = Encoder::new();
    let mut vectors: Vec<f32> = Vec::with_capacity(entries.len() * plen);
    for (key, vector) in &entries {
        keys.u32(u32::from(key.source.0));
        keys.u64(key.name.len() as u64);
        keys.bytes(key.name.as_bytes());
        vectors.extend_from_slice(vector);
    }
    let mut w = V2Writer::new(KIND_FEATURE_CACHE);
    w.bytes("meta", &meta.finish());
    w.bytes("keys", &keys.finish());
    w.f32s("vectors", &vectors);
    w.write(path)
}

/// Persist `store` in the legacy v1 single-payload layout. Kept so the
/// v1-compat tests and the `registry upgrade` migration drill can
/// produce old-format files; new writes go through [`save`].
pub fn save_v1(
    path: &Path,
    store: &PropertyFeatureStore,
    fp: &FeatureFingerprint,
) -> Result<(), CheckpointError> {
    let mut e = Encoder::new();
    e.u32(fp.layout);
    e.u64(fp.dim);
    e.u64(fp.dataset);
    e.u64(fp.embeddings);
    let sanitize = store.sanitize_stats();
    e.u64(sanitize.nonfinite);
    e.u64(sanitize.clamped);
    let mut entries: Vec<(&PropertyKey, &[f32])> = store.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    e.u64(entries.len() as u64);
    for (key, vector) in entries {
        e.u32(u32::from(key.source.0));
        e.u64(key.name.len() as u64);
        e.bytes(key.name.as_bytes());
        e.f32s(vector);
    }
    checkpoint::write_container(path, KIND_FEATURE_CACHE, &e.finish())
}

/// Fingerprint precedence shared by both format versions: layout skew
/// first (most actionable), then dimension, dataset, embeddings.
fn check_fingerprint(
    found: &FeatureFingerprint,
    expected: &FeatureFingerprint,
) -> Result<(), FeatureCacheError> {
    if found.layout != expected.layout {
        return Err(FeatureCacheError::Stale(Mismatch::Layout {
            found: found.layout,
            expected: expected.layout,
        }));
    }
    if found.dim != expected.dim {
        return Err(FeatureCacheError::Stale(Mismatch::Dim {
            found: found.dim,
            expected: expected.dim,
        }));
    }
    if found.dataset != expected.dataset {
        return Err(FeatureCacheError::Stale(Mismatch::Dataset));
    }
    if found.embeddings != expected.embeddings {
        return Err(FeatureCacheError::Stale(Mismatch::Embeddings));
    }
    Ok(())
}

/// Load a store from `path`, verifying the container and every
/// fingerprint component against `expected` before any vectors are
/// decoded. Both format versions load: v1 through the legacy payload
/// parse, v2 through zero-copy section views.
pub fn load(
    path: &Path,
    expected: &FeatureFingerprint,
) -> Result<PropertyFeatureStore, FeatureCacheError> {
    match container2::open_any(path, KIND_FEATURE_CACHE)? {
        Opened::V1(payload) => load_v1(&payload, Some(expected)).map(|(s, _)| s),
        Opened::V2(c) => {
            // This is the *self-healing* entry point (`load_or_build`
            // rebuilds on any error), so pay the full per-section
            // checksum sweep up front: a bit-flipped slab must surface
            // here as a typed error — and trigger the rebuild — rather
            // than score silently wrong. The resident path
            // (`load_resident`) stays lazy and leans on the explicit
            // `registry --dir` sweep instead.
            c.verify_all()?;
            load_v2(&c, Some(expected)).map(|(s, _)| s)
        }
    }
}

/// Open a cache with no `(dataset, embeddings)` pair in hand — the
/// registry path, where the recorded fingerprint is the source of truth
/// (the caller cross-checks it against the domain's model). Returns the
/// store, the recorded fingerprint, and the open-path label
/// (`"mmap"` / `"read"` / `"legacy-v1"`).
pub fn load_resident(
    path: &Path,
) -> Result<(PropertyFeatureStore, FeatureFingerprint, &'static str), FeatureCacheError> {
    match container2::open_any(path, KIND_FEATURE_CACHE)? {
        Opened::V1(payload) => load_v1(&payload, None).map(|(s, fp)| (s, fp, "legacy-v1")),
        Opened::V2(c) => {
            let label = c.open_path().label();
            load_v2(&c, None).map(|(s, fp)| (s, fp, label))
        }
    }
}

/// Decode the legacy v1 payload (fingerprint header, then inline
/// per-property vectors), optionally gating on `expected` before any
/// vector bytes are touched.
fn load_v1(
    payload: &[u8],
    expected: Option<&FeatureFingerprint>,
) -> Result<(PropertyFeatureStore, FeatureFingerprint), FeatureCacheError> {
    let mut d = Decoder::new(payload);
    // Struct-literal fields evaluate in written order, which must match
    // the encoded order: layout, dim, dataset, embeddings.
    let fp = FeatureFingerprint {
        layout: d.u32()?,
        dim: d.u64()?,
        dataset: d.u64()?,
        embeddings: d.u64()?,
    };
    if let Some(expected) = expected {
        check_fingerprint(&fp, expected)?;
    }
    let sanitize = SanitizeStats {
        nonfinite: d.u64()?,
        clamped: d.u64()?,
    };
    let dim = fp.dim as usize;
    let expected_len = leapme_features::property::len(dim);
    let n = d.u64()? as usize;
    let mut features: HashMap<PropertyKey, Vec<f32>> = HashMap::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let source = d.u32()?;
        let source = u16::try_from(source)
            .map_err(|_| CheckpointError::Malformed(format!("source id {source} overflows u16")))?;
        let name_len = d.u64()? as usize;
        let name = std::str::from_utf8(d.raw(name_len)?)
            .map_err(|_| CheckpointError::Malformed("property name is not UTF-8".into()))?
            .to_string();
        let vector = d.f32s()?;
        if vector.len() != expected_len {
            return Err(CheckpointError::Malformed(format!(
                "property vector has {} components, layout needs {expected_len}",
                vector.len()
            ))
            .into());
        }
        if features
            .insert(PropertyKey::new(SourceId(source), &name), vector)
            .is_some()
        {
            return Err(
                CheckpointError::Malformed(format!("duplicate property entry {name:?}")).into(),
            );
        }
    }
    d.done()?;
    Ok((
        PropertyFeatureStore::from_parts(dim, features, sanitize),
        fp,
    ))
}

/// Validate the raw `keys` section without allocating per key: every
/// record in bounds, source ids in `u16`, names valid UTF-8, and keys
/// in strictly ascending `(source, name)` order — the order the writer
/// emits, and the invariant that makes duplicates impossible without a
/// hash set. Returns a typed error on the first violation, so the
/// deferred decode in [`load_v2`] can be infallible.
fn validate_keys(bytes: &[u8], count: usize) -> Result<(), CheckpointError> {
    let mut d = Decoder::new(bytes);
    let mut prev: Option<(u16, &str)> = None;
    for row in 0..count {
        let source = d.u32()?;
        let source = u16::try_from(source)
            .map_err(|_| CheckpointError::Malformed(format!("source id {source} overflows u16")))?;
        let name_len = d.u64()? as usize;
        let name = std::str::from_utf8(d.raw(name_len)?)
            .map_err(|_| CheckpointError::Malformed("property name is not UTF-8".into()))?;
        let key = (source, name);
        if let Some(prev) = prev {
            if prev >= key {
                return Err(CheckpointError::Malformed(format!(
                    "key table not strictly ascending at row {row} \
                     (s{}:{} then s{}:{})",
                    prev.0, prev.1, key.0, key.1
                )));
            }
        }
        prev = Some(key);
    }
    d.done()
}

/// Decode a v2 cache: fingerprint from the `meta` section (gated on
/// `expected` before the key table or slab are touched), keys from
/// `keys`, and the vector slab as a zero-copy [`F32Section`] view —
/// the store's rows alias the mapped file for its whole lifetime.
///
/// The open is O(1) in the property count: the key table is *validated*
/// here (one allocation-free walk over CRC-checked bytes) but only
/// *decoded* — per-key strings, the row-index map — on the store's
/// first keyed access. The slab view skips its payload checksum
/// entirely ([`V2Container::f32_section_lazy`]); `leapme registry
/// --dir` and the verify.sh corruption drill run the explicit
/// [`V2Container::verify_all`] sweep that covers it.
///
/// [`F32Section`]: container2::F32Section
fn load_v2(
    c: &Arc<V2Container>,
    expected: Option<&FeatureFingerprint>,
) -> Result<(PropertyFeatureStore, FeatureFingerprint), FeatureCacheError> {
    let mut d = Decoder::new(c.section_bytes("meta")?);
    let fp = FeatureFingerprint {
        layout: d.u32()?,
        dim: d.u64()?,
        dataset: d.u64()?,
        embeddings: d.u64()?,
    };
    if let Some(expected) = expected {
        check_fingerprint(&fp, expected)?;
    }
    let sanitize = SanitizeStats {
        nonfinite: d.u64()?,
        clamped: d.u64()?,
    };
    let count = d.u64()? as usize;
    d.done()?;

    validate_keys(c.section_bytes("keys")?, count)?;

    let slab = c.f32_section_lazy("vectors")?;
    let decoder = Arc::clone(c);
    let decode_keys = Box::new(move || {
        // Infallible by construction: the section bytes were CRC-checked
        // and shape-validated above, and the container (hence the
        // mapping) lives inside this closure.
        let bytes = decoder
            .section_bytes("keys")
            .expect("keys section validated at open");
        let mut d = Decoder::new(bytes);
        let mut keys = Vec::with_capacity(count);
        for _ in 0..count {
            let source = d.u32().expect("validated") as u16;
            let name_len = d.u64().expect("validated") as usize;
            let name = std::str::from_utf8(d.raw(name_len).expect("validated"))
                .expect("validated");
            keys.push(PropertyKey::new(SourceId(source), name));
        }
        keys
    });
    let store = PropertyFeatureStore::from_slab_deferred(
        fp.dim as usize,
        count,
        decode_keys,
        Arc::new(slab),
        sanitize,
    )
    .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    Ok((store, fp))
}

/// Obtain the feature store for `(dataset, embeddings)`: from the cache
/// when `path` holds a matching one, otherwise by a (cancellable) clean
/// rebuild — after which the cache is (re)written so the next run hits.
///
/// Every load failure short of I/O on the *write* side degrades to a
/// rebuild, never an error: a stale, truncated, bit-flipped, or
/// wrong-kind file costs one featurize stage, not the run.
pub fn load_or_build(
    path: Option<&Path>,
    dataset: &Dataset,
    embeddings: &EmbeddingStore,
    threads: usize,
    cancel: CancelCheck<'_>,
) -> Result<(PropertyFeatureStore, CacheStatus), CoreError> {
    let Some(path) = path else {
        let store =
            PropertyFeatureStore::try_build_cancellable(dataset, embeddings, threads, cancel)?;
        return Ok((store, CacheStatus::Disabled));
    };
    let fp = fingerprint(dataset, embeddings);
    let reason = match load(path, &fp) {
        Ok(store) => return Ok((store, CacheStatus::Hit)),
        Err(FeatureCacheError::Checkpoint(CheckpointError::Io(e)))
            if e.kind() == std::io::ErrorKind::NotFound =>
        {
            "no cache file yet".to_string()
        }
        Err(e) => e.to_string(),
    };
    let store = PropertyFeatureStore::try_build_cancellable(dataset, embeddings, threads, cancel)?;
    save(path, &store, &fp).map_err(CoreError::Checkpoint)?;
    Ok((store, CacheStatus::Rebuilt(reason)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::Instance;
    use std::collections::BTreeMap;

    fn dataset() -> Dataset {
        let mk = |source: u16, property: &str, entity: &str, value: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: entity.into(),
            value: value.into(),
        };
        let instances = vec![
            mk(0, "megapixels", "e1", "20.1 MP"),
            mk(0, "price", "e1", "1,299.99"),
            mk(1, "resolution", "x1", "18 megapixels"),
            mk(1, "weight", "x1", "450 g"),
        ];
        let mut alignment = BTreeMap::new();
        for (s, p, u) in [
            (0u16, "megapixels", "resolution"),
            (0, "price", "price"),
            (1, "resolution", "resolution"),
            (1, "weight", "weight"),
        ] {
            alignment.insert(PropertyKey::new(SourceId(s), p), u.to_string());
        }
        Dataset::new("toy", vec!["a".into(), "b".into()], instances, alignment).unwrap()
    }

    fn embeddings() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(4);
        s.insert("megapixels", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        s.insert("resolution", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        s.insert("weight", vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        s.insert("price", vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        s
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_feature_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_stores_bitwise_equal(a: &PropertyFeatureStore, b: &PropertyFeatureStore) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dim(), b.dim());
        assert_eq!(a.sanitize_stats(), b.sanitize_stats());
        assert_eq!(a.degradation(), b.degradation());
        for (k, v) in a.iter() {
            let w = b.property_vector(k).expect("key present");
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "property {k:?}"
            );
        }
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let fp = fingerprint(&ds, &emb);
        let path = temp_path("roundtrip.lfc");
        save(&path, &store, &fp).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert_stores_bitwise_equal(&store, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_change_is_detected() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let path = temp_path("stale_dataset.lfc");
        save(&path, &store, &fingerprint(&ds, &emb)).unwrap();

        let mk = |value: &str| Instance {
            source: SourceId(0),
            property: "megapixels".into(),
            entity: "e1".into(),
            value: value.into(),
        };
        let mut alignment = BTreeMap::new();
        alignment.insert(
            PropertyKey::new(SourceId(0), "megapixels"),
            "resolution".to_string(),
        );
        let other = Dataset::new(
            "toy",
            vec!["a".into(), "b".into()],
            vec![mk("999 MP")],
            alignment,
        )
        .unwrap();
        let err = load(&path, &fingerprint(&other, &emb)).err().expect("load must fail");
        assert!(matches!(err, FeatureCacheError::Stale(Mismatch::Dataset)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn embedding_change_and_fuzzy_flag_are_detected() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let path = temp_path("stale_embeddings.lfc");
        save(&path, &store, &fingerprint(&ds, &emb)).unwrap();

        let mut changed = emb.clone();
        changed.insert("new", vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let err = load(&path, &fingerprint(&ds, &changed)).err().expect("load must fail");
        assert!(matches!(
            err,
            FeatureCacheError::Stale(Mismatch::Embeddings)
        ));

        // The fuzzy-OOV flag changes lookup results, so it must also
        // invalidate the cache.
        let mut fuzzed = emb.clone();
        fuzzed.set_fuzzy_oov(true);
        let err = load(&path, &fingerprint(&ds, &fuzzed)).err().expect("load must fail");
        assert!(matches!(
            err,
            FeatureCacheError::Stale(Mismatch::Embeddings)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dim_skew_is_detected_before_decoding() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let path = temp_path("stale_dim.lfc");
        save(&path, &store, &fingerprint(&ds, &emb)).unwrap();
        let mut other_dim = EmbeddingStore::new(8);
        other_dim
            .insert("megapixels", vec![0.0; 8])
            .unwrap();
        let err = load(&path, &fingerprint(&ds, &other_dim)).err().expect("load must fail");
        assert!(matches!(
            err,
            FeatureCacheError::Stale(Mismatch::Dim { found: 4, expected: 8 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_surfaces_as_checkpoint_error_and_rebuilds() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let fp = fingerprint(&ds, &emb);
        let path = temp_path("corrupt.lfc");
        save(&path, &store, &fp).unwrap();

        // Flip one payload byte: the CRC must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path, &fp).err().expect("load must fail");
        assert!(matches!(
            err,
            FeatureCacheError::Checkpoint(CheckpointError::ChecksumMismatch { .. })
        ));

        // load_or_build degrades to a clean rebuild and heals the file.
        let (rebuilt, status) = load_or_build(Some(&path), &ds, &emb, 1, None).unwrap();
        assert!(matches!(status, CacheStatus::Rebuilt(_)));
        assert_stores_bitwise_equal(&store, &rebuilt);
        let (hit, status) = load_or_build(Some(&path), &ds, &emb, 1, None).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert_stores_bitwise_equal(&store, &hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_or_build_cold_then_hot() {
        let ds = dataset();
        let emb = embeddings();
        let path = temp_path("cold_hot.lfc");
        std::fs::remove_file(&path).ok();
        let (built, status) = load_or_build(Some(&path), &ds, &emb, 1, None).unwrap();
        assert_eq!(
            status,
            CacheStatus::Rebuilt("no cache file yet".to_string())
        );
        let (loaded, status) = load_or_build(Some(&path), &ds, &emb, 1, None).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert_stores_bitwise_equal(&built, &loaded);
        // Without a path the cache machinery is bypassed entirely.
        let (_, status) = load_or_build(None, &ds, &emb, 1, None).unwrap();
        assert_eq!(status, CacheStatus::Disabled);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_cache_still_loads_and_matches_v2() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let fp = fingerprint(&ds, &emb);
        let v1 = temp_path("compat_v1.lfc");
        let v2 = temp_path("compat_v2.lfc");
        save_v1(&v1, &store, &fp).unwrap();
        save(&v2, &store, &fp).unwrap();
        let from_v1 = load(&v1, &fp).unwrap();
        let from_v2 = load(&v2, &fp).unwrap();
        assert_stores_bitwise_equal(&store, &from_v1);
        assert_stores_bitwise_equal(&from_v1, &from_v2);
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn load_resident_reports_fingerprint_and_open_path() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let fp = fingerprint(&ds, &emb);
        let v2 = temp_path("resident_v2.lfc");
        let v1 = temp_path("resident_v1.lfc");
        save(&v2, &store, &fp).unwrap();
        save_v1(&v1, &store, &fp).unwrap();
        let (loaded, recorded, path_label) = load_resident(&v2).unwrap();
        assert_stores_bitwise_equal(&store, &loaded);
        assert_eq!(recorded, fp);
        assert!(path_label == "mmap" || path_label == "read", "{path_label}");
        let (loaded, recorded, path_label) = load_resident(&v1).unwrap();
        assert_stores_bitwise_equal(&store, &loaded);
        assert_eq!(recorded, fp);
        assert_eq!(path_label, "legacy-v1");
        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v1).ok();
    }

    #[test]
    fn v2_stale_is_detected_before_slab_decode() {
        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let fp = fingerprint(&ds, &emb);
        let path = temp_path("stale_v2.lfc");
        save(&path, &store, &fp).unwrap();
        let skew = FeatureFingerprint {
            layout: fp.layout + 1,
            ..fp
        };
        let err = load(&path, &skew).err().expect("load must fail");
        assert!(matches!(
            err,
            FeatureCacheError::Stale(Mismatch::Layout { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprints_are_order_and_instance_sensitive() {
        let ds = dataset();
        let emb = embeddings();
        assert_eq!(dataset_fingerprint(&ds), dataset_fingerprint(&ds));
        assert_eq!(embeddings_fingerprint(&emb), embeddings_fingerprint(&emb));
        // Clone resets the fuzzy cache but not the contents: same print.
        assert_eq!(embeddings_fingerprint(&emb), embeddings_fingerprint(&emb.clone()));
    }
}
