//! Schema-level property fusion: turning clusters into a unified schema.
//!
//! The paper's motivation (§I, §VI) is knowledge-graph construction:
//! after equivalent properties are clustered, they must be *fused* into
//! one property of the integrated schema so entity values from all
//! sources land in one place. This module derives that unified schema —
//! canonical names, provenance, and per-property value summaries (with a
//! numeric profile where values parse as numbers, which downstream unit
//! reconciliation needs).

use crate::cluster::Clustering;
use leapme_data::model::{Dataset, PropertyKey, SourceId};
use leapme_features::instance::numeric_value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Summary of the numeric values observed for a unified property.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericSummary {
    /// Values that parsed as numbers.
    pub count: usize,
    /// Minimum parsed value.
    pub min: f64,
    /// Maximum parsed value.
    pub max: f64,
    /// Mean parsed value.
    pub mean: f64,
}

/// One property of the unified schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedProperty {
    /// Canonical name: the most frequent normalized member name
    /// (ties broken lexicographically).
    pub canonical_name: String,
    /// The source-local properties fused into this one.
    pub members: Vec<PropertyKey>,
    /// Sources contributing to the property.
    pub sources: BTreeSet<SourceId>,
    /// Total instances across members.
    pub instance_count: usize,
    /// Up to [`SAMPLE_VALUES`] distinct example values.
    pub sample_values: Vec<String>,
    /// Numeric profile over values that parse as numbers (`None` when
    /// fewer than half of them do).
    pub numeric: Option<NumericSummary>,
}

/// Number of sample values retained per unified property.
pub const SAMPLE_VALUES: usize = 8;

/// The unified schema derived from a clustering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedSchema {
    /// Unified properties, largest clusters first.
    pub properties: Vec<UnifiedProperty>,
    /// Properties that stayed singletons (source-specific).
    pub singletons: Vec<PropertyKey>,
}

/// Normalize a property name for canonical-name voting.
fn normalize(name: &str) -> String {
    leapme_embedding::tokenize::tokenize(name).join(" ")
}

/// Fuse a clustering over `dataset` into a unified schema.
pub fn fuse(dataset: &Dataset, clustering: &Clustering) -> UnifiedSchema {
    let mut properties = Vec::new();
    let mut singletons = Vec::new();

    for cluster in clustering.clusters() {
        if cluster.len() < 2 {
            singletons.extend(cluster.iter().cloned());
            continue;
        }

        // Canonical name by majority over normalized names.
        let mut votes: BTreeMap<String, usize> = BTreeMap::new();
        for key in cluster {
            let n = normalize(&key.name);
            if !n.is_empty() {
                *votes.entry(n).or_insert(0) += 1;
            }
        }
        let canonical_name = votes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| "unnamed".to_string());

        // Collect values.
        let mut sample_values: Vec<String> = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut numeric_values: Vec<f64> = Vec::new();
        let mut instance_count = 0usize;
        for key in cluster {
            for inst in dataset.instances_of(key) {
                instance_count += 1;
                let v = numeric_value(&inst.value);
                if v != -1.0 {
                    numeric_values.push(v);
                }
                if sample_values.len() < SAMPLE_VALUES && seen.insert(inst.value.as_str()) {
                    sample_values.push(inst.value.clone());
                }
            }
        }
        let numeric = if instance_count > 0 && numeric_values.len() * 2 >= instance_count {
            let count = numeric_values.len();
            let min = numeric_values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = numeric_values
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let mean = numeric_values.iter().sum::<f64>() / count as f64;
            Some(NumericSummary {
                count,
                min,
                max,
                mean,
            })
        } else {
            None
        };

        properties.push(UnifiedProperty {
            canonical_name,
            sources: cluster.iter().map(|k| k.source).collect(),
            members: cluster.clone(),
            instance_count,
            sample_values,
            numeric,
        });
    }

    properties.sort_by(|a, b| {
        b.members
            .len()
            .cmp(&a.members.len())
            .then(a.canonical_name.cmp(&b.canonical_name))
    });
    UnifiedSchema {
        properties,
        singletons,
    }
}

impl UnifiedSchema {
    /// Human-readable rendering for reports and the CLI.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "unified schema: {} fused properties, {} singletons",
            self.properties.len(),
            self.singletons.len()
        )
        .unwrap();
        for p in &self.properties {
            writeln!(
                out,
                "── {} ({} members from {} sources, {} instances)",
                p.canonical_name,
                p.members.len(),
                p.sources.len(),
                p.instance_count
            )
            .unwrap();
            if let Some(n) = &p.numeric {
                writeln!(
                    out,
                    "   numeric: min {:.2}, max {:.2}, mean {:.2} over {} values",
                    n.min, n.max, n.mean, n.count
                )
                .unwrap();
            }
            if !p.sample_values.is_empty() {
                writeln!(out, "   samples: {}", p.sample_values.join(" | ")).unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::connected_components;
    use crate::simgraph::SimilarityGraph;
    use leapme_data::model::{Instance, PropertyPair};
    use std::collections::BTreeMap;

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    fn dataset() -> Dataset {
        let mk = |s: u16, p: &str, e: &str, v: &str| Instance {
            source: SourceId(s),
            property: p.into(),
            entity: e.into(),
            value: v.into(),
        };
        Dataset::new(
            "toy",
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                mk(0, "weight", "e1", "200"),
                mk(0, "weight", "e2", "300"),
                mk(1, "Weight", "x1", "250"),
                mk(2, "item_weight", "z1", "not numeric"),
                mk(0, "color", "e1", "black"),
                mk(1, "colour", "x1", "silver"),
            ],
            BTreeMap::new(),
        )
        .unwrap()
    }

    fn clustering() -> Clustering {
        let g: SimilarityGraph = [
            (PropertyPair::new(key(0, "weight"), key(1, "Weight")), 0.9f32),
            (PropertyPair::new(key(1, "Weight"), key(2, "item_weight")), 0.8),
            (PropertyPair::new(key(0, "color"), key(1, "colour")), 0.9),
        ]
        .into_iter()
        .collect();
        connected_components(&g, 0.5)
    }

    #[test]
    fn fuses_clusters_into_unified_properties() {
        let schema = fuse(&dataset(), &clustering());
        assert_eq!(schema.properties.len(), 2);
        assert!(schema.singletons.is_empty());
        // Largest cluster first.
        let weight = &schema.properties[0];
        assert_eq!(weight.members.len(), 3);
        assert_eq!(weight.canonical_name, "weight"); // 2 of 3 normalize to "weight"
        assert_eq!(weight.sources.len(), 3);
        assert_eq!(weight.instance_count, 4);
    }

    #[test]
    fn numeric_summary_when_majority_numeric() {
        let schema = fuse(&dataset(), &clustering());
        let weight = &schema.properties[0];
        let n = weight.numeric.expect("3 of 4 values are numeric");
        assert_eq!(n.count, 3);
        assert_eq!(n.min, 200.0);
        assert_eq!(n.max, 300.0);
        assert!((n.mean - 250.0).abs() < 1e-12);
        // The color cluster is non-numeric.
        let color = &schema.properties[1];
        assert!(color.numeric.is_none());
    }

    #[test]
    fn sample_values_are_distinct_and_capped() {
        let schema = fuse(&dataset(), &clustering());
        let weight = &schema.properties[0];
        let set: BTreeSet<&String> = weight.sample_values.iter().collect();
        assert_eq!(set.len(), weight.sample_values.len());
        assert!(weight.sample_values.len() <= SAMPLE_VALUES);
    }

    #[test]
    fn singletons_are_kept_separate() {
        // A graph with an isolated node: property with no match.
        let g: SimilarityGraph = [
            (PropertyPair::new(key(0, "weight"), key(1, "Weight")), 0.9f32),
            (PropertyPair::new(key(0, "color"), key(2, "item_weight")), 0.1),
        ]
        .into_iter()
        .collect();
        let c = connected_components(&g, 0.5);
        let schema = fuse(&dataset(), &c);
        assert_eq!(schema.properties.len(), 1);
        assert_eq!(schema.singletons.len(), 2); // color and item_weight
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let schema = fuse(&dataset(), &clustering());
        let text = schema.to_text();
        assert!(text.contains("unified schema: 2 fused properties"));
        assert!(text.contains("weight"));
        assert!(text.contains("numeric: min 200.00"));
        assert!(text.contains("samples:"));
    }

    #[test]
    fn serde_round_trip() {
        let schema = fuse(&dataset(), &clustering());
        let json = serde_json::to_string(&schema).unwrap();
        let back: UnifiedSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(back.properties.len(), schema.properties.len());
        assert_eq!(
            back.properties[0].canonical_name,
            schema.properties[0].canonical_name
        );
    }
}
