//! Permutation feature importance over LEAPME's feature blocks.
//!
//! Table II measures feature-group value by *retraining* under nine
//! configurations; permutation importance asks the complementary
//! question about a *single trained model*: how much quality is lost if
//! one block's values are shuffled across the evaluation pairs
//! (destroying their information while preserving their marginal
//! distribution)? Large drops mean the model leans on that block.

use crate::metrics::Metrics;
use crate::pipeline::LeapmeModel;
use crate::CoreError;
use leapme_data::model::PropertyPair;
use leapme_features::{instance, pair, PropertyFeatureStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The four feature blocks of the full pair vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureBlock {
    /// Instance meta-features (Table I rows 1–3), 29 columns.
    InstanceNonEmbedding,
    /// Instance embedding averages (row 4), `D` columns.
    InstanceEmbedding,
    /// Name embedding averages (row 6), `D` columns.
    NameEmbedding,
    /// Name string distances (rows 8–15), 8 columns.
    StringDistances,
}

impl FeatureBlock {
    /// All four blocks in layout order.
    pub const ALL: [FeatureBlock; 4] = [
        FeatureBlock::InstanceNonEmbedding,
        FeatureBlock::InstanceEmbedding,
        FeatureBlock::NameEmbedding,
        FeatureBlock::StringDistances,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureBlock::InstanceNonEmbedding => "instance meta-features",
            FeatureBlock::InstanceEmbedding => "instance embeddings",
            FeatureBlock::NameEmbedding => "name embeddings",
            FeatureBlock::StringDistances => "string distances",
        }
    }

    /// Column range in the *full* pair vector at embedding dim `d`.
    pub fn columns(self, d: usize) -> std::ops::Range<usize> {
        let n = instance::NON_EMBEDDING_LEN;
        match self {
            FeatureBlock::InstanceNonEmbedding => 0..n,
            FeatureBlock::InstanceEmbedding => n..n + d,
            FeatureBlock::NameEmbedding => n + d..n + 2 * d,
            FeatureBlock::StringDistances => n + 2 * d..n + 2 * d + pair::STRING_FEATURES,
        }
    }
}

/// Importance of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockImportance {
    /// The block.
    pub block: FeatureBlock,
    /// F1 after permuting the block.
    pub permuted_f1: f64,
    /// `baseline_f1 − permuted_f1` (higher = more important).
    pub f1_drop: f64,
}

/// Result of a permutation-importance analysis.
#[derive(Debug, Clone)]
pub struct ImportanceReport {
    /// F1 of the unperturbed model on the evaluation pairs.
    pub baseline_f1: f64,
    /// Per-block importance, in [`FeatureBlock::ALL`] order.
    pub blocks: Vec<BlockImportance>,
}

/// Measure permutation importance of each feature block.
///
/// The model must have been trained with the *full* feature
/// configuration (all blocks present); `labeled` supplies the evaluation
/// pairs and their ground-truth labels.
pub fn permutation_importance(
    model: &LeapmeModel,
    store: &PropertyFeatureStore,
    labeled: &[(PropertyPair, bool)],
    seed: u64,
) -> Result<ImportanceReport, CoreError> {
    if labeled.is_empty() {
        return Err(CoreError::NoTrainingData);
    }
    let d = store.dim();
    if model.input_dim() != pair::len(d) {
        return Err(CoreError::InvalidSplit(format!(
            "model expects {} features; importance analysis requires the full configuration ({})",
            model.input_dim(),
            pair::len(d)
        )));
    }

    // Materialize the full feature matrix once.
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(labeled.len());
    for (PropertyPair(a, b), _) in labeled {
        let row = store.full_pair_vector(a, b).ok_or_else(|| {
            CoreError::Feature(leapme_features::vectorizer::FeatureError::UnknownProperty(
                a.clone(),
            ))
        })?;
        rows.push(row);
    }
    let gt: std::collections::BTreeSet<&PropertyPair> = labeled
        .iter()
        .filter(|(_, y)| *y)
        .map(|(p, _)| p)
        .collect();
    let eval = |rows: &[Vec<f32>]| -> f64 {
        let scores = model.score_rows(rows);
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for ((p, _), s) in labeled.iter().zip(&scores) {
            let predicted = *s >= model.threshold();
            let actual = gt.contains(p);
            match (predicted, actual) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        Metrics::from_counts(tp, fp, fn_).f1
    };

    let baseline_f1 = eval(&rows);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut blocks = Vec::with_capacity(FeatureBlock::ALL.len());
    for block in FeatureBlock::ALL {
        let cols = block.columns(d);
        // Permute the block rows-wise: shuffle which row each block
        // segment belongs to.
        let mut perm: Vec<usize> = (0..rows.len()).collect();
        perm.shuffle(&mut rng);
        let mut permuted = rows.clone();
        for (dst, &src) in perm.iter().enumerate() {
            permuted[dst][cols.clone()].copy_from_slice(&rows[src][cols.clone()]);
        }
        let permuted_f1 = eval(&permuted);
        blocks.push(BlockImportance {
            block,
            permuted_f1,
            f1_drop: baseline_f1 - permuted_f1,
        });
    }
    Ok(ImportanceReport {
        baseline_f1,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Leapme, LeapmeConfig};
    use crate::sampling;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_features::{FeatureConfig, FeatureKind, FeatureScope};
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;

    fn embeddings() -> EmbeddingStore {
        let corpus = generate_corpus(
            &Domain::Tvs.spec(),
            &CorpusConfig {
                sentences_per_synonym: 10,
                filler_sentences: 30,
            },
            7,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 10,
                ..GloVeConfig::default()
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn importance_identifies_informative_blocks() {
        let ds = generate(Domain::Tvs, 81);
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let training = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let model = Leapme::fit(
            &store,
            &training,
            &LeapmeConfig {
                train: TrainConfig {
                    schedule: LrSchedule::new(vec![(8, 1e-3), (4, 1e-4)]),
                    ..TrainConfig::default()
                },
                ..LeapmeConfig::default()
            },
        )
        .unwrap();
        let eval_pairs = sampling::test_examples(&ds, &split.train, 2, &mut rng);
        let report = permutation_importance(&model, &store, &eval_pairs, 1).unwrap();
        assert!(report.baseline_f1 > 0.7, "baseline {}", report.baseline_f1);
        assert_eq!(report.blocks.len(), 4);
        // At least one block must matter substantially.
        let max_drop = report
            .blocks
            .iter()
            .map(|b| b.f1_drop)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_drop > 0.05, "no block mattered: {report:?}");
        // Permuting never *helps* much (sanity).
        for b in &report.blocks {
            assert!(b.f1_drop > -0.1, "{:?} suspiciously improved", b.block);
        }
    }

    #[test]
    fn block_columns_partition_full_vector() {
        let d = 16;
        let mut covered = vec![false; pair::len(d)];
        for block in FeatureBlock::ALL {
            for c in block.columns(d) {
                assert!(!covered[c], "column {c} covered twice");
                covered[c] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn rejects_partial_feature_model() {
        let ds = generate(Domain::Tvs, 82);
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let training = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let model = Leapme::fit(
            &store,
            &training,
            &LeapmeConfig {
                features: FeatureConfig {
                    scope: FeatureScope::Names,
                    kind: FeatureKind::Embeddings,
                },
                train: TrainConfig {
                    schedule: LrSchedule::new(vec![(2, 1e-3)]),
                    ..TrainConfig::default()
                },
                hidden: vec![8],
                ..LeapmeConfig::default()
            },
        )
        .unwrap();
        let eval_pairs = sampling::test_examples(&ds, &split.train, 2, &mut rng);
        assert!(permutation_importance(&model, &store, &eval_pairs, 1).is_err());
        assert!(permutation_importance(&model, &store, &[], 1).is_err());
    }
}
