//! Incremental multi-source matching: integrating a *new* source into an
//! existing similarity graph.
//!
//! The paper positions LEAPME inside knowledge-graph construction
//! pipelines that grow over time (§I, §VI): when a new source arrives,
//! its properties must be matched against the already-integrated ones
//! without re-scoring the whole graph. [`integrate_source`] scores only
//! the pairs touching the new source, merges them into the graph, and
//! reports how the new properties attach to existing clusters.

use crate::cluster::{star_clustering, Clustering};
use crate::pipeline::LeapmeModel;
use crate::simgraph::SimilarityGraph;
use crate::CoreError;
use leapme_data::model::{Dataset, PropertyKey, PropertyPair, SourceId};
use leapme_features::PropertyFeatureStore;

/// Result of integrating one new source.
#[derive(Debug, Clone)]
pub struct IntegrationOutcome {
    /// Pairs scored (new source × existing properties).
    pub scored_pairs: usize,
    /// New-source properties that matched at least one existing property
    /// at the model threshold.
    pub attached: Vec<PropertyKey>,
    /// New-source properties with no match — candidate *new* reference
    /// properties for the knowledge graph.
    pub novel: Vec<PropertyKey>,
    /// Clustering of the updated graph.
    pub clustering: Clustering,
}

/// Score the new source's properties against every property already in
/// `graph`, merge the scored edges into `graph`, and re-cluster.
///
/// `store` must contain features for both the existing and the new
/// properties (build it over the dataset that already includes the new
/// source).
pub fn integrate_source(
    model: &LeapmeModel,
    store: &PropertyFeatureStore,
    dataset: &Dataset,
    graph: &mut SimilarityGraph,
    new_source: SourceId,
) -> Result<IntegrationOutcome, CoreError> {
    let new_props: Vec<PropertyKey> = dataset
        .properties()
        .into_iter()
        .filter(|p| p.source == new_source)
        .collect();
    if new_props.is_empty() {
        return Err(CoreError::EmptySource(new_source.0));
    }
    let existing: Vec<PropertyKey> = graph
        .nodes()
        .into_iter()
        .filter(|p| p.source != new_source)
        .collect();

    let pairs: Vec<PropertyPair> = new_props
        .iter()
        .flat_map(|np| {
            existing
                .iter()
                .filter(|ep| ep.source != np.source)
                .map(|ep| PropertyPair::new(np.clone(), ep.clone()))
        })
        .collect();

    let scores = model.score_pairs(store, &pairs)?;
    let threshold = model.threshold();
    let mut attached_set = std::collections::BTreeSet::new();
    for (pair, score) in pairs.iter().zip(&scores) {
        graph.add(pair.clone(), *score);
        if *score >= threshold {
            let PropertyPair(a, b) = pair;
            let newp = if a.source == new_source { a } else { b };
            attached_set.insert(newp.clone());
        }
    }

    let novel: Vec<PropertyKey> = new_props
        .iter()
        .filter(|p| !attached_set.contains(*p))
        .cloned()
        .collect();
    let clustering = star_clustering(graph, threshold);

    Ok(IntegrationOutcome {
        scored_pairs: pairs.len(),
        attached: attached_set.into_iter().collect(),
        novel,
        clustering,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Leapme, LeapmeConfig};
    use crate::sampling;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train as glove_train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 8,
                filler_sentences: 30,
            },
            3,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        glove_train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 8,
                ..GloVeConfig::default()
            },
            3,
        )
        .unwrap()
    }

    /// Train on sources 0..5, seed the graph with their pairs, then
    /// integrate source 6.
    fn setup() -> (
        Dataset,
        PropertyFeatureStore,
        LeapmeModel,
        SimilarityGraph,
    ) {
        let dataset = generate(Domain::Tvs, 61);
        let store = PropertyFeatureStore::build(&dataset, &embeddings(Domain::Tvs));
        let train_sources: Vec<SourceId> = (0..6).map(SourceId).collect();
        let mut rng = StdRng::seed_from_u64(61);
        let train = sampling::training_pairs(&dataset, &train_sources, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(6, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![24],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        // Seed graph: scored pairs among the training sources.
        let base_pairs = dataset.cross_source_pairs(&train_sources);
        let graph = model.predict_graph(&store, &base_pairs).unwrap();
        (dataset, store, model, graph)
    }

    #[test]
    fn integrates_new_source() {
        let (dataset, store, model, mut graph) = setup();
        let before = graph.len();
        let out =
            integrate_source(&model, &store, &dataset, &mut graph, SourceId(6)).unwrap();
        assert!(out.scored_pairs > 0);
        assert_eq!(graph.len(), before + out.scored_pairs);
        // Most aligned properties should attach to something.
        assert!(!out.attached.is_empty(), "nothing attached");
        // All attached/novel properties belong to the new source.
        for p in out.attached.iter().chain(&out.novel) {
            assert_eq!(p.source, SourceId(6));
        }
        // Attached ∪ novel = all new-source properties.
        let total = out.attached.len() + out.novel.len();
        let expected = dataset
            .properties()
            .iter()
            .filter(|p| p.source == SourceId(6))
            .count();
        assert_eq!(total, expected);
    }

    #[test]
    fn attached_properties_are_mostly_correct() {
        let (dataset, store, model, mut graph) = setup();
        let out =
            integrate_source(&model, &store, &dataset, &mut graph, SourceId(6)).unwrap();
        // For attached properties, check the cluster actually contains a
        // same-reference partner more often than not.
        let mut good = 0;
        let mut bad = 0;
        for p in &out.attached {
            let Some(reference) = dataset.alignment_of(p) else {
                bad += 1;
                continue;
            };
            let idx = out.clustering.cluster_of(p).unwrap();
            let cluster = &out.clustering.clusters()[idx];
            let has_partner = cluster.iter().any(|q| {
                q != p && dataset.alignment_of(q) == Some(reference)
            });
            if has_partner {
                good += 1;
            } else {
                bad += 1;
            }
        }
        assert!(
            good > bad,
            "attachment quality too low: {good} good vs {bad} bad"
        );
    }

    #[test]
    fn unknown_source_is_error() {
        let (dataset, store, model, mut graph) = setup();
        let err = integrate_source(&model, &store, &dataset, &mut graph, SourceId(99));
        assert!(matches!(err, Err(CoreError::EmptySource(99))));
    }
}
