//! Deterministic HNSW-style navigable small-world graph over property
//! vectors.
//!
//! Standard HNSW (Malkov & Yashunin 2018): every node draws a geometric
//! level, lives in all layers up to it, and each layer is a small-world
//! graph searched greedily from an entry point. This implementation
//! trades the paper's lock-free parallel insertion for *bitwise
//! determinism*, which the rest of this repo treats as non-negotiable:
//!
//! * levels come from a splitmix64 draw keyed on `(seed, node)` — not on
//!   RNG state mutated by insertion order;
//! * nodes are inserted in ascending index order, serially;
//! * all similarity comparisons order by [`Neighbor`]'s total order
//!   (similarity via [`f64::total_cmp`], ties toward the smaller id), so
//!   no `sort_unstable` ambiguity or platform-dependent NaN handling;
//! * similarities use the single-accumulator-chain
//!   [`leapme_embedding::kernels::dot`] kernel, bitwise identical on
//!   every architecture.
//!
//! Same config + same vectors ⇒ byte-identical graph (`HnswIndex`
//! derives `PartialEq`; the index test suite pins this), and therefore
//! identical candidate sets at any `LEAPME_THREADS`.
//!
//! Construction polls a [`CancelCheck`] once per insert and returns
//! [`CoreError::Cancelled`]; the half-built graph is dropped, so no
//! partial state outlives the error.

use super::{poll_cancel, CancelCheck, Neighbor, PropertyVectors};
use crate::CoreError;
use leapme_embedding::kernels::dot;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hard cap on sampled levels (a geometric draw at `m = 16` reaches
/// level 8 once per ~10⁹ nodes; 24 is unreachable in practice).
const MAX_LEVEL: usize = 24;

/// HNSW construction / search knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max links per node per layer (layer 0 uses `2m`). Larger = denser
    /// graph, better recall, more memory.
    pub m: usize,
    /// Beam width during construction. Larger = better graph quality,
    /// slower build.
    pub ef_construction: usize,
    /// Default beam width during search (clamped to ≥ the requested `k`
    /// plus slack). Larger = better recall, slower queries — the main
    /// recall/latency trade-off knob.
    pub ef_search: usize,
    /// Level-assignment seed.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 96,
            seed: 0x485753, // "HSW"
        }
    }
}

/// Stamp-based visited set: O(1) clear between searches, no per-query
/// allocation once warmed.
#[derive(Debug)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// A set over ids `0..n`.
    pub fn new(n: usize) -> Self {
        VisitedSet {
            stamps: vec![0; n],
            epoch: 0,
        }
    }

    /// Start a fresh traversal.
    pub fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could alias the new epoch.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `i` visited; returns `true` iff it was not yet visited this
    /// traversal.
    pub fn visit(&mut self, i: u32) -> bool {
        let s = &mut self.stamps[i as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }
}

/// The navigable small-world graph. Holds only topology — vector data
/// stays in the [`PropertyVectors`] it was built over, which callers
/// pass back in at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct HnswIndex {
    config: HnswConfig,
    /// `links[node][level]` → neighbor ids; nodes absent from the index
    /// (zero vectors) have an empty outer vec.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point (highest-level node), if any node was inserted.
    entry: Option<u32>,
    /// Level of the entry point.
    top_level: usize,
    /// Number of inserted nodes.
    inserted: usize,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl HnswIndex {
    /// Build the graph over every non-zero row of `vectors`, in
    /// ascending row order. Deterministic in `(config, vectors)`; polls
    /// `cancel` once per insert.
    pub fn build(
        vectors: &PropertyVectors,
        config: HnswConfig,
        cancel: CancelCheck<'_>,
    ) -> Result<Self, CoreError> {
        assert!(config.m >= 2, "HNSW needs m ≥ 2");
        assert!(config.ef_construction >= 1, "HNSW needs ef_construction ≥ 1");
        let n = vectors.len();
        let mut index = HnswIndex {
            config,
            links: vec![Vec::new(); n],
            entry: None,
            top_level: 0,
            inserted: 0,
        };
        let ml = 1.0 / (config.m as f64).ln();
        let mut visited = VisitedSet::new(n);
        for i in 0..n {
            poll_cancel(cancel)?;
            if !vectors.non_zero[i] {
                continue;
            }
            index.insert(vectors, i as u32, ml, &mut visited);
        }
        Ok(index)
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// The neighbor lists of `node` (empty if absent) — exposed for the
    /// determinism tests.
    pub fn neighbors(&self, node: u32) -> &[Vec<u32>] {
        &self.links[node as usize]
    }

    /// Geometric level draw for `node`, independent of insertion history.
    fn sample_level(seed: u64, node: u32, ml: f64) -> usize {
        let h = splitmix64(seed ^ u64::from(node).wrapping_mul(0x9E3779B97F4A7C15));
        // Map the top 53 bits into (0, 1]; -ln(u)·ml is the standard
        // geometric level distribution.
        let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        (((-u.ln()) * ml).floor() as usize).min(MAX_LEVEL)
    }

    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    fn insert(&mut self, vectors: &PropertyVectors, i: u32, ml: f64, visited: &mut VisitedSet) {
        let level = Self::sample_level(self.config.seed, i, ml);
        self.links[i as usize] = vec![Vec::new(); level + 1];
        self.inserted += 1;
        let Some(entry) = self.entry else {
            self.entry = Some(i);
            self.top_level = level;
            return;
        };

        let q = vectors.vector(i as usize);
        let mut ep = vec![Neighbor {
            sim: dot(q, vectors.vector(entry as usize)),
            id: entry,
        }];
        // Greedy descent through layers above the new node's level.
        for l in ((level + 1)..=self.top_level).rev() {
            ep = self.search_layer(vectors, q, &ep, 1, l, visited);
        }
        // Beam search + connect on the layers the node joins.
        for l in (0..=level.min(self.top_level)).rev() {
            let w = self.search_layer(vectors, q, &ep, self.config.ef_construction, l, visited);
            let m_l = self.max_links(l);
            let chosen = self.select_neighbors(vectors, &w, self.config.m);
            for &e in &chosen {
                self.links[e as usize][l].push(i);
                if self.links[e as usize][l].len() > m_l {
                    self.prune(vectors, e, l, m_l);
                }
            }
            self.links[i as usize][l] = chosen;
            ep = w;
        }
        if level > self.top_level {
            self.entry = Some(i);
            self.top_level = level;
        }
    }

    /// Re-select the links of `e` at `l` down to `max` using the same
    /// diversity heuristic as insertion.
    fn prune(&mut self, vectors: &PropertyVectors, e: u32, l: usize, max: usize) {
        let base = vectors.vector(e as usize);
        let mut cands: Vec<Neighbor> = self.links[e as usize][l]
            .iter()
            .map(|&j| Neighbor {
                sim: dot(base, vectors.vector(j as usize)),
                id: j,
            })
            .collect();
        cands.sort_by(|a, b| b.cmp(a));
        self.links[e as usize][l] = self.select_neighbors(vectors, &cands, max);
    }

    /// Malkov's heuristic neighbor selection (Algorithm 4, with pruned-
    /// connection fill): walk candidates best-first, keep one only if it
    /// is closer to the query than to every already-kept neighbor — this
    /// spreads links across directions, which is what keeps clustered
    /// data (near-duplicate property names!) navigable. Backfill from
    /// the discards if fewer than `m` survive.
    fn select_neighbors(
        &self,
        vectors: &PropertyVectors,
        candidates: &[Neighbor],
        m: usize,
    ) -> Vec<u32> {
        let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
        let mut discarded: Vec<u32> = Vec::new();
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let cv = vectors.vector(c.id as usize);
            let diverse = selected
                .iter()
                .all(|s| dot(cv, vectors.vector(s.id as usize)) < c.sim);
            if diverse {
                selected.push(c);
            } else {
                discarded.push(c.id);
            }
        }
        let mut out: Vec<u32> = selected.iter().map(|n| n.id).collect();
        for id in discarded {
            if out.len() >= m {
                break;
            }
            out.push(id);
        }
        out
    }

    /// Classic ef-bounded best-first search on one layer; returns up to
    /// `ef` hits, best-first.
    fn search_layer(
        &self,
        vectors: &PropertyVectors,
        q: &[f32],
        entry_points: &[Neighbor],
        ef: usize,
        level: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Neighbor> {
        visited.begin();
        // `candidates` pops best-first; `results` (Reverse) pops
        // worst-first so the beam can evict.
        let mut candidates: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut results: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
        for &ep in entry_points {
            if visited.visit(ep.id) {
                candidates.push(ep);
                results.push(Reverse(ep));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
        while let Some(c) = candidates.pop() {
            if results.len() >= ef {
                if let Some(&Reverse(worst)) = results.peek() {
                    if c < worst {
                        break;
                    }
                }
            }
            let node_links = &self.links[c.id as usize];
            if level >= node_links.len() {
                continue;
            }
            for &e in &node_links[level] {
                if !visited.visit(e) {
                    continue;
                }
                let cand = Neighbor {
                    sim: dot(q, vectors.vector(e as usize)),
                    id: e,
                };
                let admit = match results.peek() {
                    Some(&Reverse(worst)) if results.len() >= ef => cand > worst,
                    _ => true,
                };
                if admit {
                    candidates.push(cand);
                    results.push(Reverse(cand));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Approximate nearest neighbors of an arbitrary query vector:
    /// best-first hits on layer 0 with beam `ef` (clamped ≥ 1). No
    /// source filtering — callers filter and truncate.
    pub fn search(
        &self,
        vectors: &PropertyVectors,
        q: &[f32],
        ef: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Neighbor> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut ep = vec![Neighbor {
            sim: dot(q, vectors.vector(entry as usize)),
            id: entry,
        }];
        for l in (1..=self.top_level).rev() {
            ep = self.search_layer(vectors, q, &ep, 1, l, visited);
        }
        self.search_layer(vectors, q, &ep, ef.max(1), 0, visited)
    }

    /// Top-`k` *cross-source* neighbors of indexed node `i`: an ef-beam
    /// search (beam = `max(ef_search, k + 16)` for headroom) filtered to
    /// other sources, truncated to `k`. Mirrors
    /// [`PropertyVectors::top_k`], the exact oracle.
    pub fn search_node(
        &self,
        vectors: &PropertyVectors,
        i: usize,
        k: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Neighbor> {
        if !vectors.non_zero[i] || k == 0 {
            return Vec::new();
        }
        let ef = self.config.ef_search.max(k + 16);
        let src = vectors.sources[i];
        let mut hits = self.search(vectors, vectors.vector(i), ef, visited);
        hits.retain(|n| n.id as usize != i && vectors.sources[n.id as usize] != src);
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_draw_is_geometricish_and_capped() {
        let ml = 1.0 / 16f64.ln();
        let mut counts = [0usize; 4];
        for i in 0..10_000u32 {
            let l = HnswIndex::sample_level(7, i, ml);
            assert!(l <= MAX_LEVEL);
            if l < 4 {
                counts[l] += 1;
            }
        }
        // P(level ≥ 1) = 1/m ≈ 6.25%.
        assert!(counts[0] > 8_500, "{counts:?}");
        assert!(counts[1] > 200 && counts[1] < 1_200, "{counts:?}");
    }

    #[test]
    fn visited_set_survives_epoch_wrap() {
        let mut v = VisitedSet::new(4);
        v.epoch = u32::MAX - 1;
        v.begin();
        assert!(v.visit(0));
        assert!(!v.visit(0));
        v.begin(); // wraps to 0 → resets to 1
        assert!(v.visit(0));
        assert!(v.visit(1));
        assert!(!v.visit(1));
    }
}
