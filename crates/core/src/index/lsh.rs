//! Banded minhash retrieval over property *names* — the
//! `leapme-baselines` LSH substrate promoted into the production
//! blocking path.
//!
//! The evaluation-only [`leapme_baselines::lsh::LshMatcher`] fingerprints
//! properties by their instance-value tokens and answers pairwise
//! `is_candidate` queries — still O(n²) to enumerate. This index instead
//! fingerprints the *name* (tokens plus character 3-gram shingles, so
//! typos and style mangling still overlap), hashes each signature band
//! into buckets, and answers top-k retrieval per property by scoring
//! only co-bucketed properties with the minhash Jaccard estimate. Name
//! surface similarity is exactly the signal the embedding path is blind
//! to when names share tokens but the tokens are out-of-vocabulary — the
//! two retrievers union into the `combined` blocking mode.
//!
//! Determinism: signatures come from the seeded
//! [`leapme_baselines::minhash::MinHasher`] universal-hash family;
//! retrieval walks each property's own bands (never `HashMap` iteration
//! order) and bucket membership lists are in ascending-id insertion
//! order; scoring ties break toward the smaller id via [`Neighbor`].

use super::{hnsw::VisitedSet, poll_cancel, CancelCheck, Neighbor};
use crate::CoreError;
use leapme_baselines::minhash::MinHasher;
use leapme_data::model::PropertyKey;
use std::collections::HashMap;

/// Banding configuration for the name-LSH index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameLshConfig {
    /// Signature length (`num_hashes / band_size` bands). More hashes =
    /// sharper Jaccard estimates and more bands to collide on.
    pub num_hashes: usize,
    /// Rows per band. Smaller bands fire on lower Jaccard (higher
    /// recall, more candidates); `s`-similar pairs collide on one band
    /// with probability `s^band_size`.
    pub band_size: usize,
    /// Minhash family seed.
    pub seed: u64,
    /// Buckets larger than this are skipped at query time (ubiquitous
    /// token bands — the stop-token guard of the banding world).
    pub max_bucket: usize,
}

impl Default for NameLshConfig {
    fn default() -> Self {
        NameLshConfig {
            num_hashes: 48,
            band_size: 3,
            seed: 0x15AB_0007,
            max_bucket: 128,
        }
    }
}

/// The banded minhash index over property-name token/shingle sets.
#[derive(Debug, Clone, PartialEq)]
pub struct NameLshIndex {
    config: NameLshConfig,
    /// Minhash signature per property (row order = the dataset's sorted
    /// property list, same ids as [`super::PropertyVectors`]).
    signatures: Vec<Vec<u64>>,
    /// `properties[i].source.0`, for cross-source filtering.
    sources: Vec<u16>,
    /// Band hash → member property ids (ascending).
    buckets: HashMap<u64, Vec<u32>>,
}

/// FNV-1a over a band's position and row values.
fn band_key(band_idx: usize, rows: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut step = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    step(band_idx as u64);
    for &r in rows {
        step(r);
    }
    h
}

/// The item set a property name is fingerprinted by: lowercase tokens
/// (prefixed `t:`) plus character 3-gram shingles of the
/// alphanumeric-collapsed name (prefixed `g:`).
fn name_items(name: &str) -> Vec<String> {
    let mut items: Vec<String> = leapme_embedding::tokenize::tokenize(name)
        .into_iter()
        .map(|t| format!("t:{t}"))
        .collect();
    let collapsed: Vec<char> = name
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect();
    for w in collapsed.windows(3) {
        items.push(format!("g:{}{}{}", w[0], w[1], w[2]));
    }
    items.sort();
    items.dedup();
    items
}

impl NameLshIndex {
    /// Fingerprint and bucket every property. Deterministic in
    /// `(config, properties)`; polls `cancel` once per property.
    ///
    /// # Panics
    ///
    /// Panics if `band_size` is 0 or larger than `num_hashes`.
    pub fn build(
        properties: &[PropertyKey],
        config: NameLshConfig,
        cancel: CancelCheck<'_>,
    ) -> Result<Self, CoreError> {
        assert!(
            config.band_size > 0 && config.band_size <= config.num_hashes,
            "band_size must be in 1..=num_hashes"
        );
        let hasher = MinHasher::new(config.num_hashes, config.seed);
        let mut signatures = Vec::with_capacity(properties.len());
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, p) in properties.iter().enumerate() {
            poll_cancel(cancel)?;
            let items = name_items(&p.name);
            let sig = hasher.signature(items.iter().map(String::as_str));
            // Empty item sets have all-sentinel signatures; bucketing
            // them would make every empty name collide with every other.
            if !items.is_empty() {
                for (b, rows) in sig.chunks(config.band_size).enumerate() {
                    buckets
                        .entry(band_key(b, rows))
                        .or_default()
                        .push(i as u32);
                }
            }
            signatures.push(sig);
        }
        Ok(NameLshIndex {
            config,
            signatures,
            sources: properties.iter().map(|p| p.source.0).collect(),
            buckets,
        })
    }

    /// Number of fingerprinted properties.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Top-`k` cross-source candidates for property `i`: union of its
    /// band buckets (oversized buckets skipped), scored by estimated
    /// Jaccard, deterministic [`Neighbor`] order, truncated to `k`.
    pub fn search_node(&self, i: usize, k: usize, visited: &mut VisitedSet) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        visited.begin();
        visited.visit(i as u32);
        let sig = &self.signatures[i];
        let src = self.sources[i];
        let mut hits: Vec<Neighbor> = Vec::new();
        for (b, rows) in sig.chunks(self.config.band_size).enumerate() {
            if rows.iter().all(|&r| r == u64::MAX) {
                continue; // empty-set sentinel band
            }
            let Some(members) = self.buckets.get(&band_key(b, rows)) else {
                continue;
            };
            if members.len() > self.config.max_bucket {
                continue; // stop band
            }
            for &j in members {
                if !visited.visit(j) || self.sources[j as usize] == src {
                    continue;
                }
                let est = MinHasher::estimate_jaccard(sig, &self.signatures[j as usize]);
                if est > 0.0 {
                    hits.push(Neighbor {
                        sim: est,
                        id: j,
                    });
                }
            }
        }
        hits.sort_by(|a, b| b.cmp(a));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::SourceId;

    fn props(names: &[(u16, &str)]) -> Vec<PropertyKey> {
        names
            .iter()
            .map(|&(s, n)| PropertyKey::new(SourceId(s), n))
            .collect()
    }

    #[test]
    fn near_duplicate_names_collide_exact_before_fuzzy() {
        let ps = props(&[
            (0, "camera resolution"),
            (1, "cameraResolution"),
            (2, "sensor_width"),
            (3, "totally unrelated thing"),
        ]);
        let idx = NameLshIndex::build(&ps, NameLshConfig::default(), None).unwrap();
        let mut v = VisitedSet::new(ps.len());
        let hits = idx.search_node(0, 3, &mut v);
        assert!(!hits.is_empty());
        // The style-mangled twin tokenizes identically → top hit.
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].sim > 0.9, "{hits:?}");
    }

    #[test]
    fn same_source_and_self_are_filtered() {
        let ps = props(&[(0, "alpha beta"), (0, "alpha beta"), (1, "alpha beta")]);
        // (duplicate names in one source collapse in real datasets; here
        // they stress the self/source filters)
        let idx = NameLshIndex::build(&ps, NameLshConfig::default(), None).unwrap();
        let mut v = VisitedSet::new(ps.len());
        let hits = idx.search_node(0, 10, &mut v);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = props(&[(0, "screen size"), (1, "screenSize"), (2, "display diagonal")]);
        let a = NameLshIndex::build(&ps, NameLshConfig::default(), None).unwrap();
        let b = NameLshIndex::build(&ps, NameLshConfig::default(), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cancelled_build_returns_cancelled() {
        let ps = props(&[(0, "a b"), (1, "c d")]);
        let cancel = || true;
        let err = NameLshIndex::build(&ps, NameLshConfig::default(), Some(&cancel)).unwrap_err();
        assert!(matches!(err, CoreError::Cancelled));
    }
}
