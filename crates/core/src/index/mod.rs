//! Sublinear candidate generation: index-backed top-k retrieval over
//! property vectors (DESIGN.md §12).
//!
//! Every earlier blocking strategy still *touches* all O(n²) cross-source
//! pairs before filtering; at the roadmap's 100k–1M-property scale that
//! is 10⁹–10¹² pair visits. This module replaces enumeration with
//! retrieval:
//!
//! * [`PropertyVectors`] — the shared flat matrix of L2-normalized
//!   average-name-embedding vectors, built once per dataset. After
//!   normalization, cosine degenerates to the deterministic
//!   [`leapme_embedding::kernels::dot`] kernel, and the per-query norm
//!   work the old `EmbeddingBlocker` recomputed in its inner loop is
//!   hoisted into the build. Its exact [`PropertyVectors::top_k`] scan
//!   doubles as the brute-force oracle that recall tests and the bench
//!   measure the indexes against.
//! * [`hnsw`] — a navigable-small-world graph ([`hnsw::HnswIndex`]) with
//!   deterministic seeded construction: same seed → same levels, same
//!   insertion order, same tie-breaks → bitwise-identical graph.
//! * [`lsh`] — banded minhash retrieval over *name* token/shingle sets
//!   ([`lsh::NameLshIndex`]), promoting the `leapme-baselines`
//!   minhash/banding substrate from evaluation-only code into the
//!   production blocking path.
//!
//! Both index builds poll the PR4 [`crate::cancel::CancelToken`] checker
//! and return [`CoreError::Cancelled`] without leaking partial state —
//! construction is by-value, so a cancelled build simply drops its
//! half-built graph.

pub mod hnsw;
pub mod lsh;

use crate::CoreError;
use leapme_data::model::{Dataset, PropertyKey};
use leapme_embedding::kernels::dot;
use leapme_embedding::store::EmbeddingStore;
pub use leapme_features::CancelCheck;

/// One scored retrieval hit: similarity plus the index of the matched
/// property in the dataset's sorted property list.
///
/// Ordering is total and deterministic: higher similarity first, ties
/// broken toward the smaller property index ([`f64::total_cmp`], so no
/// NaN panics and no platform variation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Similarity (inner product of unit vectors ∈ [-1, 1], or a Jaccard
    /// estimate ∈ [0, 1] from the LSH path).
    pub sim: f64,
    /// Index into [`PropertyVectors::properties`].
    pub id: u32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// `self > other` ⇔ `self` is the *better* hit (greater similarity,
    /// or equal similarity and smaller id) — so a `BinaryHeap<Neighbor>`
    /// pops best-first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The flat, pre-normalized property-vector matrix every retrieval path
/// shares.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyVectors {
    /// All dataset properties, sorted (the row order of the matrix).
    pub properties: Vec<PropertyKey>,
    /// `properties[i].source.0`, denormalized for branch-cheap filtering.
    pub sources: Vec<u16>,
    /// Embedding dimensionality.
    pub dim: usize,
    /// `properties.len() × dim`, row-major; rows are unit-L2 or all-zero
    /// (fully out-of-vocabulary names keep the paper's zero-vector
    /// convention and are excluded from indexing and querying).
    data: Vec<f32>,
    /// Whether row `i` is non-zero (indexable).
    pub non_zero: Vec<bool>,
}

impl PropertyVectors {
    /// Build the matrix: average name embeddings, then normalize each
    /// row once. The normalization divides in `f64` and rounds once to
    /// `f32`, so `dot(row_i, row_j)` tracks `cosine(raw_i, raw_j)` to
    /// ~1e-7 — and every subsequent query costs one multiply-add per
    /// element instead of three.
    pub fn build(dataset: &Dataset, embeddings: &EmbeddingStore) -> Self {
        let properties = dataset.properties();
        let dim = embeddings.dim();
        let n = properties.len();
        let mut data = vec![0.0f32; n * dim];
        let mut non_zero = vec![false; n];
        for (i, p) in properties.iter().enumerate() {
            let row = &mut data[i * dim..(i + 1) * dim];
            embeddings.average_text_into(&p.name, row);
            let norm = row
                .iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
                .sqrt();
            if norm > 0.0 {
                non_zero[i] = true;
                for x in row.iter_mut() {
                    *x = (f64::from(*x) / norm) as f32;
                }
            }
        }
        let sources = properties.iter().map(|p| p.source.0).collect();
        PropertyVectors {
            properties,
            sources,
            dim,
            data,
            non_zero,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// Row `i` of the matrix.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Exact top-`k` cross-source neighbors of row `i` by inner product
    /// — the brute-force oracle. O(n·dim) per query; deterministic
    /// [`Neighbor`] ordering. Returns an empty list for zero rows.
    pub fn top_k(&self, i: usize, k: usize) -> Vec<Neighbor> {
        if !self.non_zero[i] || k == 0 {
            return Vec::new();
        }
        let q = self.vector(i);
        let src = self.sources[i];
        // Min-heap of the k best seen so far (Reverse pops worst-first).
        let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
        for j in 0..self.len() {
            if j == i || self.sources[j] == src || !self.non_zero[j] {
                continue;
            }
            let cand = Neighbor {
                sim: dot(q, self.vector(j)),
                id: j as u32,
            };
            if heap.len() < k {
                heap.push(std::cmp::Reverse(cand));
            } else if let Some(&std::cmp::Reverse(worst)) = heap.peek() {
                if cand > worst {
                    heap.pop();
                    heap.push(std::cmp::Reverse(cand));
                }
            }
        }
        let mut out: Vec<Neighbor> = heap.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }
}

/// Poll a cancellation checker, mapping a positive answer to
/// [`CoreError::Cancelled`].
pub(crate) fn poll_cancel(cancel: CancelCheck<'_>) -> Result<(), CoreError> {
    match cancel {
        Some(c) if c() => Err(CoreError::Cancelled),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering_is_sim_then_id() {
        let a = Neighbor { sim: 0.9, id: 5 };
        let b = Neighbor { sim: 0.9, id: 2 };
        let c = Neighbor { sim: 0.8, id: 0 };
        assert!(b > a, "equal sim breaks toward smaller id");
        assert!(a > c);
        let mut v = [a, c, b];
        v.sort_by(|x, y| y.cmp(x));
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 5, 0]);
    }
}
