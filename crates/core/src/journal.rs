//! Append-only, checksummed run journal for resumable evaluations.
//!
//! A long repeated-evaluation run (`run_repeated` executes up to 25
//! trainings per Table II cell) can die mid-way — OOM kill, deadline,
//! Ctrl-C. The journal makes the completed portion durable: every
//! finished repetition is appended as one line
//!
//! ```text
//! <16 hex digits of CRC-64/XZ over the JSON>\t<compact JSON>\n
//! ```
//!
//! and fsynced, so on restart [`RunJournal::open`] replays the intact
//! records and the runner re-executes only the missing repetitions.
//!
//! Corruption policy (mirrors the checkpoint container's): a *trailing*
//! corrupt record — a torn final append, detected as an unterminated
//! last line or a checksum-mismatched final record — is truncated away
//! and the run continues, because a crash mid-append is exactly the
//! failure the journal exists to survive. Corruption *before* the last
//! record means the file was damaged at rest and surfaces as a typed
//! [`JournalError::Corrupt`]; it is never silently skipped.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use leapme_nn::checkpoint::crc64;
use serde::{Deserialize, Serialize};

/// Errors produced by the run journal.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record *before* the final one failed validation (bad structure,
    /// checksum mismatch): at-rest corruption the journal will not paper
    /// over.
    Corrupt {
        /// Zero-based index of the damaged record.
        record: usize,
        /// What failed to validate.
        reason: String,
    },
    /// A checksummed record did not deserialize into the requested type.
    Serde {
        /// Zero-based index of the offending record.
        record: usize,
        /// Deserializer error text.
        message: String,
    },
    /// A bounded-retry append ([`RunJournal::append_retrying`]) spent
    /// its whole attempt budget on transient I/O failures.
    RetriesExhausted {
        /// How many append attempts were made.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<JournalError>,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { record, reason } => {
                write!(f, "journal record {record} corrupt: {reason}")
            }
            JournalError::Serde { record, message } => {
                write!(f, "journal record {record} undecodable: {message}")
            }
            JournalError::RetriesExhausted { attempts, last } => {
                write!(f, "journal append failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open, validated journal file.
///
/// Appends are serialized through an internal mutex, so a shared
/// reference can be handed to parallel workers.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: Mutex<File>,
    /// JSON payloads of the records that were intact at open time.
    replayed: Vec<String>,
    /// Whether a torn/corrupt trailing record was truncated at open.
    truncated_tail: bool,
}

/// Validate one complete journal line (without its `\n`), returning the
/// JSON payload.
fn validate_line(line: &[u8]) -> Result<String, String> {
    let tab = line
        .iter()
        .position(|&b| b == b'\t')
        .ok_or("missing checksum separator")?;
    let (hex, json) = (&line[..tab], &line[tab + 1..]);
    if hex.len() != 16 {
        return Err(format!("checksum field is {} bytes, want 16", hex.len()));
    }
    let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII checksum".to_string())?;
    let expected = u64::from_str_radix(hex, 16).map_err(|_| format!("bad checksum hex {hex:?}"))?;
    let actual = crc64(json);
    if expected != actual {
        return Err(format!(
            "checksum mismatch: recorded {expected:016x}, computed {actual:016x}"
        ));
    }
    let json = std::str::from_utf8(json).map_err(|_| "payload is not UTF-8".to_string())?;
    Ok(json.to_string())
}

impl RunJournal {
    /// Open (or create) the journal at `path`, replaying and validating
    /// every record.
    ///
    /// A corrupt **final** record is truncated off the file and noted in
    /// [`Self::truncated_tail`]; a corrupt earlier record is a
    /// [`JournalError::Corrupt`].
    pub fn open(path: &Path) -> Result<Self, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        // Complete records end in '\n'; anything after the last '\n' is
        // a torn tail from an interrupted append.
        let complete_len = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let mut truncated_tail = complete_len < bytes.len();

        let mut replayed = Vec::new();
        let mut valid_len = 0usize;
        let lines: Vec<&[u8]> = if complete_len == 0 {
            Vec::new()
        } else {
            bytes[..complete_len - 1].split(|&b| b == b'\n').collect()
        };
        for (i, line) in lines.iter().enumerate() {
            match validate_line(line) {
                Ok(json) => {
                    replayed.push(json);
                    valid_len += line.len() + 1;
                }
                Err(reason) if i + 1 == lines.len() => {
                    // Torn final append that happened to include a
                    // newline: drop it and continue.
                    let _ = reason;
                    truncated_tail = true;
                }
                Err(reason) => {
                    return Err(JournalError::Corrupt { record: i, reason });
                }
            }
        }

        if truncated_tail {
            // Physically remove the damaged tail so later readers see a
            // clean file.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }

        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RunJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            replayed,
            truncated_tail,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of intact records replayed at open.
    pub fn len(&self) -> usize {
        self.replayed.len()
    }

    /// Whether no intact records were replayed at open.
    pub fn is_empty(&self) -> bool {
        self.replayed.is_empty()
    }

    /// Whether a torn/corrupt trailing record was truncated at open.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// The records replayed at open, deserialized as `T`.
    pub fn replayed<T: Deserialize>(&self) -> Result<Vec<T>, JournalError> {
        self.replayed
            .iter()
            .enumerate()
            .map(|(record, json)| {
                serde_json::from_str(json).map_err(|e| JournalError::Serde {
                    record,
                    message: e.to_string(),
                })
            })
            .collect()
    }

    /// Append one record and fsync it. The record is durable once this
    /// returns `Ok`.
    pub fn append<T: Serialize>(&self, record: &T) -> Result<(), JournalError> {
        let json = serde_json::to_string(record).map_err(|e| JournalError::Serde {
            record: self.replayed.len(),
            message: e.to_string(),
        })?;
        debug_assert!(!json.contains('\n'), "compact JSON is single-line");
        let line = format!("{:016x}\t{}\n", crc64(json.as_bytes()), json);

        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = injected_append_fault(&file, line.as_bytes()) {
            return Err(e.into());
        }
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(())
    }

    /// Append one record with a bounded-retry budget for transient I/O
    /// failures.
    ///
    /// A failed append may have left a torn partial line (that is
    /// exactly what the `torn` fault kind injects), so each retry first
    /// *repairs the tail* — truncating the file back to its pre-append
    /// length — before rewriting the full line. Without that repair a
    /// retried append would concatenate onto the torn prefix and
    /// corrupt the retried record too. After `policy.max_attempts`
    /// failures the typed [`JournalError::RetriesExhausted`] surfaces;
    /// there is no unbounded loop.
    pub fn append_retrying<T: Serialize>(
        &self,
        record: &T,
        policy: &crate::retry::RetryPolicy,
    ) -> Result<(), JournalError> {
        let json = serde_json::to_string(record).map_err(|e| JournalError::Serde {
            record: self.replayed.len(),
            message: e.to_string(),
        })?;
        debug_assert!(!json.contains('\n'), "compact JSON is single-line");
        let line = format!("{:016x}\t{}\n", crc64(json.as_bytes()), json);

        crate::retry::with_retry(
            policy,
            |e: &JournalError| matches!(e, JournalError::Io(_)),
            || self.append_line_repairing(line.as_bytes()),
        )
        .map_err(|e| JournalError::RetriesExhausted {
            attempts: e.attempts,
            last: Box::new(e.last),
        })
    }

    /// One append attempt that leaves the file at its pre-append length
    /// on failure, so a follow-up attempt starts from a clean tail.
    fn append_line_repairing(&self, line: &[u8]) -> Result<(), JournalError> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let pre_len = file.metadata()?.len();
        let attempt = |file: &mut File| -> std::io::Result<()> {
            if let Some(e) = injected_append_fault(file, line) {
                return Err(e);
            }
            file.write_all(line)?;
            file.sync_data()
        };
        match attempt(&mut file) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Repair: drop any torn bytes this attempt left behind.
                // Best-effort — if even the truncate fails, the next
                // attempt's repair (or reopen-time truncation) covers it.
                let _ = file.set_len(pre_len);
                let _ = file.sync_data();
                Err(e.into())
            }
        }
    }
}

/// Fault hook for `core.journal.append`: `torn` leaves a prefix of the
/// line in the file (as if the process died mid-append) and reports the
/// write as failed; `io` fails without writing.
#[cfg(feature = "faults")]
fn injected_append_fault(file: &File, line: &[u8]) -> Option<std::io::Error> {
    use leapme_faults::{fires, sites, FaultKind};
    match fires(sites::JOURNAL_APPEND)? {
        FaultKind::Torn => {
            let mut f = file;
            let _ = f.write_all(&line[..line.len() / 2]);
            let _ = f.sync_data();
            Some(std::io::Error::other("injected fault: torn journal append"))
        }
        FaultKind::Io => Some(std::io::Error::other("injected fault: journal append")),
        _ => None,
    }
}

#[cfg(not(feature = "faults"))]
fn injected_append_fault(_file: &File, _line: &[u8]) -> Option<std::io::Error> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        id: usize,
        score: f64,
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "leapme-journal-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.journal")
    }

    #[test]
    fn append_then_reopen_replays() {
        let path = tmp("replay");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path).unwrap();
        assert!(j.is_empty());
        for id in 0..3 {
            j.append(&Rec {
                id,
                score: id as f64 * 0.5,
            })
            .unwrap();
        }
        drop(j);
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 3);
        assert!(!j.truncated_tail());
        let recs: Vec<Rec> = j.replayed().unwrap();
        assert_eq!(recs[2], Rec { id: 2, score: 1.0 });
    }

    #[test]
    fn torn_tail_is_truncated_and_run_continues() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path).unwrap();
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        j.append(&Rec { id: 1, score: 1.0 }).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"deadbeefdeadbeef\t{\"id\":9").unwrap();
        }
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.truncated_tail());
        // The tail is physically gone: a further reopen is clean and the
        // journal stays appendable.
        j.append(&Rec { id: 2, score: 2.0 }).unwrap();
        drop(j);
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 3);
        assert!(!j.truncated_tail());
    }

    #[test]
    fn corrupt_final_complete_record_is_truncated() {
        let path = tmp("tail-flip");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path).unwrap();
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        j.append(&Rec { id: 1, score: 1.0 }).unwrap();
        drop(j);
        // Flip one payload byte in the final record (newline intact).
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.truncated_tail());
    }

    #[test]
    fn mid_file_corruption_is_a_typed_error() {
        let path = tmp("mid");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path).unwrap();
        for id in 0..3 {
            j.append(&Rec { id, score: 0.0 }).unwrap();
        }
        drop(j);
        // Corrupt the FIRST record; two intact records follow it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match RunJournal::open(&path) {
            Err(JournalError::Corrupt { record: 0, reason }) => {
                assert!(reason.contains("mismatch"), "{reason}");
            }
            other => panic!("expected Corrupt{{record:0}}, got {other:?}"),
        }
    }

    #[test]
    fn wrong_type_is_a_serde_error() {
        let path = tmp("serde");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path).unwrap();
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        drop(j);
        let j = RunJournal::open(&path).unwrap();
        #[derive(Debug, Deserialize)]
        struct Other {
            #[allow(dead_code)]
            name: String,
        }
        assert!(matches!(
            j.replayed::<Other>(),
            Err(JournalError::Serde { record: 0, .. })
        ));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn retrying_append_repairs_a_torn_tail_and_recovers() {
        use crate::retry::RetryPolicy;
        let path = tmp("retry-torn");
        let _ = std::fs::remove_file(&path);
        let site = leapme_faults::sites::JOURNAL_APPEND;
        let j = RunJournal::open(&path).unwrap();
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        let policy = RetryPolicy {
            base_delay: std::time::Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        // One torn append is absorbed: the retry truncates the torn
        // prefix and rewrites the record cleanly.
        leapme_faults::with_plan(&format!("seed=1;{site}:torn@1.0#1"), || {
            j.append_retrying(&Rec { id: 1, score: 1.0 }, &policy).unwrap();
        });
        drop(j);
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 2, "both records intact, no torn tail");
        assert!(!j.truncated_tail());
        let recs: Vec<Rec> = j.replayed().unwrap();
        assert_eq!(recs[1], Rec { id: 1, score: 1.0 });
    }

    #[cfg(feature = "faults")]
    #[test]
    fn retrying_append_exhausts_with_a_typed_error() {
        use crate::retry::RetryPolicy;
        let path = tmp("retry-exhaust");
        let _ = std::fs::remove_file(&path);
        let site = leapme_faults::sites::JOURNAL_APPEND;
        let j = RunJournal::open(&path).unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: std::time::Duration::from_micros(50),
            max_delay: std::time::Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        // The fault fires on every attempt: the budget is spent and the
        // typed exhaustion error carries the attempt count.
        leapme_faults::with_plan(&format!("seed=1;{site}:io@1.0"), || {
            let err = j.append_retrying(&Rec { id: 0, score: 0.0 }, &policy).unwrap_err();
            match err {
                JournalError::RetriesExhausted { attempts, last } => {
                    assert_eq!(attempts, 3);
                    assert!(matches!(*last, JournalError::Io(_)));
                }
                other => panic!("expected RetriesExhausted, got {other:?}"),
            }
        });
        // Once the fault plan is gone the same journal appends fine.
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        drop(j);
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_torn_append_is_survivable() {
        let path = tmp("fault-torn");
        let _ = std::fs::remove_file(&path);
        let site = leapme_faults::sites::JOURNAL_APPEND;
        let j = RunJournal::open(&path).unwrap();
        j.append(&Rec { id: 0, score: 0.0 }).unwrap();
        leapme_faults::with_plan(&format!("seed=1;{site}:torn@1.0#1"), || {
            let err = j.append(&Rec { id: 1, score: 1.0 }).unwrap_err();
            assert!(matches!(err, JournalError::Io(_)), "{err}");
        });
        drop(j);
        // The torn half-record is detected and truncated on reopen.
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.truncated_tail());
        let recs: Vec<Rec> = j.replayed().unwrap();
        assert_eq!(recs[0].id, 0);
    }
}

#[cfg(all(test, feature = "faults"))]
mod proptests {
    use super::*;
    use crate::retry::RetryPolicy;
    use proptest::prelude::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        id: usize,
        score: f64,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Convergence under repeated torn tails: for any fault seed,
        /// tear probability, and bounded number of torn appends, a
        /// sequence of `append_retrying` calls (budget > fault budget)
        /// leaves the journal holding exactly the appended records —
        /// every torn prefix repaired, nothing duplicated, nothing
        /// lost, and a reopen sees a clean (untruncated) tail.
        #[test]
        fn retrying_appends_converge_after_repeated_torn_tails(
            fault_seed in 1u64..500,
            prob_pct in 10u32..100,
            max_fires in 1u32..6,
            records in 2usize..8,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "leapme-journal-prop-{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("torn-{fault_seed}-{prob_pct}-{max_fires}-{records}.journal"));
            let _ = std::fs::remove_file(&path);

            let site = leapme_faults::sites::JOURNAL_APPEND;
            let policy = RetryPolicy {
                // More attempts per append than the plan can fire in
                // total, so every append must eventually land.
                max_attempts: max_fires + 2,
                base_delay: std::time::Duration::from_micros(10),
                max_delay: std::time::Duration::from_micros(20),
                ..RetryPolicy::default()
            };
            let spec = format!(
                "seed={fault_seed};{site}:torn@0.{prob_pct:02}#{max_fires}"
            );
            let j = RunJournal::open(&path).unwrap();
            leapme_faults::with_plan(&spec, || {
                for id in 0..records {
                    j.append_retrying(&Rec { id, score: id as f64 * 0.25 }, &policy).unwrap();
                }
            });
            drop(j);

            let j = RunJournal::open(&path).unwrap();
            prop_assert_eq!(j.len(), records, "record count after repeated tears");
            prop_assert!(!j.truncated_tail(), "tail must be clean after repairs");
            let recs: Vec<Rec> = j.replayed().unwrap();
            for (id, rec) in recs.iter().enumerate() {
                prop_assert_eq!(rec, &Rec { id, score: id as f64 * 0.25 });
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
