//! LEAPME core: the learning-based property-matching pipeline.
//!
//! This crate implements Algorithm 1 of the paper on top of the
//! substrates:
//!
//! * [`pipeline`] — [`pipeline::Leapme`] ties feature extraction
//!   (`leapme-features`), the dense classifier (`leapme-nn`), and feature
//!   standardization together: `fit` on labeled property pairs,
//!   `predict` a [`simgraph::SimilarityGraph`] over unlabeled pairs.
//! * [`sampling`] — the paper's evaluation protocol (§V-B): source-level
//!   train/test splits, training pairs restricted to pairs *within*
//!   training sources, 2 negatives sampled per positive.
//! * [`metrics`] — precision / recall / F1 plus mean ± std aggregation
//!   over repetitions.
//! * [`simgraph`] — the similarity graph of scored property pairs the
//!   paper produces for downstream fusion.
//! * [`cluster`] — property clustering over the similarity graph
//!   (connected components and star clustering), the paper's stated
//!   future-work extension (§VI).
//! * [`runner`] — repeated randomized evaluation (the paper runs 25
//!   random source combinations per cell of Table II), parallelized
//!   across repetitions.
//! * [`transfer`] — cross-domain transfer-learning evaluation (train on
//!   one product domain, test on another), mentioned in §V.
//!
//! # Example
//!
//! ```no_run
//! use leapme_core::pipeline::{Leapme, LeapmeConfig};
//! use leapme_core::sampling;
//! use leapme_data::domains::{generate, Domain};
//! use leapme_embedding::store::EmbeddingStore;
//! use leapme_features::PropertyFeatureStore;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dataset = generate(Domain::Headphones, 1);
//! let embeddings = EmbeddingStore::new(50); // or train with leapme-embedding
//! let store = PropertyFeatureStore::build(&dataset, &embeddings);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
//! let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
//! let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).unwrap();
//!
//! let test = sampling::test_pairs(&dataset, &split.train);
//! let graph = model.predict_graph(&store, &test).unwrap();
//! println!("{} matches", graph.matches(0.5).len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod blocking;
pub mod calibration;
pub mod cancel;
pub mod cluster;
pub mod continual;
pub mod feature_cache;
pub mod fusion;
pub mod importance;
pub mod incremental;
pub mod index;
pub mod journal;
pub mod metrics;
pub mod pipeline;
pub mod prcurve;
pub mod registry;
pub mod retry;
pub mod runner;
pub mod sampling;
pub mod scaler;
pub mod simgraph;
pub mod transfer;
pub mod tuning;

/// Errors produced by the LEAPME core.
#[derive(Debug)]
pub enum CoreError {
    /// No labeled training pairs were provided.
    NoTrainingData,
    /// Not enough sources for the requested split.
    InvalidSplit(String),
    /// A source offered for integration contributes zero properties.
    ///
    /// Distinct from [`CoreError::InvalidSplit`] so callers (the serve
    /// layer in particular) can map it to a client error instead of a
    /// server fault: an empty source is the *caller's* mistake.
    EmptySource(u16),
    /// Feature extraction failed (unknown property).
    Feature(leapme_features::vectorizer::FeatureError),
    /// The underlying network failed.
    Nn(leapme_nn::NnError),
    /// A worker thread panicked twice (once in parallel, once on the
    /// serial requeue), so its shard's work could not be recovered.
    WorkerPanic {
        /// Pipeline site where the worker died (e.g. `core.score.worker`).
        site: String,
        /// Rendered panic payload.
        payload: String,
    },
    /// The operation was cancelled cooperatively (deadline, signal, or
    /// an explicit [`cancel::CancelToken::cancel`] call); durable state
    /// was checkpointed first where configured.
    Cancelled,
    /// A model/checkpoint container failed to read, write, or validate.
    Checkpoint(leapme_nn::checkpoint::CheckpointError),
    /// The run journal failed (I/O or at-rest corruption).
    Journal(journal::JournalError),
    /// A bounded-retry budget was exhausted on a transient-I/O
    /// operation (journal append, checkpoint write).
    RetriesExhausted {
        /// What was being retried (e.g. `"model save"`).
        what: String,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<CoreError>,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoTrainingData => write!(f, "no labeled training pairs"),
            CoreError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
            CoreError::EmptySource(id) => {
                write!(f, "source {id} has no properties")
            }
            CoreError::Feature(e) => write!(f, "feature error: {e}"),
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::WorkerPanic { site, payload } => {
                write!(f, "worker panic at {site}: {payload}")
            }
            CoreError::Cancelled => write!(f, "run cancelled"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CoreError::Journal(e) => write!(f, "{e}"),
            CoreError::RetriesExhausted { what, attempts, last } => {
                write!(f, "{what} failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<leapme_features::vectorizer::FeatureError> for CoreError {
    fn from(e: leapme_features::vectorizer::FeatureError) -> Self {
        // Cancellation keeps its identity across layers so callers can
        // map every cancelled pipeline stage to one exit path.
        match e {
            leapme_features::vectorizer::FeatureError::Cancelled => CoreError::Cancelled,
            e => CoreError::Feature(e),
        }
    }
}

impl From<leapme_nn::NnError> for CoreError {
    fn from(e: leapme_nn::NnError) -> Self {
        match e {
            leapme_nn::NnError::Cancelled => CoreError::Cancelled,
            e => CoreError::Nn(e),
        }
    }
}

impl From<leapme_nn::checkpoint::CheckpointError> for CoreError {
    fn from(e: leapme_nn::checkpoint::CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

impl From<journal::JournalError> for CoreError {
    fn from(e: journal::JournalError) -> Self {
        CoreError::Journal(e)
    }
}
