//! Match-quality metrics: precision, recall, F1, and aggregation.
//!
//! The paper reports the standard P/R/F1 over property pairs; Table II
//! cells are averages over 25 randomized repetitions, which
//! [`MetricsSummary`] models with mean and standard deviation.

use leapme_data::model::PropertyPair;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Precision / recall / F1 with the underlying confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Precision `tp / (tp + fp)` (0 when no positives predicted).
    pub precision: f64,
    /// Recall `tp / (tp + fn)` (0 when there are no actual positives).
    pub recall: f64,
    /// F1 score (harmonic mean; 0 when P + R = 0).
    pub f1: f64,
}

impl Metrics {
    /// Compute metrics from confusion counts.
    ///
    /// ```
    /// use leapme_core::metrics::Metrics;
    /// let m = Metrics::from_counts(6, 2, 4);
    /// assert_eq!(m.precision, 0.75);
    /// assert_eq!(m.recall, 0.6);
    /// ```
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            tp,
            fp,
            fn_,
            precision,
            recall,
            f1,
        }
    }

    /// Compare a set of predicted matching pairs against the ground truth.
    ///
    /// `predicted` are the pairs the matcher calls matches; `actual` is
    /// the ground-truth set restricted to the evaluated candidate space.
    pub fn from_sets(predicted: &BTreeSet<PropertyPair>, actual: &BTreeSet<PropertyPair>) -> Self {
        let tp = predicted.intersection(actual).count();
        let fp = predicted.len() - tp;
        let fn_ = actual.len() - tp;
        Metrics::from_counts(tp, fp, fn_)
    }
}

/// Mean ± standard deviation of metrics over repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Number of repetitions aggregated.
    pub runs: usize,
    /// Mean precision.
    pub precision_mean: f64,
    /// Std-dev of precision.
    pub precision_std: f64,
    /// Mean recall.
    pub recall_mean: f64,
    /// Std-dev of recall.
    pub recall_std: f64,
    /// Mean F1.
    pub f1_mean: f64,
    /// Std-dev of F1.
    pub f1_std: f64,
}

impl MetricsSummary {
    /// Aggregate a non-empty slice of per-run metrics.
    ///
    /// Returns `None` for an empty slice.
    pub fn aggregate(runs: &[Metrics]) -> Option<Self> {
        if runs.is_empty() {
            return None;
        }
        let mean_std = |f: fn(&Metrics) -> f64| {
            let n = runs.len() as f64;
            let mean = runs.iter().map(f).sum::<f64>() / n;
            let var = runs.iter().map(|m| (f(m) - mean).powi(2)).sum::<f64>() / n;
            (mean, var.sqrt())
        };
        let (precision_mean, precision_std) = mean_std(|m| m.precision);
        let (recall_mean, recall_std) = mean_std(|m| m.recall);
        let (f1_mean, f1_std) = mean_std(|m| m.f1);
        Some(MetricsSummary {
            runs: runs.len(),
            precision_mean,
            precision_std,
            recall_mean,
            recall_std,
            f1_mean,
            f1_std,
        })
    }

    /// Table-style `P R F1` rendering with two decimals, like the paper.
    pub fn table_cell(&self) -> String {
        format!(
            "{:.2} {:.2} {:.2}",
            self.precision_mean, self.recall_mean, self.f1_mean
        )
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={} fp={} fn={})",
            self.precision, self.recall, self.f1, self.tp, self.fp, self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{PropertyKey, SourceId};

    fn pair(a: u16, an: &str, b: u16, bn: &str) -> PropertyPair {
        PropertyPair::new(
            PropertyKey::new(SourceId(a), an),
            PropertyKey::new(SourceId(b), bn),
        )
    }

    #[test]
    fn perfect_prediction() {
        let m = Metrics::from_counts(10, 0, 0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn zero_cases() {
        let m = Metrics::from_counts(0, 0, 0);
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
        let m = Metrics::from_counts(0, 5, 0);
        assert_eq!(m.precision, 0.0);
        let m = Metrics::from_counts(0, 0, 5);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn known_values() {
        // tp=6 fp=2 fn=4: P=0.75 R=0.6 F1=2*0.45/1.35
        let m = Metrics::from_counts(6, 2, 4);
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.6).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn from_sets_counts_overlap() {
        let predicted: BTreeSet<_> = [pair(0, "a", 1, "x"), pair(0, "b", 1, "y")].into();
        let actual: BTreeSet<_> = [pair(0, "a", 1, "x"), pair(0, "c", 1, "z")].into();
        let m = Metrics::from_sets(&predicted, &actual);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 1));
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
    }

    #[test]
    fn aggregate_mean_and_std() {
        let runs = vec![
            Metrics::from_counts(10, 0, 0), // P=R=F1=1
            Metrics::from_counts(0, 10, 10), // all zero
        ];
        let s = MetricsSummary::aggregate(&runs).unwrap();
        assert_eq!(s.runs, 2);
        assert!((s.f1_mean - 0.5).abs() < 1e-12);
        assert!((s.f1_std - 0.5).abs() < 1e-12);
        assert!(MetricsSummary::aggregate(&[]).is_none());
    }

    #[test]
    fn table_cell_format() {
        let s = MetricsSummary::aggregate(&[Metrics::from_counts(3, 1, 1)]).unwrap();
        assert_eq!(s.table_cell(), "0.75 0.75 0.75");
    }

    #[test]
    fn f1_between_p_and_r() {
        for (tp, fp, fn_) in [(5, 3, 1), (1, 9, 2), (7, 1, 6)] {
            let m = Metrics::from_counts(tp, fp, fn_);
            let lo = m.precision.min(m.recall);
            let hi = m.precision.max(m.recall);
            assert!(m.f1 >= lo - 1e-12 && m.f1 <= hi + 1e-12);
        }
    }
}
