//! The LEAPME pipeline: Algorithm 1, steps 5 (training and classification).
//!
//! Steps 1–4 (feature computation) live in `leapme-features`
//! ([`PropertyFeatureStore`]); this module adds the supervised part: fit
//! the paper's dense network (input → 128 → 64 → 2, batch size 32, staged
//! learning rate) on labeled pair vectors, then score unlabeled pairs,
//! producing the similarity graph.

use crate::scaler::Scaler;
use crate::simgraph::SimilarityGraph;
use crate::CoreError;
use leapme_data::model::PropertyPair;
use leapme_features::{CancelCheck, FeatureConfig, FeatureKind, FeatureScope, PropertyFeatureStore};
use leapme_nn::checkpoint::{self, CheckpointError, Decoder, Encoder, KIND_PIPELINE};
use leapme_nn::container2::{self, Opened, V2Container, V2Writer};
use leapme_nn::layers::{Activation, Dense};
use leapme_nn::matrix::Matrix;
use leapme_nn::network::{FitControl, Mlp, TrainConfig};
use leapme_nn::quant::{QuantWorkspace, QuantizedMlp, DEFAULT_TOLERANCE};
use leapme_nn::workspace::ScoreWorkspace;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Configuration of a LEAPME fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeapmeConfig {
    /// Which feature subset to use (paper §V-A; default: all features).
    pub features: FeatureConfig,
    /// Network training configuration (paper §IV-D defaults).
    pub train: TrainConfig,
    /// Decision threshold on the positive-class probability.
    pub threshold: f32,
    /// Seed for weight initialization.
    pub seed: u64,
    /// Hidden layer sizes (paper: `[128, 64]`). Exposed for ablations.
    pub hidden: Vec<usize>,
}

impl Default for LeapmeConfig {
    fn default() -> Self {
        LeapmeConfig {
            features: FeatureConfig::full(),
            train: TrainConfig::default(),
            threshold: 0.5,
            seed: 0x1EA9,
            hidden: vec![128, 64],
        }
    }
}

/// A trained LEAPME matcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeapmeModel {
    net: Mlp,
    scaler: Scaler,
    features: FeatureConfig,
    threshold: f32,
    dim: usize,
}

/// Batch size used when scoring large candidate spaces.
const SCORE_BATCH: usize = 4096;

/// Outcome of an opt-in quantized scoring run
/// ([`LeapmeModel::score_pairs_quantized`]): whether the int8 path was
/// actually used and what the bounded-error oracle measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedScoreReport {
    /// `true` when the quantized network scored the run; `false` when
    /// the calibration error exceeded the tolerance and every pair was
    /// scored by the f32 reference instead.
    pub used_quantized: bool,
    /// Largest `|f32 − int8|` class-1 probability difference on the
    /// calibration block.
    pub calibration_max_abs_error: f32,
    /// Number of pairs in the calibration block.
    pub calibration_pairs: usize,
}

/// Durability knobs for [`Leapme::fit_durable`]: where to checkpoint
/// training, how often, whether to resume, and the cancellation check
/// polled between pipeline work blocks.
#[derive(Default)]
pub struct DurableFitOptions<'a> {
    /// Training checkpoint file (removed on successful completion).
    /// `None` disables checkpointing entirely.
    pub checkpoint_path: Option<&'a Path>,
    /// Checkpoint every N epochs; `0` = only when cancellation fires.
    pub checkpoint_every: usize,
    /// Resume from `checkpoint_path` if it exists and matches this run.
    pub resume: bool,
    /// Cooperative cancellation check, polled between work blocks.
    pub cancel: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl std::fmt::Debug for DurableFitOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableFitOptions")
            .field("checkpoint_path", &self.checkpoint_path)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resume", &self.resume)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

/// Entry point for fitting LEAPME models.
pub struct Leapme;

impl Leapme {
    /// Train a model on labeled pairs (Algorithm 1 line 9,
    /// `trainClassifier(labeled(PPF))`).
    ///
    /// `labeled` carries `(pair, is_match)`; features come from `store`.
    pub fn fit(
        store: &PropertyFeatureStore,
        labeled: &[(PropertyPair, bool)],
        cfg: &LeapmeConfig,
    ) -> Result<LeapmeModel, CoreError> {
        Self::fit_durable(store, labeled, cfg, &DurableFitOptions::default())
    }

    /// [`Self::fit`] with durability: optional training checkpoints,
    /// resume-from-checkpoint, and cooperative cancellation threaded
    /// through the pair-matrix fill and every training epoch. When
    /// cancellation fires after a checkpoint path is configured, the
    /// training state is persisted before [`CoreError::Cancelled`] is
    /// returned, and a later call with `resume: true` continues the run
    /// bitwise identically to one that was never interrupted.
    pub fn fit_durable(
        store: &PropertyFeatureStore,
        labeled: &[(PropertyPair, bool)],
        cfg: &LeapmeConfig,
        opts: &DurableFitOptions<'_>,
    ) -> Result<LeapmeModel, CoreError> {
        if labeled.is_empty() {
            return Err(CoreError::NoTrainingData);
        }
        let dim = store.dim();
        let pairs: Vec<(leapme_data::model::PropertyKey, leapme_data::model::PropertyKey)> =
            labeled
                .iter()
                .map(|(PropertyPair(a, b), _)| (a.clone(), b.clone()))
                .collect();
        // Precompute the run-level name-pair distance table when the
        // training volume justifies it; the fill below then reads every
        // string feature from the table instead of the locking cache.
        store.ensure_pair_table_for(&cfg.features, pairs.len());
        let (n, cols, data) = store
            .pair_matrix_flat_cancellable(
                &pairs,
                &cfg.features,
                leapme_features::worker_threads(),
                opts.cancel,
            )?
            .into_parts();
        let mut x = Matrix::from_vec(n, cols, data);
        let labels: Vec<usize> = labeled.iter().map(|(_, y)| usize::from(*y)).collect();

        let scaler = Scaler::fit_transform(&mut x);

        let mut sizes = Vec::with_capacity(cfg.hidden.len() + 2);
        sizes.push(x.cols());
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(2);
        let mut net = Mlp::new(&sizes, cfg.seed);
        let ctl = FitControl {
            checkpoint_path: opts.checkpoint_path,
            checkpoint_every: opts.checkpoint_every,
            resume: opts.resume,
            cancel: opts.cancel,
        };
        net.fit_durable(&x, &labels, &cfg.train, &ctl)?;

        Ok(LeapmeModel {
            net,
            scaler,
            features: cfg.features,
            threshold: cfg.threshold,
            dim,
        })
    }
}

/// Stable on-disk tags for [`FeatureScope`] / [`FeatureKind`] in the
/// `.lmp` container (independent of in-memory enum layout).
fn scope_tag(scope: FeatureScope) -> u8 {
    match scope {
        FeatureScope::Instances => 0,
        FeatureScope::Names => 1,
        FeatureScope::Both => 2,
    }
}

fn scope_from_tag(tag: u8) -> Result<FeatureScope, CheckpointError> {
    Ok(match tag {
        0 => FeatureScope::Instances,
        1 => FeatureScope::Names,
        2 => FeatureScope::Both,
        t => return Err(CheckpointError::Malformed(format!("feature scope tag {t}"))),
    })
}

fn kind_tag(kind: FeatureKind) -> u8 {
    match kind {
        FeatureKind::Embeddings => 0,
        FeatureKind::NonEmbeddings => 1,
        FeatureKind::Both => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<FeatureKind, CheckpointError> {
    Ok(match tag {
        0 => FeatureKind::Embeddings,
        1 => FeatureKind::NonEmbeddings,
        2 => FeatureKind::Both,
        t => return Err(CheckpointError::Malformed(format!("feature kind tag {t}"))),
    })
}

/// Which parse path [`LeapmeModel::load_with_report`] took for a
/// `.lmp` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelOpenPath {
    /// v2 container over a shared read-only `mmap` — zero-copy weights.
    Mmap,
    /// v2 container read once into an aligned owned buffer — zero-copy
    /// weights over that buffer.
    Read,
    /// Legacy v1 container: full payload parse with per-tensor copies.
    LegacyV1,
}

impl ModelOpenPath {
    /// Stable lowercase label (`mmap` / `read` / `legacy-v1`) for CLI
    /// output and registry stats.
    pub fn label(self) -> &'static str {
        match self {
            ModelOpenPath::Mmap => "mmap",
            ModelOpenPath::Read => "read",
            ModelOpenPath::LegacyV1 => "legacy-v1",
        }
    }
}

impl std::fmt::Display for ModelOpenPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cap on the layer count a v2 model file may declare; a corrupted
/// meta section cannot drive an absurd allocation.
const MAX_V2_LAYERS: usize = 64;

impl LeapmeModel {
    /// Persist the trained model to `path` as a v2 (zero-copy layout)
    /// LEAPMECP container: a `meta` section with shapes and pipeline
    /// settings, one 64-byte-aligned raw-f32 section per weight matrix
    /// and bias, and the scaler rows — each individually CRC-64'd.
    /// Weights are stored as raw little-endian `f32` bits, so
    /// [`Self::load`] scores bitwise identically to the saved model.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let mut w = V2Writer::new(KIND_PIPELINE);
        let (means, inv_stds) = self.scaler.parts();
        let mut meta = Encoder::new();
        meta.u32(self.net.layers().len() as u32);
        for layer in self.net.layers() {
            meta.u64(layer.in_dim() as u64);
            meta.u64(layer.out_dim() as u64);
            meta.u8(match layer.activation {
                Activation::Relu => 0,
                Activation::Identity => 1,
            });
        }
        meta.u8(scope_tag(self.features.scope));
        meta.u8(kind_tag(self.features.kind));
        meta.f32(self.threshold);
        meta.u64(self.dim as u64);
        meta.u64(means.len() as u64);
        w.bytes("meta", &meta.finish());
        for (i, layer) in self.net.layers().iter().enumerate() {
            w.f32s(&format!("w{i}"), layer.weights.data());
            w.f32s(&format!("b{i}"), &layer.bias);
        }
        w.f32s("scaler.mean", means);
        w.f32s("scaler.inv_std", inv_stds);
        w.write(path)?;
        Ok(())
    }

    /// Persist in the legacy v1 (parse-on-load) container layout. Kept
    /// for migration testing and the open-time benchmark baseline;
    /// [`Self::load`] reads both layouts.
    pub fn save_v1(&self, path: &Path) -> Result<(), CoreError> {
        let mut e = Encoder::new();
        checkpoint::encode_mlp(&mut e, &self.net);
        let (means, inv_stds) = self.scaler.parts();
        e.f32s(means);
        e.f32s(inv_stds);
        e.u8(scope_tag(self.features.scope));
        e.u8(kind_tag(self.features.kind));
        e.f32(self.threshold);
        e.u64(self.dim as u64);
        checkpoint::write_container(path, KIND_PIPELINE, &e.finish())?;
        Ok(())
    }

    /// [`Self::save`] with a bounded-retry budget for transient I/O
    /// failures. The container write is atomic (temp + fsync + rename),
    /// so a failed attempt never leaves a damaged destination and a
    /// retry is always safe. Non-I/O failures are not retried; once the
    /// budget is spent the typed [`CoreError::RetriesExhausted`]
    /// surfaces with the final attempt's error.
    pub fn save_with_retry(
        &self,
        path: &Path,
        policy: &crate::retry::RetryPolicy,
    ) -> Result<(), CoreError> {
        crate::retry::with_retry(
            policy,
            |e: &CoreError| matches!(e, CoreError::Checkpoint(CheckpointError::Io(_))),
            || self.save(path),
        )
        .map_err(|e| {
            if e.attempts == 1 {
                // Non-transient or unretried failure: keep the original
                // error shape callers already match on.
                e.last
            } else {
                CoreError::RetriesExhausted {
                    what: "model save".to_string(),
                    attempts: e.attempts,
                    last: Box::new(e.last),
                }
            }
        })
    }

    /// Load a model saved by [`Self::save`] (v2 zero-copy layout) or
    /// [`Self::save_v1`] (legacy parse path). Every corruption mode —
    /// wrong magic, unsupported version, wrong container kind,
    /// truncation, flipped payload bits — surfaces as a typed
    /// [`CoreError::Checkpoint`]; a damaged file is never loaded
    /// silently.
    pub fn load(path: &Path) -> Result<LeapmeModel, CoreError> {
        Ok(Self::load_with_report(path)?.0)
    }

    /// [`Self::load`] also reporting which open path was taken: `mmap`
    /// (v2, zero-copy over a shared mapping), `read` (v2, zero-copy
    /// over an owned aligned buffer), or `legacy-v1` (full parse).
    pub fn load_with_report(path: &Path) -> Result<(LeapmeModel, ModelOpenPath), CoreError> {
        match container2::open_any(path, KIND_PIPELINE)? {
            Opened::V1(payload) => Ok((Self::from_v1_payload(&payload)?, ModelOpenPath::LegacyV1)),
            Opened::V2(container) => {
                let open_path = match container.open_path() {
                    container2::OpenPath::Mmap => ModelOpenPath::Mmap,
                    container2::OpenPath::Read => ModelOpenPath::Read,
                };
                Ok((Self::from_v2(&container)?, open_path))
            }
        }
    }

    /// Decode the legacy v1 pipeline payload.
    fn from_v1_payload(payload: &[u8]) -> Result<LeapmeModel, CoreError> {
        let mut d = Decoder::new(payload);
        let net = checkpoint::decode_mlp(&mut d)?;
        let means = d.f32s()?;
        let inv_stds = d.f32s()?;
        if means.len() != inv_stds.len() {
            return Err(CheckpointError::Malformed(format!(
                "scaler stats length mismatch: {} means vs {} stds",
                means.len(),
                inv_stds.len()
            ))
            .into());
        }
        let scope = scope_from_tag(d.u8()?)?;
        let kind = kind_from_tag(d.u8()?)?;
        let threshold = d.f32()?;
        let dim = usize::try_from(d.u64()?)
            .map_err(|_| CheckpointError::Malformed("dim overflows usize".into()))?;
        d.done()?;
        Ok(LeapmeModel {
            net,
            scaler: Scaler::from_parts(means, inv_stds),
            features: FeatureConfig { scope, kind },
            threshold,
            dim,
        })
    }

    /// Assemble a model over an open v2 container: weight matrices
    /// become zero-copy views pinning the container's mapping (no
    /// per-tensor `Vec` materialization); only the tiny biases and
    /// scaler rows are copied.
    fn from_v2(container: &std::sync::Arc<V2Container>) -> Result<LeapmeModel, CoreError> {
        let mut d = Decoder::new(container.section_bytes("meta")?);
        let n_layers = d.u32()? as usize;
        if n_layers == 0 || n_layers > MAX_V2_LAYERS {
            return Err(
                CheckpointError::Malformed(format!("implausible layer count {n_layers}")).into(),
            );
        }
        let mut shapes = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let in_dim = usize::try_from(d.u64()?)
                .map_err(|_| CheckpointError::Malformed("layer in_dim overflows".into()))?;
            let out_dim = usize::try_from(d.u64()?)
                .map_err(|_| CheckpointError::Malformed("layer out_dim overflows".into()))?;
            let activation = match d.u8()? {
                0 => Activation::Relu,
                1 => Activation::Identity,
                t => {
                    return Err(
                        CheckpointError::Malformed(format!("activation tag {t}")).into(),
                    )
                }
            };
            shapes.push((in_dim, out_dim, activation));
        }
        let scope = scope_from_tag(d.u8()?)?;
        let kind = kind_from_tag(d.u8()?)?;
        let threshold = d.f32()?;
        let dim = usize::try_from(d.u64()?)
            .map_err(|_| CheckpointError::Malformed("dim overflows usize".into()))?;
        let scaler_len = usize::try_from(d.u64()?)
            .map_err(|_| CheckpointError::Malformed("scaler length overflows".into()))?;
        d.done()?;

        let mut layers = Vec::with_capacity(n_layers);
        for (i, (in_dim, out_dim, activation)) in shapes.into_iter().enumerate() {
            let weights = container.f32_section(&format!("w{i}"))?;
            let expect = in_dim.checked_mul(out_dim).ok_or_else(|| {
                CheckpointError::Malformed(format!("layer {i} parameter count overflows"))
            })?;
            if weights.as_ref().len() != expect {
                return Err(CheckpointError::Malformed(format!(
                    "layer {i} weights: expected {expect} f32s, found {}",
                    weights.as_ref().len()
                ))
                .into());
            }
            let bias = container.section_f32_vec(&format!("b{i}"))?;
            if bias.len() != out_dim {
                return Err(CheckpointError::Malformed(format!(
                    "layer {i} bias: expected {out_dim} f32s, found {}",
                    bias.len()
                ))
                .into());
            }
            layers.push(Dense {
                weights: Matrix::from_shared(in_dim, out_dim, std::sync::Arc::new(weights)),
                bias,
                activation,
            });
        }
        let net = Mlp::try_from_layers(layers)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let means = container.section_f32_vec("scaler.mean")?;
        let inv_stds = container.section_f32_vec("scaler.inv_std")?;
        if means.len() != scaler_len || inv_stds.len() != scaler_len {
            return Err(CheckpointError::Malformed(format!(
                "scaler stats length mismatch: {} means / {} stds, meta says {scaler_len}",
                means.len(),
                inv_stds.len()
            ))
            .into());
        }
        Ok(LeapmeModel {
            net,
            scaler: Scaler::from_parts(means, inv_stds),
            features: FeatureConfig { scope, kind },
            threshold,
            dim,
        })
    }

    /// The feature configuration the model was trained with.
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Number of input features the model expects.
    pub fn input_dim(&self) -> usize {
        self.scaler.dim()
    }

    /// Similarity scores (positive-class probabilities) for a batch of
    /// pairs, in input order. Streams fixed-size pair blocks through
    /// reusable feature/activation buffers, so peak memory is bounded by
    /// O([`SCORE_BATCH`] × dim) regardless of how many pairs are scored
    /// and the steady-state block costs zero heap allocations.
    pub fn score_pairs(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<f32>, CoreError> {
        self.score_pairs_streaming(store, pairs, SCORE_BATCH)
    }

    /// [`Self::score_pairs`] with an explicit chunk size — the knob
    /// trading peak memory (O(chunk × dim) for the feature block plus the
    /// network activations) against per-chunk overhead. Scores are
    /// bitwise identical for every chunk size: each pair's row is
    /// featurized, scaled, and scored independently of its block.
    pub fn score_pairs_streaming(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        chunk_size: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.score_pairs_cancellable(store, pairs, chunk_size, None)
    }

    /// [`Self::score_pairs_streaming`] with cooperative cancellation,
    /// polled once per block; returns [`CoreError::Cancelled`] when the
    /// check fires. With `cancel: None` scores are bitwise identical to
    /// the other scoring entry points.
    pub fn score_pairs_cancellable(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        chunk_size: usize,
        cancel: CancelCheck<'_>,
    ) -> Result<Vec<f32>, CoreError> {
        self.check_store(store)?;
        store.ensure_pair_table_for(&self.features, pairs.len());
        let chunk = chunk_size.max(1);
        let mask = self.features.mask(store.dim());
        let cols = mask.len();
        let mut scores = Vec::with_capacity(pairs.len());
        let mut x = Matrix::zeros(0, 0);
        let mut ws = ScoreWorkspace::new();
        for block in pairs.chunks(chunk) {
            x.resize_zeroed(block.len(), cols);
            store.fill_pair_block_cancellable(block, &mask, x.data_mut(), cancel)?;
            self.scaler.transform_inplace(&mut x);
            self.net.predict_proba_into(&x, &mut ws, &mut scores);
        }
        Ok(scores)
    }

    /// [`Self::score_pairs`] through opt-in int8 quantized inference,
    /// gated by a bounded-error oracle: the first feature block is
    /// scored by both the f32 reference and the quantized network, and
    /// if their class-1 probabilities diverge by more than
    /// [`leapme_nn::quant::DEFAULT_TOLERANCE`] anywhere in that
    /// calibration block the entire run silently falls back to the f32
    /// path. The returned [`QuantizedScoreReport`] says which path ran
    /// and the calibration error, so callers (CLI `--quantized`, bench)
    /// can surface the decision instead of guessing.
    pub fn score_pairs_quantized(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<(Vec<f32>, QuantizedScoreReport), CoreError> {
        self.score_pairs_quantized_cancellable(store, pairs, None)
    }

    /// [`Self::score_pairs_quantized`] with cooperative cancellation,
    /// polled once per scoring block.
    pub fn score_pairs_quantized_cancellable(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        cancel: CancelCheck<'_>,
    ) -> Result<(Vec<f32>, QuantizedScoreReport), CoreError> {
        self.check_store(store)?;
        store.ensure_pair_table_for(&self.features, pairs.len());
        if pairs.is_empty() {
            return Ok((
                Vec::new(),
                QuantizedScoreReport {
                    used_quantized: true,
                    calibration_max_abs_error: 0.0,
                    calibration_pairs: 0,
                },
            ));
        }
        let qnet = QuantizedMlp::from_mlp(&self.net);
        let mask = self.features.mask(store.dim());
        let cols = mask.len();

        // Calibration: the first block runs on both paths.
        let calib = &pairs[..pairs.len().min(SCORE_BATCH)];
        let mut x = Matrix::zeros(0, 0);
        x.resize_zeroed(calib.len(), cols);
        store.fill_pair_block_cancellable(calib, &mask, x.data_mut(), cancel)?;
        self.scaler.transform_inplace(&mut x);
        let mut ws = ScoreWorkspace::new();
        let mut reference = Vec::with_capacity(calib.len());
        self.net.predict_proba_into(&x, &mut ws, &mut reference);
        let mut qws = QuantWorkspace::new();
        let mut scores = Vec::with_capacity(pairs.len());
        qnet.predict_proba_into(&x, &mut qws, &mut scores);
        let err = reference
            .iter()
            .zip(&scores)
            .map(|(&r, &q)| (r - q).abs())
            .fold(0.0f32, f32::max);
        let report = QuantizedScoreReport {
            used_quantized: err <= DEFAULT_TOLERANCE,
            calibration_max_abs_error: err,
            calibration_pairs: calib.len(),
        };
        if !report.used_quantized {
            // Oracle failed: rerun everything on the reference path.
            return Ok((
                self.score_pairs_cancellable(store, pairs, SCORE_BATCH, cancel)?,
                report,
            ));
        }
        for block in pairs[calib.len()..].chunks(SCORE_BATCH) {
            x.resize_zeroed(block.len(), cols);
            store.fill_pair_block_cancellable(block, &mask, x.data_mut(), cancel)?;
            self.scaler.transform_inplace(&mut x);
            qnet.predict_proba_into(&x, &mut qws, &mut scores);
        }
        Ok((scores, report))
    }

    /// The original materialize-per-chunk scorer, kept as the equivalence
    /// oracle the streaming-path tests check against.
    pub fn score_pairs_materialized(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<f32>, CoreError> {
        self.check_store(store)?;
        let mut scores = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(SCORE_BATCH) {
            let keyed: Vec<_> = chunk
                .iter()
                .map(|PropertyPair(a, b)| (a.clone(), b.clone()))
                .collect();
            let (n, cols, data) = store.pair_matrix_flat(&keyed, &self.features)?.into_parts();
            let mut x = Matrix::from_vec(n, cols, data);
            self.scaler.transform_inplace(&mut x);
            scores.extend(self.net.predict_proba(&x));
        }
        Ok(scores)
    }

    /// Reject stores whose feature space differs from the model's.
    fn check_store(&self, store: &PropertyFeatureStore) -> Result<(), CoreError> {
        if store.dim() != self.dim {
            return Err(CoreError::InvalidSplit(format!(
                "feature store dim {} != model dim {}",
                store.dim(),
                self.dim
            )));
        }
        Ok(())
    }

    /// Parallel variant of [`Self::score_pairs`]: splits the candidate
    /// list into chunks scored on `threads` worker threads (crossbeam
    /// scoped threads; `0` = one per available core). Results are
    /// bit-identical to the serial path and returned in input order —
    /// inference is deterministic, only the work scheduling differs.
    ///
    /// A panicking worker loses only its own chunk: the chunk is requeued
    /// once on the calling thread, and a second panic surfaces as
    /// [`CoreError::WorkerPanic`] instead of aborting the process.
    pub fn score_pairs_parallel(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        threads: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.score_pairs_parallel_cancellable(store, pairs, threads, None)
    }

    /// [`Self::score_pairs_parallel`] with cooperative cancellation:
    /// every worker polls the shared check once per [`SCORE_BATCH`]
    /// block, so a cancel request stops all chunks within one block of
    /// work each. With `cancel: None` results are bitwise identical to
    /// the serial path.
    pub fn score_pairs_parallel_cancellable(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        threads: usize,
        cancel: CancelCheck<'_>,
    ) -> Result<Vec<f32>, CoreError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 || pairs.len() < 2 * SCORE_BATCH {
            return self.score_pairs_cancellable(store, pairs, SCORE_BATCH, cancel);
        }
        // Build the shared distance table once on the calling thread at
        // the full pair volume — per-chunk calls inside the workers
        // would evaluate the size gate against a fraction of the run.
        store.ensure_pair_table_for(&self.features, pairs.len());
        let chunk_len = pairs.len().div_ceil(threads);
        let chunks: Vec<&[PropertyPair]> = pairs.chunks(chunk_len).collect();
        let score_chunk = |chunk: &[PropertyPair]| {
            #[cfg(feature = "faults")]
            leapme_faults::maybe_panic(leapme_faults::sites::SCORE_WORKER);
            self.score_pairs_cancellable(store, chunk, SCORE_BATCH, cancel)
        };
        let mut results: Vec<Option<Result<Vec<f32>, CoreError>>> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move |_| score_chunk(chunk)))
                .collect();
            // Joining every handle keeps a worker panic contained in its
            // join result instead of re-panicking out of the scope.
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results.push(Some(r)),
                    Err(_) => {
                        results.push(None);
                        failed.push(i);
                    }
                }
            }
        })
        .expect("crossbeam scope with joined handles");
        for i in failed {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| score_chunk(chunks[i])));
            results[i] = Some(outcome.unwrap_or_else(|payload| {
                Err(CoreError::WorkerPanic {
                    site: "core.score.worker".into(),
                    payload: leapme_features::vectorizer::panic_message(payload.as_ref()),
                })
            }));
        }
        let mut out = Vec::with_capacity(pairs.len());
        for r in results {
            out.extend(r.expect("every chunk resolved")?);
        }
        Ok(out)
    }

    /// Score pre-extracted feature rows directly (each row must already
    /// be in this model's feature space — same configuration and
    /// dimension it was trained with). Used by analyses that perturb the
    /// feature matrix, e.g. permutation importance.
    ///
    /// # Panics
    ///
    /// Panics if a row's width differs from [`Self::input_dim`].
    pub fn score_rows(&self, rows: &[Vec<f32>]) -> Vec<f32> {
        let mut scores = Vec::with_capacity(rows.len());
        let mut x = Matrix::zeros(0, 0);
        let mut ws = ScoreWorkspace::new();
        for chunk in rows.chunks(SCORE_BATCH) {
            x.resize_zeroed(chunk.len(), self.input_dim());
            for (i, row) in chunk.iter().enumerate() {
                assert_eq!(row.len(), self.input_dim(), "feature row width mismatch");
                x.row_mut(i).copy_from_slice(row);
            }
            self.scaler.transform_inplace(&mut x);
            self.net.predict_proba_into(&x, &mut ws, &mut scores);
        }
        scores
    }

    /// Score pairs and assemble the similarity graph (Algorithm 1 lines
    /// 10–11).
    pub fn predict_graph(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<SimilarityGraph, CoreError> {
        self.predict_graph_cancellable(store, pairs, None)
    }

    /// [`Self::predict_graph`] with cooperative cancellation (polled
    /// once per [`SCORE_BATCH`] scoring block).
    pub fn predict_graph_cancellable(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        cancel: CancelCheck<'_>,
    ) -> Result<SimilarityGraph, CoreError> {
        let scores = self.score_pairs_cancellable(store, pairs, SCORE_BATCH, cancel)?;
        Ok(pairs.iter().cloned().zip(scores).collect())
    }

    /// [`Self::predict_graph`] through the opt-in quantized scorer (same
    /// bounded-error gate and fallback as
    /// [`Self::score_pairs_quantized`]); returns the graph plus the
    /// quantization report.
    pub fn predict_graph_quantized_cancellable(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        cancel: CancelCheck<'_>,
    ) -> Result<(SimilarityGraph, QuantizedScoreReport), CoreError> {
        let (scores, report) = self.score_pairs_quantized_cancellable(store, pairs, cancel)?;
        Ok((pairs.iter().cloned().zip(scores).collect(), report))
    }

    /// Binary match decisions at the model threshold, in input order.
    pub fn predict_matches(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<bool>, CoreError> {
        Ok(self
            .score_pairs(store, pairs)?
            .into_iter()
            .map(|s| s >= self.threshold)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train as glove_train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small trained embeddings shared across pipeline tests.
    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 12,
                filler_sentences: 60,
            },
            99,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        let cfg = GloVeConfig {
            dim: 24,
            epochs: 15,
            ..GloVeConfig::default()
        };
        glove_train(&vocab, &cooc, &cfg, 1).unwrap()
    }

    fn quick_train_cfg() -> TrainConfig {
        TrainConfig {
            schedule: LrSchedule::new(vec![(6, 1e-3), (2, 1e-4)]),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn end_to_end_beats_chance_on_headphones() {
        let ds = generate(Domain::Headphones, 21);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Headphones));
        let mut rng = StdRng::seed_from_u64(5);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            // Full paper schedule (20 epochs) with the paper architecture.
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();

        let test = sampling::test_pairs(&ds, &split.train);
        let gt = sampling::test_ground_truth(&ds, &split.train);
        let graph = model.predict_graph(&store, &test).unwrap();
        let m = crate::metrics::Metrics::from_sets(&graph.matches(0.5), &gt);
        // With trained embeddings and real features this should comfortably
        // beat random guessing (positive rate is a few percent).
        assert!(m.f1 > 0.3, "end-to-end F1 too low: {m}");
    }

    #[test]
    fn fit_rejects_empty_training() {
        let ds = generate(Domain::Tvs, 22);
        let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(8));
        let err = Leapme::fit(&store, &[], &LeapmeConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::NoTrainingData));
    }

    #[test]
    fn scores_are_probabilities_and_ordered_consistently() {
        let ds = generate(Domain::Tvs, 23);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(6);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let scores = model.score_pairs(&store, &test).unwrap();
        assert_eq!(scores.len(), test.len());
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        // Graph agrees with raw scores.
        let graph = model.predict_graph(&store, &test).unwrap();
        for (p, s) in test.iter().zip(&scores) {
            assert_eq!(graph.score(p), Some(*s));
        }
        // predict_matches consistent with threshold.
        let decisions = model.predict_matches(&store, &test).unwrap();
        for (d, s) in decisions.iter().zip(&scores) {
            assert_eq!(*d, *s >= model.threshold());
        }
    }

    #[test]
    fn quantized_scoring_tracks_f32_within_tolerance() {
        let ds = generate(Domain::Tvs, 31);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(12);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let reference = model.score_pairs(&store, &test).unwrap();
        let (quantized, report) = model.score_pairs_quantized(&store, &test).unwrap();
        assert_eq!(quantized.len(), reference.len());
        assert!(report.calibration_pairs > 0);
        if report.used_quantized {
            // The oracle only sees the calibration block; the whole run
            // must still stay within a loose multiple of the tolerance.
            for (q, r) in quantized.iter().zip(&reference) {
                assert!(
                    (q - r).abs() <= 3.0 * DEFAULT_TOLERANCE,
                    "quantized {q} vs f32 {r}"
                );
            }
        } else {
            // Fallback path must be the f32 scores exactly.
            assert_eq!(quantized, reference);
            assert!(report.calibration_max_abs_error > DEFAULT_TOLERANCE);
        }
        // Graph variant agrees with the score variant's decision.
        let (graph, greport) = model
            .predict_graph_quantized_cancellable(&store, &test, None)
            .unwrap();
        assert_eq!(greport.used_quantized, report.used_quantized);
        assert_eq!(graph.len(), test.len());
    }

    #[test]
    fn streaming_matches_materialized_for_any_chunk_size() {
        let ds = generate(Domain::Tvs, 27);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(10);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let reference = model.score_pairs_materialized(&store, &test).unwrap();
        assert_eq!(model.score_pairs(&store, &test).unwrap(), reference);
        for chunk in [1, 3, 17, 256, usize::MAX] {
            let streamed = model.score_pairs_streaming(&store, &test, chunk).unwrap();
            assert_eq!(streamed, reference, "chunk={chunk}");
        }
        // Chunk size 0 is clamped, not a panic.
        assert_eq!(
            model.score_pairs_streaming(&store, &test, 0).unwrap(),
            reference
        );
    }

    #[test]
    fn parallel_scoring_matches_serial() {
        let ds = generate(Domain::Tvs, 26);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(9);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let serial = model.score_pairs(&store, &test).unwrap();
        for threads in [0, 1, 2, 4] {
            let parallel = model.score_pairs_parallel(&store, &test, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let ds = generate(Domain::Tvs, 24);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(7);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let test = sampling::test_pairs(&ds, &split.train);
        let run = || {
            let model = Leapme::fit(&store, &train, &cfg).unwrap();
            model.score_pairs(&store, &test).unwrap()
        };
        assert_eq!(run(), run());
    }

    fn fitted_model_and_test(
        seed: u64,
    ) -> (LeapmeModel, PropertyFeatureStore, Vec<PropertyPair>) {
        let ds = generate(Domain::Tvs, 28);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(seed);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        (model, store, test)
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leapme-pipeline-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lmp_save_load_scores_bitwise_identically() {
        let (model, store, test) = fitted_model_and_test(11);
        let path = tmp_dir("lmp").join("model.lmp");
        model.save(&path).unwrap();
        let back = LeapmeModel::load(&path).unwrap();
        let a = model.score_pairs(&store, &test).unwrap();
        let b = back.score_pairs(&store, &test).unwrap();
        assert_eq!(
            a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(model.threshold(), back.threshold());
        assert_eq!(model.features(), back.features());
        assert_eq!(model.input_dim(), back.input_dim());
    }

    #[test]
    fn corrupted_lmp_is_a_typed_error_never_a_silent_model() {
        let (model, _store, _test) = fitted_model_and_test(12);
        let dir = tmp_dir("lmp-corrupt");
        let path = dir.join("model.lmp");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncations and single-byte flips across the file must all be
        // typed checkpoint errors.
        let bad = dir.join("bad.lmp");
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&bad, &bytes[..cut]).unwrap();
            match LeapmeModel::load(&bad) {
                Err(CoreError::Checkpoint(_)) => {}
                other => panic!("truncation at {cut}: expected Checkpoint error, got {other:?}"),
            }
        }
        for pos in [0, 9, bytes.len() / 2, bytes.len() - 4] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            std::fs::write(&bad, &flipped).unwrap();
            match LeapmeModel::load(&bad) {
                Err(CoreError::Checkpoint(_)) => {}
                other => panic!("bit flip at {pos}: expected Checkpoint error, got {other:?}"),
            }
        }
        // Missing file is a typed I/O checkpoint error too.
        assert!(matches!(
            LeapmeModel::load(&dir.join("nope.lmp")),
            Err(CoreError::Checkpoint(CheckpointError::Io(_)))
        ));
    }

    #[test]
    fn durable_fit_cancel_then_resume_matches_uninterrupted() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ds = generate(Domain::Tvs, 29);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(13);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let test = sampling::test_pairs(&ds, &split.train);
        let reference = Leapme::fit(&store, &train, &cfg).unwrap();
        let ref_scores = reference.score_pairs(&store, &test).unwrap();

        let ckpt = tmp_dir("fit-resume").join("train.ckpt");
        let _ = std::fs::remove_file(&ckpt);
        // Cancel partway into the epoch loop (the fit polls once per
        // epoch; earlier polls belong to the pair fill).
        let polls = AtomicUsize::new(0);
        let cancel = move || polls.fetch_add(1, Ordering::SeqCst) >= 4;
        let opts = DurableFitOptions {
            checkpoint_path: Some(&ckpt),
            checkpoint_every: 0,
            resume: false,
            cancel: Some(&cancel),
        };
        match Leapme::fit_durable(&store, &train, &cfg, &opts) {
            Err(CoreError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|_| "model")),
        }
        assert!(ckpt.exists(), "cancellation must leave a checkpoint");

        let resumed = Leapme::fit_durable(
            &store,
            &train,
            &cfg,
            &DurableFitOptions {
                checkpoint_path: Some(&ckpt),
                checkpoint_every: 0,
                resume: true,
                cancel: None,
            },
        )
        .unwrap();
        assert!(!ckpt.exists(), "completion must remove the checkpoint");
        let resumed_scores = resumed.score_pairs(&store, &test).unwrap();
        assert_eq!(
            ref_scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            resumed_scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "resumed model must score bitwise identically to uninterrupted"
        );
    }

    #[test]
    fn model_serde_round_trip() {
        let ds = generate(Domain::Tvs, 25);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(8);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: LeapmeModel = serde_json::from_str(&json).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        assert_eq!(
            model.score_pairs(&store, &test).unwrap(),
            back.score_pairs(&store, &test).unwrap()
        );
    }
}
