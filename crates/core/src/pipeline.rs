//! The LEAPME pipeline: Algorithm 1, steps 5 (training and classification).
//!
//! Steps 1–4 (feature computation) live in `leapme-features`
//! ([`PropertyFeatureStore`]); this module adds the supervised part: fit
//! the paper's dense network (input → 128 → 64 → 2, batch size 32, staged
//! learning rate) on labeled pair vectors, then score unlabeled pairs,
//! producing the similarity graph.

use crate::scaler::Scaler;
use crate::simgraph::SimilarityGraph;
use crate::CoreError;
use leapme_data::model::PropertyPair;
use leapme_features::{FeatureConfig, PropertyFeatureStore};
use leapme_nn::matrix::Matrix;
use leapme_nn::network::{Mlp, TrainConfig};
use leapme_nn::workspace::ScoreWorkspace;
use serde::{Deserialize, Serialize};

/// Configuration of a LEAPME fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeapmeConfig {
    /// Which feature subset to use (paper §V-A; default: all features).
    pub features: FeatureConfig,
    /// Network training configuration (paper §IV-D defaults).
    pub train: TrainConfig,
    /// Decision threshold on the positive-class probability.
    pub threshold: f32,
    /// Seed for weight initialization.
    pub seed: u64,
    /// Hidden layer sizes (paper: `[128, 64]`). Exposed for ablations.
    pub hidden: Vec<usize>,
}

impl Default for LeapmeConfig {
    fn default() -> Self {
        LeapmeConfig {
            features: FeatureConfig::full(),
            train: TrainConfig::default(),
            threshold: 0.5,
            seed: 0x1EA9,
            hidden: vec![128, 64],
        }
    }
}

/// A trained LEAPME matcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeapmeModel {
    net: Mlp,
    scaler: Scaler,
    features: FeatureConfig,
    threshold: f32,
    dim: usize,
}

/// Batch size used when scoring large candidate spaces.
const SCORE_BATCH: usize = 4096;

/// Entry point for fitting LEAPME models.
pub struct Leapme;

impl Leapme {
    /// Train a model on labeled pairs (Algorithm 1 line 9,
    /// `trainClassifier(labeled(PPF))`).
    ///
    /// `labeled` carries `(pair, is_match)`; features come from `store`.
    pub fn fit(
        store: &PropertyFeatureStore,
        labeled: &[(PropertyPair, bool)],
        cfg: &LeapmeConfig,
    ) -> Result<LeapmeModel, CoreError> {
        if labeled.is_empty() {
            return Err(CoreError::NoTrainingData);
        }
        let dim = store.dim();
        let pairs: Vec<(leapme_data::model::PropertyKey, leapme_data::model::PropertyKey)> =
            labeled
                .iter()
                .map(|(PropertyPair(a, b), _)| (a.clone(), b.clone()))
                .collect();
        let (n, cols, data) = store.pair_matrix_flat(&pairs, &cfg.features)?.into_parts();
        let mut x = Matrix::from_vec(n, cols, data);
        let labels: Vec<usize> = labeled.iter().map(|(_, y)| usize::from(*y)).collect();

        let scaler = Scaler::fit_transform(&mut x);

        let mut sizes = Vec::with_capacity(cfg.hidden.len() + 2);
        sizes.push(x.cols());
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(2);
        let mut net = Mlp::new(&sizes, cfg.seed);
        net.fit(&x, &labels, &cfg.train)?;

        Ok(LeapmeModel {
            net,
            scaler,
            features: cfg.features,
            threshold: cfg.threshold,
            dim,
        })
    }
}

impl LeapmeModel {
    /// The feature configuration the model was trained with.
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Number of input features the model expects.
    pub fn input_dim(&self) -> usize {
        self.scaler.dim()
    }

    /// Similarity scores (positive-class probabilities) for a batch of
    /// pairs, in input order. Streams fixed-size pair blocks through
    /// reusable feature/activation buffers, so peak memory is bounded by
    /// O([`SCORE_BATCH`] × dim) regardless of how many pairs are scored
    /// and the steady-state block costs zero heap allocations.
    pub fn score_pairs(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<f32>, CoreError> {
        self.score_pairs_streaming(store, pairs, SCORE_BATCH)
    }

    /// [`Self::score_pairs`] with an explicit chunk size — the knob
    /// trading peak memory (O(chunk × dim) for the feature block plus the
    /// network activations) against per-chunk overhead. Scores are
    /// bitwise identical for every chunk size: each pair's row is
    /// featurized, scaled, and scored independently of its block.
    pub fn score_pairs_streaming(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        chunk_size: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.check_store(store)?;
        let chunk = chunk_size.max(1);
        let mask = self.features.mask(store.dim());
        let cols = mask.len();
        let mut scores = Vec::with_capacity(pairs.len());
        let mut x = Matrix::zeros(0, 0);
        let mut ws = ScoreWorkspace::new();
        for block in pairs.chunks(chunk) {
            x.resize_zeroed(block.len(), cols);
            store.fill_pair_block(block, &mask, x.data_mut())?;
            self.scaler.transform_inplace(&mut x);
            self.net.predict_proba_into(&x, &mut ws, &mut scores);
        }
        Ok(scores)
    }

    /// The original materialize-per-chunk scorer, kept as the equivalence
    /// oracle the streaming-path tests check against.
    pub fn score_pairs_materialized(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<f32>, CoreError> {
        self.check_store(store)?;
        let mut scores = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(SCORE_BATCH) {
            let keyed: Vec<_> = chunk
                .iter()
                .map(|PropertyPair(a, b)| (a.clone(), b.clone()))
                .collect();
            let (n, cols, data) = store.pair_matrix_flat(&keyed, &self.features)?.into_parts();
            let mut x = Matrix::from_vec(n, cols, data);
            self.scaler.transform_inplace(&mut x);
            scores.extend(self.net.predict_proba(&x));
        }
        Ok(scores)
    }

    /// Reject stores whose feature space differs from the model's.
    fn check_store(&self, store: &PropertyFeatureStore) -> Result<(), CoreError> {
        if store.dim() != self.dim {
            return Err(CoreError::InvalidSplit(format!(
                "feature store dim {} != model dim {}",
                store.dim(),
                self.dim
            )));
        }
        Ok(())
    }

    /// Parallel variant of [`Self::score_pairs`]: splits the candidate
    /// list into chunks scored on `threads` worker threads (crossbeam
    /// scoped threads; `0` = one per available core). Results are
    /// bit-identical to the serial path and returned in input order —
    /// inference is deterministic, only the work scheduling differs.
    ///
    /// A panicking worker loses only its own chunk: the chunk is requeued
    /// once on the calling thread, and a second panic surfaces as
    /// [`CoreError::WorkerPanic`] instead of aborting the process.
    pub fn score_pairs_parallel(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
        threads: usize,
    ) -> Result<Vec<f32>, CoreError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 || pairs.len() < 2 * SCORE_BATCH {
            return self.score_pairs(store, pairs);
        }
        let chunk_len = pairs.len().div_ceil(threads);
        let chunks: Vec<&[PropertyPair]> = pairs.chunks(chunk_len).collect();
        let score_chunk = |chunk: &[PropertyPair]| {
            #[cfg(feature = "faults")]
            leapme_faults::maybe_panic(leapme_faults::sites::SCORE_WORKER);
            self.score_pairs(store, chunk)
        };
        let mut results: Vec<Option<Result<Vec<f32>, CoreError>>> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move |_| score_chunk(chunk)))
                .collect();
            // Joining every handle keeps a worker panic contained in its
            // join result instead of re-panicking out of the scope.
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results.push(Some(r)),
                    Err(_) => {
                        results.push(None);
                        failed.push(i);
                    }
                }
            }
        })
        .expect("crossbeam scope with joined handles");
        for i in failed {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| score_chunk(chunks[i])));
            results[i] = Some(outcome.unwrap_or_else(|payload| {
                Err(CoreError::WorkerPanic {
                    site: "core.score.worker".into(),
                    payload: leapme_features::vectorizer::panic_message(payload.as_ref()),
                })
            }));
        }
        let mut out = Vec::with_capacity(pairs.len());
        for r in results {
            out.extend(r.expect("every chunk resolved")?);
        }
        Ok(out)
    }

    /// Score pre-extracted feature rows directly (each row must already
    /// be in this model's feature space — same configuration and
    /// dimension it was trained with). Used by analyses that perturb the
    /// feature matrix, e.g. permutation importance.
    ///
    /// # Panics
    ///
    /// Panics if a row's width differs from [`Self::input_dim`].
    pub fn score_rows(&self, rows: &[Vec<f32>]) -> Vec<f32> {
        let mut scores = Vec::with_capacity(rows.len());
        let mut x = Matrix::zeros(0, 0);
        let mut ws = ScoreWorkspace::new();
        for chunk in rows.chunks(SCORE_BATCH) {
            x.resize_zeroed(chunk.len(), self.input_dim());
            for (i, row) in chunk.iter().enumerate() {
                assert_eq!(row.len(), self.input_dim(), "feature row width mismatch");
                x.row_mut(i).copy_from_slice(row);
            }
            self.scaler.transform_inplace(&mut x);
            self.net.predict_proba_into(&x, &mut ws, &mut scores);
        }
        scores
    }

    /// Score pairs and assemble the similarity graph (Algorithm 1 lines
    /// 10–11).
    pub fn predict_graph(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<SimilarityGraph, CoreError> {
        let scores = self.score_pairs(store, pairs)?;
        Ok(pairs.iter().cloned().zip(scores).collect())
    }

    /// Binary match decisions at the model threshold, in input order.
    pub fn predict_matches(
        &self,
        store: &PropertyFeatureStore,
        pairs: &[PropertyPair],
    ) -> Result<Vec<bool>, CoreError> {
        Ok(self
            .score_pairs(store, pairs)?
            .into_iter()
            .map(|s| s >= self.threshold)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train as glove_train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small trained embeddings shared across pipeline tests.
    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 12,
                filler_sentences: 60,
            },
            99,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        let cfg = GloVeConfig {
            dim: 24,
            epochs: 15,
            ..GloVeConfig::default()
        };
        glove_train(&vocab, &cooc, &cfg, 1).unwrap()
    }

    fn quick_train_cfg() -> TrainConfig {
        TrainConfig {
            schedule: LrSchedule::new(vec![(6, 1e-3), (2, 1e-4)]),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn end_to_end_beats_chance_on_headphones() {
        let ds = generate(Domain::Headphones, 21);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Headphones));
        let mut rng = StdRng::seed_from_u64(5);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            // Full paper schedule (20 epochs) with the paper architecture.
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();

        let test = sampling::test_pairs(&ds, &split.train);
        let gt = sampling::test_ground_truth(&ds, &split.train);
        let graph = model.predict_graph(&store, &test).unwrap();
        let m = crate::metrics::Metrics::from_sets(&graph.matches(0.5), &gt);
        // With trained embeddings and real features this should comfortably
        // beat random guessing (positive rate is a few percent).
        assert!(m.f1 > 0.3, "end-to-end F1 too low: {m}");
    }

    #[test]
    fn fit_rejects_empty_training() {
        let ds = generate(Domain::Tvs, 22);
        let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(8));
        let err = Leapme::fit(&store, &[], &LeapmeConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::NoTrainingData));
    }

    #[test]
    fn scores_are_probabilities_and_ordered_consistently() {
        let ds = generate(Domain::Tvs, 23);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(6);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let scores = model.score_pairs(&store, &test).unwrap();
        assert_eq!(scores.len(), test.len());
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        // Graph agrees with raw scores.
        let graph = model.predict_graph(&store, &test).unwrap();
        for (p, s) in test.iter().zip(&scores) {
            assert_eq!(graph.score(p), Some(*s));
        }
        // predict_matches consistent with threshold.
        let decisions = model.predict_matches(&store, &test).unwrap();
        for (d, s) in decisions.iter().zip(&scores) {
            assert_eq!(*d, *s >= model.threshold());
        }
    }

    #[test]
    fn streaming_matches_materialized_for_any_chunk_size() {
        let ds = generate(Domain::Tvs, 27);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(10);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let reference = model.score_pairs_materialized(&store, &test).unwrap();
        assert_eq!(model.score_pairs(&store, &test).unwrap(), reference);
        for chunk in [1, 3, 17, 256, usize::MAX] {
            let streamed = model.score_pairs_streaming(&store, &test, chunk).unwrap();
            assert_eq!(streamed, reference, "chunk={chunk}");
        }
        // Chunk size 0 is clamped, not a panic.
        assert_eq!(
            model.score_pairs_streaming(&store, &test, 0).unwrap(),
            reference
        );
    }

    #[test]
    fn parallel_scoring_matches_serial() {
        let ds = generate(Domain::Tvs, 26);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(9);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        let serial = model.score_pairs(&store, &test).unwrap();
        for threads in [0, 1, 2, 4] {
            let parallel = model.score_pairs_parallel(&store, &test, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let ds = generate(Domain::Tvs, 24);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(7);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let test = sampling::test_pairs(&ds, &split.train);
        let run = || {
            let model = Leapme::fit(&store, &train, &cfg).unwrap();
            model.score_pairs(&store, &test).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_serde_round_trip() {
        let ds = generate(Domain::Tvs, 25);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut rng = StdRng::seed_from_u64(8);
        let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
        let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: quick_train_cfg(),
            hidden: vec![16],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: LeapmeModel = serde_json::from_str(&json).unwrap();
        let test = sampling::test_pairs(&ds, &split.train);
        assert_eq!(
            model.score_pairs(&store, &test).unwrap(),
            back.score_pairs(&store, &test).unwrap()
        );
    }
}
