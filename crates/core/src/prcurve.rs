//! Precision–recall analysis over similarity scores.
//!
//! LEAPME's positive-class probability is a *similarity score* (paper
//! §IV-D), so match quality depends on the decision threshold. This
//! module computes the full precision–recall curve, the best-F1 operating
//! point, and average precision — used by the ablation bench and useful
//! for anyone tuning the threshold for their precision/recall needs.

use crate::metrics::Metrics;
use serde::{Deserialize, Serialize};

/// One operating point of the curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Score threshold producing this point.
    pub threshold: f32,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// F1 at the threshold.
    pub f1: f64,
}

/// A precision–recall curve over scored, labeled pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrCurve {
    points: Vec<PrPoint>,
    positives: usize,
    total: usize,
}

impl PrCurve {
    /// Build the curve from `(score, is_match)` pairs: one operating point
    /// per distinct score, thresholds descending.
    ///
    /// Returns `None` when there are no samples or no positives (the
    /// curve would be undefined).
    pub fn from_scores(scored: &[(f32, bool)]) -> Option<Self> {
        let mut sorted: Vec<(f32, bool)> = scored
            .iter()
            .copied()
            .filter(|(s, _)| s.is_finite())
            .collect();
        let positives = sorted.iter().filter(|(_, y)| *y).count();
        if sorted.is_empty() || positives == 0 {
            return None;
        }
        sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let threshold = sorted[i].0;
            // Consume all samples sharing this score.
            while i < sorted.len() && sorted[i].0 == threshold {
                if sorted[i].1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            let m = Metrics::from_counts(tp, fp, positives - tp);
            points.push(PrPoint {
                threshold,
                precision: m.precision,
                recall: m.recall,
                f1: m.f1,
            });
        }
        Some(PrCurve {
            points,
            positives,
            total: sorted.len(),
        })
    }

    /// The operating points, thresholds descending (recall ascending).
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// Number of positive samples behind the curve.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Number of samples behind the curve.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The point with the highest F1 (ties: highest threshold).
    pub fn best_f1(&self) -> PrPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| {
                a.f1.partial_cmp(&b.f1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.threshold.partial_cmp(&b.threshold).unwrap_or(std::cmp::Ordering::Equal))
            })
            .expect("curve is non-empty")
    }

    /// Average precision: Σ P(kᵢ) · ΔR(kᵢ) over the curve (the standard
    /// step-wise AP used in retrieval evaluation), in `[0, 1]`.
    pub fn average_precision(&self) -> f64 {
        let mut ap = 0.0;
        let mut prev_recall = 0.0;
        for p in &self.points {
            ap += p.precision * (p.recall - prev_recall);
            prev_recall = p.recall;
        }
        ap.clamp(0.0, 1.0)
    }

    /// Precision at the smallest threshold whose recall reaches `target`
    /// (`None` if the curve never reaches it — impossible for
    /// `target <= 1.0` since the lowest threshold has recall 1 over the
    /// scored positives, unless positives score −∞).
    pub fn precision_at_recall(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.recall >= target)
            .map(|p| p.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> Vec<(f32, bool)> {
        vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)]
    }

    #[test]
    fn perfect_separation() {
        let c = PrCurve::from_scores(&perfect()).unwrap();
        assert_eq!(c.positives(), 2);
        assert_eq!(c.total(), 4);
        let best = c.best_f1();
        assert_eq!(best.f1, 1.0);
        assert!((c.average_precision() - 1.0).abs() < 1e-12);
        assert_eq!(c.precision_at_recall(1.0), Some(1.0));
    }

    #[test]
    fn empty_or_no_positives_is_none() {
        assert!(PrCurve::from_scores(&[]).is_none());
        assert!(PrCurve::from_scores(&[(0.4, false)]).is_none());
    }

    #[test]
    fn interleaved_scores() {
        // positives at 0.9 and 0.3, negative at 0.5.
        let c = PrCurve::from_scores(&[(0.9, true), (0.5, false), (0.3, true)]).unwrap();
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        // Threshold 0.9: P=1, R=0.5.
        assert_eq!(pts[0].precision, 1.0);
        assert_eq!(pts[0].recall, 0.5);
        // Threshold 0.3: P=2/3, R=1.
        assert!((pts[2].precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[2].recall, 1.0);
        // AP = 1·0.5 + (2/3)·0.5.
        assert!((c.average_precision() - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn tied_scores_collapse_to_one_point() {
        let c = PrCurve::from_scores(&[(0.5, true), (0.5, false), (0.5, true)]).unwrap();
        assert_eq!(c.points().len(), 1);
        let p = c.points()[0];
        assert!((p.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.recall, 1.0);
    }

    #[test]
    fn recall_is_monotone_nondecreasing() {
        let scored: Vec<(f32, bool)> = (0..50)
            .map(|i| ((i as f32) / 50.0, i % 3 == 0))
            .collect();
        let c = PrCurve::from_scores(&scored).unwrap();
        for w in c.points().windows(2) {
            assert!(w[0].recall <= w[1].recall);
            assert!(w[0].threshold > w[1].threshold);
        }
    }

    #[test]
    fn best_f1_beats_fixed_threshold() {
        // Best-F1 point is at least as good as any listed point.
        let scored = vec![
            (0.95, true),
            (0.7, true),
            (0.65, false),
            (0.6, true),
            (0.4, false),
            (0.3, true),
        ];
        let c = PrCurve::from_scores(&scored).unwrap();
        let best = c.best_f1();
        for p in c.points() {
            assert!(best.f1 >= p.f1);
        }
    }

    #[test]
    fn nan_scores_are_dropped() {
        let c = PrCurve::from_scores(&[(f32::NAN, false), (0.9, true)]).unwrap();
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.best_f1().f1, 1.0);
    }
}
