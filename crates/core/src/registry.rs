//! Resident multi-domain model registry.
//!
//! One matching service rarely serves one dataset: every product
//! vertical (or tenant) has its own trained LEAPME model, dataset, and
//! warm feature cache. This module keeps many such *domains* resident
//! behind shared read-only mappings — the v2 zero-copy containers make
//! a cold open cheap (header + section table + lazy CRC), so domains
//! are faulted in on first use instead of at startup, and evicted LRU
//! when a configurable resident-bytes budget is exceeded.
//!
//! Layout on disk: `<root>/<domain>/` with
//!
//! * `model.lmp` — required; v1 or v2 pipeline container,
//! * `dataset.json` — required; the domain's dataset,
//! * `features.lfc` — optional; warm feature cache (v1 or v2; the v2
//!   slab is served zero-copy off the mapping),
//! * `embeddings.txt` — optional fallback; when no cache file exists
//!   the store is built from these embeddings at fault-in.
//!
//! Each domain carries a *generation* counter that survives eviction:
//! [`ModelRegistry::reload`] re-opens the domain from disk and bumps
//! it, which keys the serve layer's single-flight coalescer exactly
//! like the PR8 `integrate-source` swap — in-flight results computed
//! against the old generation are never shared across a swap.

use crate::feature_cache;
use crate::pipeline::{LeapmeModel, ModelOpenPath};
use crate::CoreError;
use leapme_data::model::Dataset;
use leapme_embedding::store::EmbeddingStore;
use leapme_features::PropertyFeatureStore;
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tunables for one registry instance.
#[derive(Debug, Clone, Default)]
pub struct RegistryConfig {
    /// Soft ceiling on the bytes kept resident across all domains
    /// (model + feature-cache file sizes, or an in-memory estimate for
    /// stores built from embeddings). `None` disables eviction. The
    /// budget is soft in one direction only: a single domain larger
    /// than the whole budget still loads — it just evicts everyone
    /// else first.
    pub resident_budget_bytes: Option<u64>,
}

/// Errors from registry discovery and domain fault-in.
#[derive(Debug)]
pub enum RegistryError {
    /// No domain with that name exists under the registry root — the
    /// serve layer maps this to a typed 404 `unknown-model`.
    UnknownModel(String),
    /// The registry root is unusable (missing, unreadable, or holds no
    /// domain directories).
    InvalidRoot(String),
    /// A domain directory exists but its artifacts are missing,
    /// unreadable, or mutually inconsistent.
    InvalidDomain {
        /// Domain name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// The domain's model or cache container failed to load.
    Core(CoreError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            RegistryError::InvalidRoot(msg) => write!(f, "invalid registry root: {msg}"),
            RegistryError::InvalidDomain { name, reason } => {
                write!(f, "invalid domain {name:?}: {reason}")
            }
            RegistryError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<CoreError> for RegistryError {
    fn from(e: CoreError) -> Self {
        RegistryError::Core(e)
    }
}

/// A fully faulted-in domain: everything the serve layer needs to score
/// or match against it. Shared behind `Arc` so eviction (dropping the
/// registry's reference) never invalidates an in-flight request.
pub struct Domain {
    /// Domain name (the directory name under the registry root).
    pub name: String,
    /// The domain's trained model.
    pub model: LeapmeModel,
    /// The domain's dataset.
    pub dataset: Dataset,
    /// Feature store over `dataset` (zero-copy slab when the cache file
    /// is a v2 container).
    pub store: PropertyFeatureStore,
    /// Generation at fault-in time; bumped by [`ModelRegistry::reload`].
    pub generation: u64,
    /// How the model container was opened (`mmap` / `read` /
    /// `legacy-v1`).
    pub model_open_path: ModelOpenPath,
    /// How the feature store was obtained: `mmap` / `read` /
    /// `legacy-v1` for a cache file, `built` when computed from
    /// `embeddings.txt`.
    pub store_source: &'static str,
    /// Bytes this domain accounts against the resident budget.
    pub bytes: u64,
    /// Wall-clock milliseconds the fault-in took.
    pub open_ms: u64,
}

/// Per-domain bookkeeping that survives eviction.
struct DomainSlot {
    resident: Option<Arc<Domain>>,
    generation: u64,
    /// Logical clock value of the most recent use (LRU order).
    last_used: u64,
    hits: u64,
    misses: u64,
    /// Stats of the last successful fault-in (kept after eviction so
    /// `/metrics` still shows what the domain cost to open).
    bytes: u64,
    open_ms: u64,
    open_path: &'static str,
}

struct Inner {
    domains: HashMap<String, DomainSlot>,
    clock: u64,
    resident_bytes: u64,
    evictions: u64,
}

/// Many domains resident behind one root directory. All mutation is
/// behind one mutex — fault-in work (file I/O, store builds) runs
/// *outside* the lock, so a slow cold open never blocks hot domains.
pub struct ModelRegistry {
    root: PathBuf,
    config: RegistryConfig,
    inner: Mutex<Inner>,
}

/// Point-in-time registry statistics for `/metrics` and the CLI
/// `registry` inspection command.
#[derive(Debug, Clone, Serialize)]
pub struct RegistryStats {
    /// One entry per discovered domain, sorted by name.
    pub domains: Vec<DomainStats>,
    /// Bytes currently accounted as resident.
    pub resident_bytes: u64,
    /// Configured budget, if any.
    pub budget_bytes: Option<u64>,
    /// Domains evicted to stay under the budget since startup.
    pub evictions: u64,
}

/// One domain's statistics.
#[derive(Debug, Clone, Serialize)]
pub struct DomainStats {
    /// Domain name.
    pub name: String,
    /// Whether the domain is currently resident.
    pub resident: bool,
    /// Current generation (survives eviction).
    pub generation: u64,
    /// Bytes of the last successful fault-in (0 if never loaded).
    pub bytes: u64,
    /// Milliseconds the last fault-in took.
    pub open_ms: u64,
    /// Requests served while resident.
    pub hits: u64,
    /// Fault-ins (cold opens).
    pub misses: u64,
    /// Open path of the last fault-in (`mmap`/`read`/`legacy-v1`, empty
    /// if never loaded).
    pub open_path: String,
}

impl ModelRegistry {
    /// Discover the domains under `root`: every direct subdirectory
    /// containing a `model.lmp`. Nothing is loaded yet — domains fault
    /// in lazily on first [`Self::get`].
    pub fn open(root: &Path, config: RegistryConfig) -> Result<Self, RegistryError> {
        let entries = std::fs::read_dir(root)
            .map_err(|e| RegistryError::InvalidRoot(format!("{}: {e}", root.display())))?;
        let mut domains = HashMap::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| RegistryError::InvalidRoot(format!("{}: {e}", root.display())))?;
            let path = entry.path();
            if !path.is_dir() || !path.join("model.lmp").is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            domains.insert(
                name.to_string(),
                DomainSlot {
                    resident: None,
                    generation: 0,
                    last_used: 0,
                    hits: 0,
                    misses: 0,
                    bytes: 0,
                    open_ms: 0,
                    open_path: "",
                },
            );
        }
        if domains.is_empty() {
            return Err(RegistryError::InvalidRoot(format!(
                "{}: no domain directories with a model.lmp",
                root.display()
            )));
        }
        Ok(ModelRegistry {
            root: root.to_path_buf(),
            config,
            inner: Mutex::new(Inner {
                domains,
                clock: 0,
                resident_bytes: 0,
                evictions: 0,
            }),
        })
    }

    /// Sorted names of every discovered domain.
    pub fn domains(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = inner.domains.keys().cloned().collect();
        names.sort();
        names
    }

    /// The domain, faulting it in from disk if it is not resident.
    /// Returns [`RegistryError::UnknownModel`] for names that were not
    /// discovered at [`Self::open`] time.
    pub fn get(&self, name: &str) -> Result<Arc<Domain>, RegistryError> {
        let generation = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.clock += 1;
            let clock = inner.clock;
            let slot = inner
                .domains
                .get_mut(name)
                .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
            slot.last_used = clock;
            if let Some(domain) = &slot.resident {
                slot.hits += 1;
                return Ok(Arc::clone(domain));
            }
            slot.generation
        };
        // Cold: load outside the lock (concurrent callers may race to
        // load the same domain; the first to publish wins, the loser's
        // work is dropped — correctness over cleverness, and the serve
        // layer's single-flight already bounds duplicate match work).
        let domain = Arc::new(self.load_domain(name, generation)?);
        Ok(self.publish(name, domain))
    }

    /// Re-open `name` from disk and swap it in atomically with a bumped
    /// generation — the per-domain hot-swap. In-flight requests holding
    /// the old `Arc<Domain>` finish against the old artifacts.
    pub fn reload(&self, name: &str) -> Result<Arc<Domain>, RegistryError> {
        let next_generation = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let slot = inner
                .domains
                .get(name)
                .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
            slot.generation + 1
        };
        let domain = Arc::new(self.load_domain(name, next_generation)?);
        Ok(self.publish(name, domain))
    }

    /// Install a freshly loaded domain, update accounting, and evict
    /// LRU residents until the budget holds again.
    fn publish(&self, name: &str, domain: Arc<Domain>) -> Arc<Domain> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        let mut freed = 0u64;
        if let Some(slot) = inner.domains.get_mut(name) {
            if let Some(old) = slot.resident.take() {
                freed = old.bytes;
            }
            slot.resident = Some(Arc::clone(&domain));
            slot.generation = domain.generation;
            slot.last_used = clock;
            slot.misses += 1;
            slot.bytes = domain.bytes;
            slot.open_ms = domain.open_ms;
            slot.open_path = domain.model_open_path.label();
        }
        inner.resident_bytes = inner.resident_bytes - freed + domain.bytes;
        if let Some(budget) = self.config.resident_budget_bytes {
            // Evict least-recently-used residents other than the one
            // just loaded until the budget holds (or nothing is left to
            // evict — one oversized domain is allowed to stay).
            while inner.resident_bytes > budget {
                let victim = inner
                    .domains
                    .iter()
                    .filter(|(n, s)| s.resident.is_some() && n.as_str() != name)
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(n, _)| n.clone());
                let Some(victim) = victim else { break };
                if let Some(slot) = inner.domains.get_mut(&victim) {
                    if let Some(old) = slot.resident.take() {
                        inner.resident_bytes -= old.bytes;
                        inner.evictions += 1;
                    }
                }
            }
        }
        domain
    }

    /// Drop a domain's resident artifacts (its generation survives, so
    /// a later fault-in continues the sequence). No-op if not resident.
    pub fn evict(&self, name: &str) -> Result<(), RegistryError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = inner
            .domains
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        if let Some(old) = slot.resident.take() {
            let bytes = old.bytes;
            drop(old);
            inner.resident_bytes -= bytes;
            inner.evictions += 1;
        }
        Ok(())
    }

    /// Point-in-time statistics over every discovered domain.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut domains: Vec<DomainStats> = inner
            .domains
            .iter()
            .map(|(name, slot)| DomainStats {
                name: name.clone(),
                resident: slot.resident.is_some(),
                generation: slot.generation,
                bytes: slot.bytes,
                open_ms: slot.open_ms,
                hits: slot.hits,
                misses: slot.misses,
                open_path: slot.open_path.to_string(),
            })
            .collect();
        domains.sort_by(|a, b| a.name.cmp(&b.name));
        RegistryStats {
            domains,
            resident_bytes: inner.resident_bytes,
            budget_bytes: self.config.resident_budget_bytes,
            evictions: inner.evictions,
        }
    }

    /// Load every artifact of one domain from disk. Runs without the
    /// registry lock held.
    fn load_domain(&self, name: &str, generation: u64) -> Result<Domain, RegistryError> {
        let invalid = |reason: String| RegistryError::InvalidDomain {
            name: name.to_string(),
            reason,
        };
        let dir = self.root.join(name);
        let started = Instant::now();
        let model_path = dir.join("model.lmp");
        let (model, model_open_path) = LeapmeModel::load_with_report(&model_path)?;
        let dataset_path = dir.join("dataset.json");
        let json = std::fs::read_to_string(&dataset_path)
            .map_err(|e| invalid(format!("{}: {e}", dataset_path.display())))?;
        let dataset = Dataset::from_json(&json)
            .map_err(|e| invalid(format!("{}: {e}", dataset_path.display())))?;

        let cache_path = dir.join("features.lfc");
        let mut bytes = file_len(&model_path);
        let (store, store_source) = if cache_path.is_file() {
            let (store, recorded, label) = feature_cache::load_resident(&cache_path)
                .map_err(|e| invalid(format!("{}: {e}", cache_path.display())))?;
            // The cache carries no embeddings to re-fingerprint against
            // here; the dataset half of the fingerprint is checkable
            // and must match, or the cache belongs to different data.
            let expected = feature_cache::dataset_fingerprint(&dataset);
            if recorded.dataset != expected {
                return Err(invalid(format!(
                    "feature cache fingerprint {:#018x} does not match dataset {expected:#018x}",
                    recorded.dataset
                )));
            }
            bytes += file_len(&cache_path);
            (store, label)
        } else {
            let emb_path = dir.join("embeddings.txt");
            if !emb_path.is_file() {
                return Err(invalid(
                    "neither features.lfc nor embeddings.txt present".to_string(),
                ));
            }
            let embeddings = EmbeddingStore::load_text(&emb_path)
                .map_err(|e| invalid(format!("{}: {e}", emb_path.display())))?;
            let store = PropertyFeatureStore::build(&dataset, &embeddings);
            // Estimate: the store owns its vectors, so account the slab
            // it would occupy.
            bytes += (store.len() * leapme_features::property::len(store.dim()) * 4) as u64;
            (store, "built")
        };

        Ok(Domain {
            name: name.to_string(),
            model,
            dataset,
            store,
            generation,
            model_open_path,
            store_source,
            bytes,
            open_ms: started.elapsed().as_millis() as u64,
        })
    }
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Leapme, LeapmeConfig};
    use crate::sampling;
    use leapme_data::model::{Instance, PropertyKey, SourceId};
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn dataset() -> Dataset {
        let mk = |source: u16, property: &str, entity: &str, value: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: entity.into(),
            value: value.into(),
        };
        let instances = vec![
            mk(0, "megapixels", "e1", "20.1 MP"),
            mk(0, "price", "e1", "1,299.99"),
            mk(1, "resolution", "x1", "18 megapixels"),
            mk(1, "weight", "x1", "450 g"),
        ];
        let mut alignment = BTreeMap::new();
        for (s, p, u) in [
            (0u16, "megapixels", "resolution"),
            (0, "price", "price"),
            (1, "resolution", "resolution"),
            (1, "weight", "weight"),
        ] {
            alignment.insert(PropertyKey::new(SourceId(s), p), u.to_string());
        }
        Dataset::new("toy", vec!["a".into(), "b".into()], instances, alignment).unwrap()
    }

    fn embeddings() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(4);
        s.insert("megapixels", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        s.insert("resolution", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        s.insert("weight", vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        s.insert("price", vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        s
    }

    /// Write `n` domain dirs (dom0..) sharing one tiny trained model,
    /// dataset, and v2 feature cache. Returns the registry root.
    fn registry_root(tag: &str, n: usize) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "leapme-registry-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();

        let ds = dataset();
        let emb = embeddings();
        let store = PropertyFeatureStore::build(&ds, &emb);
        let mut rng = StdRng::seed_from_u64(3);
        let train = sampling::training_pairs(&ds, &[SourceId(0), SourceId(1)], 2, &mut rng);
        let cfg = LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(2, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![4],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let fp = feature_cache::fingerprint(&ds, &emb);
        for i in 0..n {
            let dir = root.join(format!("dom{i}"));
            std::fs::create_dir_all(&dir).unwrap();
            model.save(&dir.join("model.lmp")).unwrap();
            std::fs::write(dir.join("dataset.json"), ds.to_json()).unwrap();
            feature_cache::save(&dir.join("features.lfc"), &store, &fp).unwrap();
        }
        root
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let root = registry_root("unknown", 1);
        let reg = ModelRegistry::open(&root, RegistryConfig::default()).unwrap();
        match reg.get("nope") {
            Err(RegistryError::UnknownModel(name)) => assert_eq!(name, "nope"),
            other => panic!("expected UnknownModel, got {other:?}", other = other.err()),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_root_is_invalid() {
        let root = std::env::temp_dir().join(format!("leapme-registry-empty-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        assert!(matches!(
            ModelRegistry::open(&root, RegistryConfig::default()),
            Err(RegistryError::InvalidRoot(_))
        ));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fault_in_counts_misses_then_hits() {
        let root = registry_root("hits", 1);
        let reg = ModelRegistry::open(&root, RegistryConfig::default()).unwrap();
        assert_eq!(reg.domains(), vec!["dom0".to_string()]);
        let d1 = reg.get("dom0").unwrap();
        let d2 = reg.get("dom0").unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "hit must share the resident Arc");
        assert!(d1.bytes > 0);
        assert!(d1.store.len() == 4);
        let stats = reg.stats();
        assert_eq!(stats.domains.len(), 1);
        let s = &stats.domains[0];
        assert!(s.resident);
        assert_eq!((s.misses, s.hits), (1, 1));
        assert!(s.open_path == "mmap" || s.open_path == "read", "{}", s.open_path);
        assert_eq!(stats.resident_bytes, d1.bytes);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reload_bumps_generation_and_old_arc_survives() {
        let root = registry_root("reload", 1);
        let reg = ModelRegistry::open(&root, RegistryConfig::default()).unwrap();
        let old = reg.get("dom0").unwrap();
        assert_eq!(old.generation, 0);
        let new = reg.reload("dom0").unwrap();
        assert_eq!(new.generation, 1);
        assert!(!Arc::ptr_eq(&old, &new));
        // The evicted-by-swap domain stays fully usable for in-flight
        // work: scoring over the old mapping must still succeed.
        let pairs = sampling::test_pairs(&old.dataset, &[]);
        let a = old.model.score_pairs(&old.store, &pairs).unwrap();
        let b = new.model.score_pairs(&new.store, &pairs).unwrap();
        assert_eq!(a, b, "identical artifacts must score identically");
        assert_eq!(reg.stats().domains[0].generation, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let root = registry_root("budget", 3);
        // Budget sized from the real artifact bytes: room for two
        // domains but not three.
        let per_domain =
            file_len(&root.join("dom0/model.lmp")) + file_len(&root.join("dom0/features.lfc"));
        let reg = ModelRegistry::open(
            &root,
            RegistryConfig {
                resident_budget_bytes: Some(per_domain * 2 + per_domain / 2),
            },
        )
        .unwrap();
        reg.get("dom0").unwrap();
        reg.get("dom1").unwrap();
        reg.get("dom0").unwrap(); // dom1 is now the LRU resident
        reg.get("dom2").unwrap(); // must evict dom1, not dom0
        let stats = reg.stats();
        let by_name = |n: &str| stats.domains.iter().find(|d| d.name == n).unwrap().clone();
        assert!(by_name("dom0").resident);
        assert!(!by_name("dom1").resident);
        assert!(by_name("dom2").resident);
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= per_domain * 2 + per_domain / 2);
        // Faulting the evicted domain back in works and counts a miss.
        reg.get("dom1").unwrap();
        let stats = reg.stats();
        assert_eq!(
            stats.domains.iter().find(|d| d.name == "dom1").unwrap().misses,
            2
        );
        assert_eq!(stats.evictions, 2, "re-admitting dom1 evicts the LRU again");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn explicit_evict_frees_bytes_and_keeps_generation() {
        let root = registry_root("evict", 1);
        let reg = ModelRegistry::open(&root, RegistryConfig::default()).unwrap();
        reg.reload("dom0").unwrap();
        reg.evict("dom0").unwrap();
        let stats = reg.stats();
        assert!(!stats.domains[0].resident);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.domains[0].generation, 1, "generation survives eviction");
        let back = reg.get("dom0").unwrap();
        assert_eq!(back.generation, 1);
        std::fs::remove_dir_all(&root).ok();
    }
}
