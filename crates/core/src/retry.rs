//! Bounded retry with deterministic jittered backoff for transient
//! I/O errors.
//!
//! Mirrors the PR3 training-retry pattern (`max_loss_retries` +
//! checkpoint rollback): a fixed attempt budget, exponential backoff
//! with deterministic jitter, and a typed [`Exhausted`] error once the
//! budget is spent — never an unbounded loop. The jitter is derived
//! from a splitmix64 stream seeded by the policy, so a given policy
//! produces the same delay schedule on every run (reproducible tests,
//! no wall-clock or RNG dependency).
//!
//! Callers decide which errors are worth retrying via the `transient`
//! predicate; everything else fails on the first attempt. The operation
//! itself must be safe to re-run — atomic writes (temp + rename) are,
//! and the journal repairs its tail before re-appending (see
//! [`crate::journal::RunJournal::append_retrying`]).

use std::time::Duration;

/// Budget and backoff schedule for a bounded retry loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt thereafter.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            seed: 0x5eed_1e4b_ac0f_f5e7,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to sleep after failed attempt `attempt` (1-based).
    ///
    /// Exponential in the attempt number, capped at `max_delay`, then
    /// scaled by a deterministic jitter factor in `[0.5, 1.5)` so
    /// concurrent writers do not thunder in lockstep.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        let jitter = 0.5 + (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(jitter)
    }
}

/// The retry budget was spent without a success.
#[derive(Debug)]
pub struct Exhausted<E> {
    /// How many attempts were made (equals the policy budget for
    /// transient errors; `1` for a non-transient first failure).
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: E,
}

impl<E: std::fmt::Display> std::fmt::Display for Exhausted<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gave up after {} attempt(s): {}", self.attempts, self.last)
    }
}

impl<E: std::error::Error> std::error::Error for Exhausted<E> {}

/// Run `op` up to `policy.max_attempts` times, sleeping a jittered
/// backoff between attempts. Only errors the `transient` predicate
/// accepts are retried; others return immediately as [`Exhausted`]
/// with `attempts: 1..` reflecting the tries actually made.
pub fn with_retry<T, E>(
    policy: &RetryPolicy,
    transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, Exhausted<E>> {
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < budget && transient(&e) => {
                std::thread::sleep(policy.backoff(attempt));
            }
            Err(e) => return Err(Exhausted { attempts: attempt, last: e }),
        }
    }
}

/// splitmix64 step — the same deterministic mixer the fault registry
/// and stress generators use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn transient_error_recovers_within_budget() {
        let fails = Cell::new(2u32);
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let out = with_retry(&policy, |_| true, || {
            if fails.get() > 0 {
                fails.set(fails.get() - 1);
                Err("transient")
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn budget_is_bounded_and_typed() {
        let tries = Cell::new(0u32);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(20),
            ..RetryPolicy::default()
        };
        let err = with_retry::<(), _>(&policy, |_| true, || {
            tries.set(tries.get() + 1);
            Err("still down")
        })
        .unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(tries.get(), 3, "exactly the budget, no infinite loop");
        assert!(err.to_string().contains("3 attempt"));
    }

    #[test]
    fn non_transient_fails_on_first_attempt() {
        let tries = Cell::new(0u32);
        let err = with_retry::<(), _>(&RetryPolicy::default(), |_| false, || {
            tries.set(tries.get() + 1);
            Err("fatal")
        })
        .unwrap_err();
        assert_eq!(err.attempts, 1);
        assert_eq!(tries.get(), 1);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy::default();
        let a: Vec<Duration> = (1..4).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (1..4).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b, "same policy, same schedule");
        for d in &a {
            assert!(*d <= policy.max_delay.mul_f64(1.5), "{d:?}");
        }
        assert!(a[0] >= policy.base_delay.mul_f64(0.5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The backoff schedule is a pure function of the policy: any
        /// seed, any attempt number, same answer twice.
        #[test]
        fn backoff_is_deterministic_under_any_seed(
            seed in 0u64..u64::MAX / 2,
            attempt in 1u32..64,
            base_us in 1u64..10_000,
            max_us in 1u64..100_000,
        ) {
            let policy = RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_micros(base_us),
                max_delay: Duration::from_micros(max_us),
                seed,
            };
            prop_assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }

        /// Every backoff — any attempt, arbitrarily deep into the
        /// schedule — stays within `max_delay × 1.5` (the cap times the
        /// largest jitter factor), and no sleep undershoots half the
        /// base (the smallest jitter on the first attempt's base).
        #[test]
        fn backoff_is_bounded_by_the_cap(
            seed in 0u64..u64::MAX / 2,
            attempt in 1u32..1_000,
            base_us in 1u64..10_000,
            extra_us in 0u64..100_000,
        ) {
            let base = Duration::from_micros(base_us);
            // max_delay >= base_delay, as any sane policy has.
            let policy = RetryPolicy {
                max_attempts: 4,
                base_delay: base,
                max_delay: base + Duration::from_micros(extra_us),
                seed,
            };
            let d = policy.backoff(attempt);
            prop_assert!(
                d <= policy.max_delay.mul_f64(1.5),
                "attempt {} slept {:?}, cap {:?}",
                attempt, d, policy.max_delay.mul_f64(1.5)
            );
            prop_assert!(
                d >= policy.base_delay.mul_f64(0.5),
                "attempt {} slept {:?}, floor {:?}",
                attempt, d, policy.base_delay.mul_f64(0.5)
            );
        }

        /// `with_retry` makes exactly `min(budget, failures + 1)` calls:
        /// the budget is a hard ceiling, and recovery stops the loop
        /// immediately.
        #[test]
        fn attempt_count_is_exact(
            budget in 1u32..8,
            failures in 0u32..10,
        ) {
            let calls = std::cell::Cell::new(0u32);
            let policy = RetryPolicy {
                max_attempts: budget,
                base_delay: Duration::from_micros(1),
                max_delay: Duration::from_micros(2),
                ..RetryPolicy::default()
            };
            let out = with_retry(&policy, |_| true, || {
                calls.set(calls.get() + 1);
                if calls.get() <= failures { Err("transient") } else { Ok(()) }
            });
            let expected = budget.min(failures + 1);
            prop_assert_eq!(calls.get(), expected);
            prop_assert_eq!(out.is_ok(), failures < budget);
            if let Err(e) = out {
                prop_assert_eq!(e.attempts, expected);
            }
        }
    }
}
