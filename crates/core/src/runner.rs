//! Repeated randomized evaluation (the paper's Table II protocol).
//!
//! For each cell of Table II the paper runs LEAPME 25 times with
//! different random combinations of training sources and reports average
//! P/R/F1. [`run_repeated`] implements that loop, parallelized across
//! repetitions with scoped threads (the feature store is shared
//! read-only; each repetition trains its own network).

use crate::journal::RunJournal;
use crate::metrics::{Metrics, MetricsSummary};
use crate::pipeline::{DurableFitOptions, Leapme, LeapmeConfig};
use crate::sampling;
use crate::CoreError;
use leapme_data::model::Dataset;
use leapme_features::{CancelCheck, PropertyFeatureStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// How the test region is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// The paper's protocol: test on the held-out *examples* — all
    /// ground-truth positives outside the training region plus N sampled
    /// negatives per positive (N = the same 2:1 ratio as training).
    SampledExamples,
    /// Stricter: score every cross-source pair outside the training
    /// region (the candidate space is ~97% negative, so precision reads
    /// much lower; reported as a supplementary experiment).
    FullCandidateSpace,
}

/// Configuration of a repeated evaluation run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Fraction of sources used for training (paper: 0.2 and 0.8).
    pub train_fraction: f64,
    /// Number of randomized repetitions (paper: 25).
    pub repetitions: usize,
    /// Negatives sampled per positive (paper: 2).
    pub negative_ratio: usize,
    /// Test-region evaluation mode.
    pub eval: EvalMode,
    /// The model configuration trained in every repetition.
    pub leapme: LeapmeConfig,
    /// Base seed; repetition `r` derives its own seeds from it.
    pub base_seed: u64,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            train_fraction: 0.8,
            repetitions: 5,
            negative_ratio: 2,
            eval: EvalMode::SampledExamples,
            leapme: LeapmeConfig::default(),
            base_seed: 0xAB1E,
            threads: 0,
        }
    }
}

/// Result of one repetition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Zero-based repetition index.
    pub repetition: usize,
    /// Match-quality metrics on the test region.
    pub metrics: Metrics,
    /// Number of labeled training pairs used.
    pub train_pairs: usize,
    /// Number of test candidate pairs scored.
    pub test_pairs: usize,
}

/// Seed used by repetition `repetition` of a run with `base_seed`.
///
/// Public so that baseline evaluations can reuse the *same* random source
/// splits as the LEAPME runs they are compared against.
pub fn repetition_seed(base_seed: u64, repetition: usize) -> u64 {
    base_seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(repetition as u64)
}

/// One repetition: split sources, sample training pairs, fit, evaluate.
pub fn run_once(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    cfg: &RunnerConfig,
    repetition: usize,
) -> Result<RunOutcome, CoreError> {
    run_once_cancellable(dataset, store, cfg, repetition, None)
}

/// [`run_once`] with cooperative cancellation threaded into the fit
/// (per-epoch polls) and the scoring pass (per-block polls). With
/// `cancel: None` the outcome is identical to [`run_once`].
pub fn run_once_cancellable(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    cfg: &RunnerConfig,
    repetition: usize,
    cancel: CancelCheck<'_>,
) -> Result<RunOutcome, CoreError> {
    let seed = repetition_seed(cfg.base_seed, repetition);
    let mut rng = StdRng::seed_from_u64(seed);

    let split = sampling::split_sources(dataset.sources().len(), cfg.train_fraction, &mut rng)?;
    let train = sampling::training_pairs(dataset, &split.train, cfg.negative_ratio, &mut rng);
    if train.iter().filter(|(_, y)| *y).count() == 0 {
        // A degenerate split with no positive pairs can happen on tiny
        // datasets; report it as empty metrics rather than failing.
        return Ok(RunOutcome {
            repetition,
            metrics: Metrics::from_counts(0, 0, sampling::test_ground_truth(dataset, &split.train).len()),
            train_pairs: 0,
            test_pairs: 0,
        });
    }

    let mut leapme_cfg = cfg.leapme.clone();
    leapme_cfg.seed = seed ^ 0x5EED;
    leapme_cfg.train.shuffle_seed = seed ^ 0x5F1E;
    let model = Leapme::fit_durable(
        store,
        &train,
        &leapme_cfg,
        &DurableFitOptions {
            cancel,
            ..DurableFitOptions::default()
        },
    )?;

    let (test, gt) = match cfg.eval {
        EvalMode::SampledExamples => {
            let examples =
                sampling::test_examples(dataset, &split.train, cfg.negative_ratio, &mut rng);
            let gt = examples
                .iter()
                .filter(|(_, y)| *y)
                .map(|(p, _)| p.clone())
                .collect();
            let pairs = examples.into_iter().map(|(p, _)| p).collect::<Vec<_>>();
            (pairs, gt)
        }
        EvalMode::FullCandidateSpace => (
            sampling::test_pairs(dataset, &split.train),
            sampling::test_ground_truth(dataset, &split.train),
        ),
    };
    let graph = model.predict_graph_cancellable(store, &test, cancel)?;
    let metrics = Metrics::from_sets(&graph.matches(leapme_cfg.threshold), &gt);

    Ok(RunOutcome {
        repetition,
        metrics,
        train_pairs: train.len(),
        test_pairs: test.len(),
    })
}

/// Run all repetitions (in parallel) and aggregate.
pub fn run_repeated(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    cfg: &RunnerConfig,
) -> Result<(MetricsSummary, Vec<RunOutcome>), CoreError> {
    if cfg.repetitions == 0 {
        return Err(CoreError::InvalidSplit("zero repetitions".into()));
    }
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(cfg.repetitions);

    let mut outcomes: Vec<Result<RunOutcome, CoreError>> = Vec::with_capacity(cfg.repetitions);
    if threads <= 1 {
        for r in 0..cfg.repetitions {
            outcomes.push(run_once(dataset, store, cfg, r));
        }
    } else {
        let reps: Vec<usize> = (0..cfg.repetitions).collect();
        let chunks: Vec<&[usize]> = reps.chunks(cfg.repetitions.div_ceil(threads)).collect();
        let run_chunk = |chunk: &[usize]| {
            #[cfg(feature = "faults")]
            leapme_faults::maybe_panic(leapme_faults::sites::RUNNER_WORKER);
            chunk
                .iter()
                .map(|&r| (r, run_once(dataset, store, cfg, r)))
                .collect::<Vec<_>>()
        };
        type ChunkResult = Vec<(usize, Result<RunOutcome, CoreError>)>;
        // A panicking worker loses only its own chunk of repetitions:
        // the chunk is requeued once on the calling thread, and a second
        // panic fails those repetitions with a structured error instead
        // of aborting the process.
        let mut results: Vec<Option<ChunkResult>> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move || run_chunk(chunk)))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results.push(Some(r)),
                    Err(_) => {
                        results.push(None);
                        failed.push(i);
                    }
                }
            }
        });
        for i in failed {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_chunk(chunks[i])));
            results[i] = Some(outcome.unwrap_or_else(|payload| {
                let payload = leapme_features::vectorizer::panic_message(payload.as_ref());
                chunks[i]
                    .iter()
                    .map(|&r| {
                        (
                            r,
                            Err(CoreError::WorkerPanic {
                                site: "core.runner.worker".into(),
                                payload: payload.clone(),
                            }),
                        )
                    })
                    .collect()
            }));
        }
        let mut flat: Vec<(usize, Result<RunOutcome, CoreError>)> = results
            .into_iter()
            .flat_map(|r| r.expect("every chunk resolved"))
            .collect();
        flat.sort_by_key(|(r, _)| *r);
        outcomes.extend(flat.into_iter().map(|(_, o)| o));
    }

    let mut ok = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        ok.push(o?);
    }
    let metrics: Vec<Metrics> = ok.iter().map(|o| o.metrics).collect();
    let summary = MetricsSummary::aggregate(&metrics).expect("non-empty repetitions");
    Ok((summary, ok))
}

/// Durable [`run_repeated`]: repetitions completed before a crash or
/// cancellation are replayed from the journal at `journal_path` instead
/// of being recomputed, and the cancellation check is polled between
/// repetitions (plus per-epoch and per-scoring-block inside each one).
///
/// Each finished repetition is appended to the journal and fsynced
/// before the next one starts, so after a kill the journal holds exactly
/// the completed work (modulo one torn trailing record, which
/// [`RunJournal::open`] truncates away). Repetitions are seeded
/// independently by [`repetition_seed`], so the journaled-then-resumed
/// outcomes equal an uninterrupted run's exactly.
///
/// Runs repetitions serially; for maximum throughput without durability
/// use [`run_repeated`].
pub fn run_repeated_durable(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    cfg: &RunnerConfig,
    journal_path: Option<&Path>,
    cancel: CancelCheck<'_>,
) -> Result<(MetricsSummary, Vec<RunOutcome>), CoreError> {
    if cfg.repetitions == 0 {
        return Err(CoreError::InvalidSplit("zero repetitions".into()));
    }
    let journal = journal_path.map(RunJournal::open).transpose()?;
    let mut done: std::collections::BTreeMap<usize, RunOutcome> = std::collections::BTreeMap::new();
    if let Some(j) = &journal {
        for rec in j.replayed::<RunOutcome>()? {
            if rec.repetition < cfg.repetitions {
                done.insert(rec.repetition, rec);
            }
        }
    }
    for r in 0..cfg.repetitions {
        if done.contains_key(&r) {
            continue;
        }
        if cancel.is_some_and(|c| c()) {
            return Err(CoreError::Cancelled);
        }
        let outcome = run_once_cancellable(dataset, store, cfg, r, cancel)?;
        if let Some(j) = &journal {
            // Bounded retry: a transient append failure (disk hiccup,
            // injected torn write) costs one repaired re-append, not
            // the whole repetition's work.
            j.append_retrying(&outcome, &crate::retry::RetryPolicy::default())?;
        }
        done.insert(r, outcome);
    }
    let ok: Vec<RunOutcome> = done.into_values().collect();
    let metrics: Vec<Metrics> = ok.iter().map(|o| o.metrics).collect();
    let summary = MetricsSummary::aggregate(&metrics).expect("non-empty repetitions");
    Ok((summary, ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train as glove_train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;

    fn embeddings(domain: Domain) -> EmbeddingStore {
        let corpus = generate_corpus(
            &domain.spec(),
            &CorpusConfig {
                sentences_per_synonym: 6,
                filler_sentences: 30,
            },
            17,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        glove_train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 12,
                epochs: 6,
                ..GloVeConfig::default()
            },
            3,
        )
        .unwrap()
    }

    fn quick_cfg(reps: usize) -> RunnerConfig {
        RunnerConfig {
            repetitions: reps,
            leapme: LeapmeConfig {
                train: TrainConfig {
                    schedule: LrSchedule::new(vec![(5, 1e-3)]),
                    ..TrainConfig::default()
                },
                hidden: vec![16],
                ..LeapmeConfig::default()
            },
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn repeated_run_aggregates() {
        let ds = generate(Domain::Tvs, 31);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let (summary, outcomes) = run_repeated(&ds, &store, &quick_cfg(3)).unwrap();
        assert_eq!(summary.runs, 3);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.test_pairs > 0));
        assert!(summary.f1_mean > 0.0, "{summary:?}");
    }

    #[test]
    fn parallel_matches_serial() {
        let ds = generate(Domain::Tvs, 32);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut serial_cfg = quick_cfg(3);
        serial_cfg.threads = 1;
        let mut parallel_cfg = quick_cfg(3);
        parallel_cfg.threads = 3;
        let (s1, o1) = run_repeated(&ds, &store, &serial_cfg).unwrap();
        let (s2, o2) = run_repeated(&ds, &store, &parallel_cfg).unwrap();
        assert_eq!(s1, s2);
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.repetition, b.repetition);
        }
    }

    #[test]
    fn different_repetitions_use_different_splits() {
        let ds = generate(Domain::Tvs, 33);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let (_, outcomes) = run_repeated(&ds, &store, &quick_cfg(4)).unwrap();
        // Train-pair counts should vary across random splits (with high
        // probability on imbalanced data).
        let counts: std::collections::HashSet<usize> =
            outcomes.iter().map(|o| o.train_pairs).collect();
        assert!(counts.len() > 1, "all splits identical: {counts:?}");
    }

    #[test]
    fn zero_repetitions_rejected() {
        let ds = generate(Domain::Tvs, 34);
        let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(4));
        let mut cfg = quick_cfg(1);
        cfg.repetitions = 0;
        assert!(run_repeated(&ds, &store, &cfg).is_err());
        assert!(run_repeated_durable(&ds, &store, &cfg, None, None).is_err());
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leapme-runner-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.journal")
    }

    #[test]
    fn durable_run_without_journal_matches_plain() {
        let ds = generate(Domain::Tvs, 35);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let mut cfg = quick_cfg(3);
        cfg.threads = 1;
        let (s1, o1) = run_repeated(&ds, &store, &cfg).unwrap();
        let (s2, o2) = run_repeated_durable(&ds, &store, &cfg, None, None).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn journaled_repetitions_are_skipped_on_restart() {
        let ds = generate(Domain::Tvs, 36);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let path = journal_path("skip");
        let _ = std::fs::remove_file(&path);

        // First run completes 2 repetitions and journals them.
        let (_, first) =
            run_repeated_durable(&ds, &store, &quick_cfg(2), Some(&path), None).unwrap();
        assert_eq!(first.len(), 2);

        // Second run asks for 4: the journaled 2 are replayed verbatim,
        // only repetitions 2 and 3 execute.
        let (_, all) = run_repeated_durable(&ds, &store, &quick_cfg(4), Some(&path), None).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(&all[..2], &first[..]);
        // And the whole thing equals an uninterrupted durable run.
        let fresh = journal_path("skip-fresh");
        let _ = std::fs::remove_file(&fresh);
        let (_, uninterrupted) =
            run_repeated_durable(&ds, &store, &quick_cfg(4), Some(&fresh), None).unwrap();
        assert_eq!(all, uninterrupted);
    }

    #[test]
    fn cancelled_run_resumes_from_journal() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let ds = generate(Domain::Tvs, 37);
        let store = PropertyFeatureStore::build(&ds, &embeddings(Domain::Tvs));
        let path = journal_path("cancel");
        let _ = std::fs::remove_file(&path);

        // Cancel as soon as the first repetition has been journaled: the
        // journal flips the flag from a thread watching the file.
        let path_clone = path.clone();
        let flag = AtomicBool::new(false);
        let cancel = || {
            if !flag.load(Ordering::SeqCst)
                && std::fs::metadata(&path_clone).map(|m| m.len()).unwrap_or(0) > 0
            {
                flag.store(true, Ordering::SeqCst);
            }
            flag.load(Ordering::SeqCst)
        };
        let err = run_repeated_durable(&ds, &store, &quick_cfg(3), Some(&path), Some(&cancel))
            .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "{err}");
        let j = crate::journal::RunJournal::open(&path).unwrap();
        let done = j.len();
        assert!((1..3).contains(&done), "journaled {done} of 3");
        drop(j);

        // Resume without cancellation and compare to a fresh run.
        let (s1, o1) = run_repeated_durable(&ds, &store, &quick_cfg(3), Some(&path), None).unwrap();
        let fresh = journal_path("cancel-fresh");
        let _ = std::fs::remove_file(&fresh);
        let (s2, o2) =
            run_repeated_durable(&ds, &store, &quick_cfg(3), Some(&fresh), None).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn immediate_cancellation_short_circuits() {
        let ds = generate(Domain::Tvs, 38);
        let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(4));
        let cancel = || true;
        let err =
            run_repeated_durable(&ds, &store, &quick_cfg(2), None, Some(&cancel)).unwrap_err();
        assert!(matches!(err, CoreError::Cancelled));
    }
}
