//! The paper's evaluation protocol (§V-B): source-level splits, training
//! pairs restricted to training sources, negative sampling.
//!
//! *"We take a fraction of the sources of a dataset (at random) for
//! training. We use the examples that involve two sources of data in the
//! training set to train the classifier, and test it with the rest. […]
//! the training data consists of two negative (non-matching) pairs of
//! properties for every positive (matching) pair, and the negative pairs
//! are randomly selected."*

use crate::CoreError;
use leapme_data::model::{Dataset, PropertyKey, PropertyPair, SourceId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::BTreeSet;

/// A train/test partition of a dataset's sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSplit {
    /// Sources whose pairwise examples form the training data.
    pub train: Vec<SourceId>,
    /// The remaining sources.
    pub test: Vec<SourceId>,
}

/// Randomly split `n_sources` sources, putting (approximately)
/// `train_fraction` of them in the training set.
///
/// At least two sources go to training (pairs need two sources) and at
/// least one stays for testing. Errors if `n_sources < 3` or the fraction
/// is outside `(0, 1)`.
pub fn split_sources(
    n_sources: usize,
    train_fraction: f64,
    rng: &mut StdRng,
) -> Result<SourceSplit, CoreError> {
    if n_sources < 3 {
        return Err(CoreError::InvalidSplit(format!(
            "need at least 3 sources, have {n_sources}"
        )));
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(CoreError::InvalidSplit(format!(
            "train fraction must be in (0, 1), got {train_fraction}"
        )));
    }
    let n_train = ((n_sources as f64 * train_fraction).round() as usize)
        .clamp(2, n_sources - 1);
    let mut ids: Vec<SourceId> = (0..n_sources).map(|i| SourceId(i as u16)).collect();
    ids.shuffle(rng);
    let train = ids[..n_train].to_vec();
    let test = ids[n_train..].to_vec();
    Ok(SourceSplit { train, test })
}

/// Labeled training pairs: every ground-truth (positive) pair whose both
/// endpoints lie in `train_sources`, plus `negative_ratio` randomly
/// sampled non-matching pairs per positive (paper: ratio 2).
///
/// If the training region contains fewer negatives than requested, all of
/// them are used.
pub fn training_pairs(
    dataset: &Dataset,
    train_sources: &[SourceId],
    negative_ratio: usize,
    rng: &mut StdRng,
) -> Vec<(PropertyPair, bool)> {
    let train_set: BTreeSet<SourceId> = train_sources.iter().copied().collect();
    let gt = dataset.ground_truth_pairs();

    let positives: Vec<PropertyPair> = gt
        .iter()
        .filter(|PropertyPair(a, b)| train_set.contains(&a.source) && train_set.contains(&b.source))
        .cloned()
        .collect();

    let mut negatives: Vec<PropertyPair> = dataset
        .cross_source_pairs(train_sources)
        .into_iter()
        .filter(|p| !gt.contains(p))
        .collect();
    negatives.shuffle(rng);
    negatives.truncate(positives.len() * negative_ratio);

    let mut out: Vec<(PropertyPair, bool)> = Vec::with_capacity(positives.len() + negatives.len());
    out.extend(positives.into_iter().map(|p| (p, true)));
    out.extend(negatives.into_iter().map(|p| (p, false)));
    out.shuffle(rng);
    out
}

/// Labeled *test examples* under the paper's protocol reading: every
/// ground-truth positive outside the training region plus
/// `negative_ratio` randomly sampled negatives per positive, also outside
/// the training region.
///
/// The paper trains on "the examples that involve two sources of the
/// training set" and tests "with the rest" — i.e. the held-out part of
/// the sampled example set (which carries 2 negatives per positive), not
/// the full quadratic candidate space. [`test_pairs`] provides the
/// stricter full-space alternative.
pub fn test_examples(
    dataset: &Dataset,
    train_sources: &[SourceId],
    negative_ratio: usize,
    rng: &mut StdRng,
) -> Vec<(PropertyPair, bool)> {
    let train_set: BTreeSet<SourceId> = train_sources.iter().copied().collect();
    let in_test_region = |PropertyPair(a, b): &PropertyPair| {
        !(train_set.contains(&a.source) && train_set.contains(&b.source))
    };
    let gt = dataset.ground_truth_pairs();
    let positives: Vec<PropertyPair> = gt.iter().filter(|p| in_test_region(p)).cloned().collect();

    let all_sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let mut negatives: Vec<PropertyPair> = dataset
        .cross_source_pairs(&all_sources)
        .into_iter()
        .filter(|p| in_test_region(p) && !gt.contains(p))
        .collect();
    negatives.shuffle(rng);
    negatives.truncate(positives.len() * negative_ratio);

    let mut out: Vec<(PropertyPair, bool)> = Vec::with_capacity(positives.len() + negatives.len());
    out.extend(positives.into_iter().map(|p| (p, true)));
    out.extend(negatives.into_iter().map(|p| (p, false)));
    out.shuffle(rng);
    out
}

/// The full test candidate space: every cross-source pair *not* entirely
/// within the training sources.
pub fn test_pairs(dataset: &Dataset, train_sources: &[SourceId]) -> Vec<PropertyPair> {
    let train_set: BTreeSet<SourceId> = train_sources.iter().copied().collect();
    let all_sources: Vec<SourceId> = (0..dataset.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    dataset
        .cross_source_pairs(&all_sources)
        .into_iter()
        .filter(|PropertyPair(a, b)| {
            !(train_set.contains(&a.source) && train_set.contains(&b.source))
        })
        .collect()
}

/// Ground-truth positives restricted to the test candidate space.
pub fn test_ground_truth(dataset: &Dataset, train_sources: &[SourceId]) -> BTreeSet<PropertyPair> {
    let train_set: BTreeSet<SourceId> = train_sources.iter().copied().collect();
    dataset
        .ground_truth_pairs()
        .into_iter()
        .filter(|PropertyPair(a, b)| {
            !(train_set.contains(&a.source) && train_set.contains(&b.source))
        })
        .collect()
}

/// All properties of the given sources (helper for baselines that match
/// schemas directly).
pub fn properties_of_sources(dataset: &Dataset, sources: &[SourceId]) -> Vec<PropertyKey> {
    let set: BTreeSet<SourceId> = sources.iter().copied().collect();
    dataset
        .properties()
        .into_iter()
        .filter(|p| set.contains(&p.source))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::domains::{generate, Domain};
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn split_respects_fraction_and_bounds() {
        let mut r = rng(1);
        let s = split_sources(24, 0.2, &mut r).unwrap();
        assert_eq!(s.train.len(), 5); // round(24 * 0.2)
        assert_eq!(s.test.len(), 19);
        let s = split_sources(24, 0.8, &mut r).unwrap();
        assert_eq!(s.train.len(), 19);
        // Extremes clamp.
        let s = split_sources(3, 0.01, &mut r).unwrap();
        assert_eq!(s.train.len(), 2);
        let s = split_sources(3, 0.99, &mut r).unwrap();
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn split_partitions_sources() {
        let mut r = rng(2);
        let s = split_sources(10, 0.5, &mut r).unwrap();
        let mut all: Vec<u16> = s.train.iter().chain(&s.test).map(|x| x.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10u16).collect::<Vec<_>>());
    }

    #[test]
    fn split_errors() {
        let mut r = rng(3);
        assert!(split_sources(2, 0.5, &mut r).is_err());
        assert!(split_sources(10, 0.0, &mut r).is_err());
        assert!(split_sources(10, 1.0, &mut r).is_err());
    }

    #[test]
    fn split_varies_with_rng() {
        let a = split_sources(24, 0.5, &mut rng(4)).unwrap();
        let b = split_sources(24, 0.5, &mut rng(5)).unwrap();
        assert_ne!(a.train, b.train);
        // Deterministic per seed.
        let c = split_sources(24, 0.5, &mut rng(4)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn training_pairs_ratio_and_region() {
        let ds = generate(Domain::Headphones, 3);
        let mut r = rng(6);
        let split = split_sources(ds.sources().len(), 0.8, &mut r).unwrap();
        let pairs = training_pairs(&ds, &split.train, 2, &mut r);
        let pos = pairs.iter().filter(|(_, y)| *y).count();
        let neg = pairs.len() - pos;
        assert!(pos > 0, "no positives in training region");
        assert!(neg <= pos * 2);
        // Dense enough negatives exist to hit exactly 2:1 here.
        assert_eq!(neg, pos * 2);
        let train_set: BTreeSet<SourceId> = split.train.iter().copied().collect();
        for (PropertyPair(a, b), _) in &pairs {
            assert!(train_set.contains(&a.source) && train_set.contains(&b.source));
        }
    }

    #[test]
    fn training_labels_match_ground_truth() {
        let ds = generate(Domain::Tvs, 4);
        let mut r = rng(7);
        let split = split_sources(ds.sources().len(), 0.8, &mut r).unwrap();
        let pairs = training_pairs(&ds, &split.train, 2, &mut r);
        let gt = ds.ground_truth_pairs();
        for (p, y) in &pairs {
            assert_eq!(gt.contains(p), *y);
        }
    }

    #[test]
    fn test_pairs_exclude_train_only_pairs() {
        let ds = generate(Domain::Phones, 5);
        let mut r = rng(8);
        let split = split_sources(ds.sources().len(), 0.5, &mut r).unwrap();
        let train_set: BTreeSet<SourceId> = split.train.iter().copied().collect();
        for PropertyPair(a, b) in test_pairs(&ds, &split.train) {
            assert!(
                !(train_set.contains(&a.source) && train_set.contains(&b.source)),
                "pair entirely inside training region"
            );
        }
    }

    #[test]
    fn test_ground_truth_subset_of_test_pairs() {
        let ds = generate(Domain::Tvs, 6);
        let mut r = rng(9);
        let split = split_sources(ds.sources().len(), 0.5, &mut r).unwrap();
        let candidates: BTreeSet<PropertyPair> =
            test_pairs(&ds, &split.train).into_iter().collect();
        let gt = test_ground_truth(&ds, &split.train);
        assert!(!gt.is_empty());
        for p in &gt {
            assert!(candidates.contains(p), "gt pair missing from candidates");
        }
    }

    #[test]
    fn test_examples_ratio_and_region() {
        let ds = generate(Domain::Headphones, 11);
        let mut r = rng(11);
        let split = split_sources(ds.sources().len(), 0.8, &mut r).unwrap();
        let examples = test_examples(&ds, &split.train, 2, &mut r);
        let pos = examples.iter().filter(|(_, y)| *y).count();
        let neg = examples.len() - pos;
        assert!(pos > 0);
        assert_eq!(neg, pos * 2);
        // All positives of the test region are present.
        assert_eq!(pos, test_ground_truth(&ds, &split.train).len());
        // No pair lies entirely within the training region.
        let train_set: BTreeSet<SourceId> = split.train.iter().copied().collect();
        for (PropertyPair(a, b), _) in &examples {
            assert!(!(train_set.contains(&a.source) && train_set.contains(&b.source)));
        }
        // Labels agree with ground truth.
        let gt = ds.ground_truth_pairs();
        for (p, y) in &examples {
            assert_eq!(gt.contains(p), *y);
        }
    }

    #[test]
    fn train_and_test_regions_cover_all_gt() {
        let ds = generate(Domain::Headphones, 10);
        let mut r = rng(10);
        let split = split_sources(ds.sources().len(), 0.5, &mut r).unwrap();
        let train_set: BTreeSet<SourceId> = split.train.iter().copied().collect();
        let gt = ds.ground_truth_pairs();
        let train_gt = gt
            .iter()
            .filter(|PropertyPair(a, b)| {
                train_set.contains(&a.source) && train_set.contains(&b.source)
            })
            .count();
        let test_gt = test_ground_truth(&ds, &split.train).len();
        assert_eq!(train_gt + test_gt, gt.len());
    }
}
