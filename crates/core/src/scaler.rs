//! Feature standardization (z-score scaling).
//!
//! LEAPME's feature vector mixes fractions in `[0, 1]`, raw counts, raw
//! numeric values (an ISO value can be 409600), and embedding components
//! — scales differing by five orders of magnitude. Standardizing each
//! column to zero mean / unit variance on the *training* data is the
//! standard preprocessing for dense networks and is required for the
//! paper's small learning rates (1e-3…1e-5) to make progress on every
//! feature; the statistics learned at fit time are reapplied verbatim at
//! prediction time.

use leapme_nn::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-column standardization statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f32>,
    /// Inverse standard deviations (0 variance → 0, zeroing the column).
    inv_stds: Vec<f32>,
}

impl Scaler {
    /// Fit column means/stds on a training matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit scaler on empty matrix");
        let (n, d) = x.shape();
        let mut means = vec![0.0f32; d];
        for r in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f32;
        }
        let mut vars = vec![0.0f32; d];
        for r in 0..n {
            for ((v, &x_val), &m) in vars.iter_mut().zip(x.row(r)).zip(&means) {
                let diff = x_val - m;
                *v += diff * diff;
            }
        }
        let inv_stds = vars
            .iter()
            .map(|&v| {
                let std = (v / n as f32).sqrt();
                if std > 1e-8 {
                    1.0 / std
                } else {
                    0.0
                }
            })
            .collect();
        Scaler { means, inv_stds }
    }

    /// Number of columns the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardize a matrix in place.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted dimension.
    pub fn transform_inplace(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.dim(), "scaler dimension mismatch");
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.inv_stds) {
                *v = (*v - m) * s;
            }
        }
    }

    /// Fit on `x` and standardize it in place, returning the scaler.
    pub fn fit_transform(x: &mut Matrix) -> Self {
        let s = Scaler::fit(x);
        s.transform_inplace(x);
        s
    }

    /// The fitted statistics `(means, inverse stds)`, for binary
    /// persistence of trained models.
    pub(crate) fn parts(&self) -> (&[f32], &[f32]) {
        (&self.means, &self.inv_stds)
    }

    /// Rebuild a scaler from persisted statistics.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors' lengths differ.
    pub(crate) fn from_parts(means: Vec<f32>, inv_stds: Vec<f32>) -> Self {
        assert_eq!(means.len(), inv_stds.len(), "scaler stats length mismatch");
        Scaler { means, inv_stds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ])
    }

    #[test]
    fn standardizes_columns() {
        let mut x = sample();
        Scaler::fit_transform(&mut x);
        // Each non-constant column: mean 0, unit variance.
        for c in 0..2 {
            let vals: Vec<f32> = (0..3).map(|r| x.get(r, c)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6);
            let var: f32 = vals.iter().map(|v| v * v).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_columns_zeroed() {
        let mut x = sample();
        Scaler::fit_transform(&mut x);
        for r in 0..3 {
            assert_eq!(x.get(r, 2), 0.0);
        }
    }

    #[test]
    fn transform_applies_training_stats() {
        let train = sample();
        let scaler = Scaler::fit(&train);
        let mut test = Matrix::from_rows(&[vec![2.0, 200.0, 9.0]]);
        scaler.transform_inplace(&mut test);
        // Column 0: (2 - 2) / std = 0.
        assert!(test.get(0, 0).abs() < 1e-6);
        // Constant train column stays zeroed regardless of test value.
        assert_eq!(test.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn rejects_empty() {
        Scaler::fit(&Matrix::zeros(0, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_width() {
        let s = Scaler::fit(&sample());
        let mut bad = Matrix::zeros(1, 2);
        s.transform_inplace(&mut bad);
    }

    #[test]
    fn serde_round_trip() {
        let s = Scaler::fit(&sample());
        let json = serde_json::to_string(&s).unwrap();
        let back: Scaler = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
