//! The similarity graph of scored property pairs (Algorithm 1 output).
//!
//! LEAPME's output `Sim` is a collection of property pairs with similarity
//! scores — the positive-class probability of the classifier (paper
//! §IV-D) — kept as a graph so downstream steps (clustering, fusion) can
//! consume it.

use leapme_data::model::{PropertyKey, PropertyPair};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A weighted graph over properties; edge weight = match similarity.
///
/// ```
/// use leapme_core::simgraph::SimilarityGraph;
/// use leapme_data::model::{PropertyKey, PropertyPair, SourceId};
///
/// let mut g = SimilarityGraph::new();
/// let pair = PropertyPair::new(
///     PropertyKey::new(SourceId(0), "mp"),
///     PropertyKey::new(SourceId(1), "resolution"),
/// );
/// g.add(pair.clone(), 0.93);
/// assert_eq!(g.score(&pair), Some(0.93));
/// assert_eq!(g.matches(0.5).len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimilarityGraph {
    /// Serialized as a list of entries because JSON map keys must be
    /// strings.
    #[serde(with = "edges_serde")]
    edges: BTreeMap<PropertyPair, f32>,
}

mod edges_serde {
    use super::PropertyPair;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<PropertyPair, f32>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&PropertyPair, &f32)> = map.iter().collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<PropertyPair, f32>, D::Error> {
        let entries: Vec<(PropertyPair, f32)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl SimilarityGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or overwrite) an edge.
    ///
    /// # Panics
    ///
    /// Panics if the score is not finite.
    pub fn add(&mut self, pair: PropertyPair, score: f32) {
        assert!(score.is_finite(), "similarity must be finite");
        self.edges.insert(pair, score);
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Score of a pair, if present.
    pub fn score(&self, pair: &PropertyPair) -> Option<f32> {
        self.edges.get(pair).copied()
    }

    /// Iterate all `(pair, score)` edges in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&PropertyPair, f32)> + '_ {
        self.edges.iter().map(|(p, &s)| (p, s))
    }

    /// The pairs whose score is at least `threshold` — the match decisions.
    pub fn matches(&self, threshold: f32) -> BTreeSet<PropertyPair> {
        self.edges
            .iter()
            .filter(|(_, &s)| s >= threshold)
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// All distinct properties appearing in the graph.
    pub fn nodes(&self) -> BTreeSet<PropertyKey> {
        let mut out = BTreeSet::new();
        for PropertyPair(a, b) in self.edges.keys() {
            out.insert(a.clone());
            out.insert(b.clone());
        }
        out
    }

    /// Neighbors of `key` with score ≥ `threshold`, sorted by descending
    /// score.
    pub fn neighbors(&self, key: &PropertyKey, threshold: f32) -> Vec<(PropertyKey, f32)> {
        let mut out: Vec<(PropertyKey, f32)> = self
            .edges
            .iter()
            .filter(|(_, &s)| s >= threshold)
            .filter_map(|(PropertyPair(a, b), &s)| {
                if a == key {
                    Some((b.clone(), s))
                } else if b == key {
                    Some((a.clone(), s))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// The `k` highest-scoring edges.
    pub fn top_k(&self, k: usize) -> Vec<(PropertyPair, f32)> {
        let mut all: Vec<(PropertyPair, f32)> =
            self.edges.iter().map(|(p, &s)| (p.clone(), s)).collect();
        all.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        all.truncate(k);
        all
    }

    /// Merge another graph into this one (overwrites shared pairs).
    pub fn merge(&mut self, other: SimilarityGraph) {
        self.edges.extend(other.edges);
    }
}

impl FromIterator<(PropertyPair, f32)> for SimilarityGraph {
    fn from_iter<T: IntoIterator<Item = (PropertyPair, f32)>>(iter: T) -> Self {
        let mut g = SimilarityGraph::new();
        for (p, s) in iter {
            g.add(p, s);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::SourceId;

    fn key(s: u16, n: &str) -> PropertyKey {
        PropertyKey::new(SourceId(s), n)
    }

    fn pair(a: u16, an: &str, b: u16, bn: &str) -> PropertyPair {
        PropertyPair::new(key(a, an), key(b, bn))
    }

    fn sample() -> SimilarityGraph {
        [
            (pair(0, "mp", 1, "resolution"), 0.9f32),
            (pair(0, "mp", 2, "pixels"), 0.7),
            (pair(1, "resolution", 2, "pixels"), 0.8),
            (pair(0, "mp", 1, "weight"), 0.1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn add_and_score() {
        let g = sample();
        assert_eq!(g.len(), 4);
        assert_eq!(g.score(&pair(0, "mp", 1, "resolution")), Some(0.9));
        assert_eq!(g.score(&pair(0, "mp", 1, "nope")), None);
    }

    #[test]
    fn matches_threshold() {
        let g = sample();
        assert_eq!(g.matches(0.75).len(), 2);
        assert_eq!(g.matches(0.0).len(), 4);
        assert!(g.matches(0.95).is_empty());
    }

    #[test]
    fn nodes_and_neighbors() {
        let g = sample();
        assert_eq!(g.nodes().len(), 4);
        let n = g.neighbors(&key(0, "mp"), 0.5);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].0, key(1, "resolution")); // highest score first
    }

    #[test]
    fn top_k_sorted() {
        let g = sample();
        let top = g.top_k(2);
        assert_eq!(top[0].1, 0.9);
        assert_eq!(top[1].1, 0.8);
        assert_eq!(g.top_k(100).len(), 4);
    }

    #[test]
    fn merge_overwrites() {
        let mut g = sample();
        let mut other = SimilarityGraph::new();
        other.add(pair(0, "mp", 1, "resolution"), 0.2);
        other.add(pair(3, "x", 4, "y"), 0.5);
        g.merge(other);
        assert_eq!(g.len(), 5);
        assert_eq!(g.score(&pair(0, "mp", 1, "resolution")), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut g = SimilarityGraph::new();
        g.add(pair(0, "a", 1, "b"), f32::NAN);
    }

    #[test]
    fn serde_round_trip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let back: SimilarityGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(
            back.score(&pair(0, "mp", 2, "pixels")),
            g.score(&pair(0, "mp", 2, "pixels"))
        );
    }
}
