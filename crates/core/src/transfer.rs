//! Cross-domain transfer learning (paper §V: "we … study the use of
//! transfer learning").
//!
//! Train a LEAPME model on one product domain (all of its sources) and
//! evaluate it, unchanged, on a *different* domain. Because the features
//! are domain-agnostic (format meta-features, embedding distances, string
//! distances), a model trained on cameras can plausibly match phone
//! properties — the experiment quantifies how much quality is lost
//! compared to in-domain training.

use crate::metrics::Metrics;
use crate::pipeline::{Leapme, LeapmeConfig};
use crate::sampling;
use crate::CoreError;
use leapme_data::model::{Dataset, PropertyPair, SourceId};
use leapme_features::PropertyFeatureStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Outcome of one transfer experiment.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// Name of the domain the model was trained on.
    pub train_domain: String,
    /// Name of the domain the model was evaluated on.
    pub test_domain: String,
    /// Match-quality metrics on the full target-domain candidate space.
    pub metrics: Metrics,
}

/// Train on all sources of `train_ds` and evaluate on all cross-source
/// pairs of `test_ds`.
///
/// Both feature stores must be built with the *same* embedding store so
/// the learned weights make sense on the target domain; a dimension
/// mismatch is rejected.
pub fn transfer_evaluate(
    train_ds: &Dataset,
    train_store: &PropertyFeatureStore,
    test_ds: &Dataset,
    test_store: &PropertyFeatureStore,
    cfg: &LeapmeConfig,
    negative_ratio: usize,
    seed: u64,
) -> Result<TransferOutcome, CoreError> {
    if train_store.dim() != test_store.dim() {
        return Err(CoreError::InvalidSplit(format!(
            "embedding dims differ: {} vs {}",
            train_store.dim(),
            test_store.dim()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Use every source of the training domain.
    let all_train_sources: Vec<SourceId> = (0..train_ds.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let train = sampling::training_pairs(train_ds, &all_train_sources, negative_ratio, &mut rng);
    let model = Leapme::fit(train_store, &train, cfg)?;

    // Evaluate on the whole target domain.
    let all_test_sources: Vec<SourceId> = (0..test_ds.sources().len())
        .map(|i| SourceId(i as u16))
        .collect();
    let candidates: Vec<PropertyPair> = test_ds.cross_source_pairs(&all_test_sources);
    let gt: BTreeSet<PropertyPair> = test_ds.ground_truth_pairs();
    let graph = model.predict_graph(test_store, &candidates)?;
    let metrics = Metrics::from_sets(&graph.matches(cfg.threshold), &gt);

    Ok(TransferOutcome {
        train_domain: train_ds.name().to_string(),
        test_domain: test_ds.name().to_string(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train as glove_train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;
    use leapme_nn::network::TrainConfig;
    use leapme_nn::schedule::LrSchedule;

    /// Embeddings trained on the union of two domains' corpora — the
    /// transfer setting requires one shared embedding space.
    fn shared_embeddings(a: Domain, b: Domain) -> EmbeddingStore {
        let cfg = CorpusConfig {
            sentences_per_synonym: 5,
            filler_sentences: 20,
        };
        let mut corpus = generate_corpus(&a.spec(), &cfg, 41);
        corpus.extend(generate_corpus(&b.spec(), &cfg, 42));
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        glove_train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 12,
                epochs: 5,
                ..GloVeConfig::default()
            },
            5,
        )
        .unwrap()
    }

    fn quick_leapme() -> LeapmeConfig {
        LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(5, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![16],
            ..LeapmeConfig::default()
        }
    }

    #[test]
    fn transfer_produces_nonzero_quality() {
        let emb = shared_embeddings(Domain::Tvs, Domain::Headphones);
        let tvs = generate(Domain::Tvs, 51);
        let hp = generate(Domain::Headphones, 52);
        let tv_store = PropertyFeatureStore::build(&tvs, &emb);
        let hp_store = PropertyFeatureStore::build(&hp, &emb);
        let out =
            transfer_evaluate(&tvs, &tv_store, &hp, &hp_store, &quick_leapme(), 2, 9).unwrap();
        assert_eq!(out.train_domain, "tvs");
        assert_eq!(out.test_domain, "headphones");
        // Transfer should recover at least some matches (names/formats
        // transfer even across domains).
        assert!(
            out.metrics.f1 > 0.05,
            "transfer learned nothing: {}",
            out.metrics
        );
    }

    #[test]
    fn rejects_mismatched_embedding_dims() {
        let tvs = generate(Domain::Tvs, 53);
        let hp = generate(Domain::Headphones, 54);
        let a = PropertyFeatureStore::build(&tvs, &EmbeddingStore::new(4));
        let b = PropertyFeatureStore::build(&hp, &EmbeddingStore::new(8));
        let err = transfer_evaluate(&tvs, &a, &hp, &b, &quick_leapme(), 2, 1).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSplit(_)));
    }
}
