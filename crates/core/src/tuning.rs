//! Grid-search hyper-parameter tuning for the LEAPME classifier.
//!
//! The paper tuned its hyper-parameters "manually in preliminary tests"
//! (§IV-D). This module provides the systematic version: a grid over
//! candidate configurations, each evaluated with the repeated-splits
//! protocol on a *tuning* region, returning the configurations ranked by
//! mean F1. Keeping the tuning split separate from the final evaluation
//! split (different `base_seed`) avoids leaking the test region.

use crate::pipeline::LeapmeConfig;
use crate::runner::{run_repeated, RunnerConfig};
use crate::CoreError;
use leapme_data::model::Dataset;
use leapme_features::PropertyFeatureStore;
use leapme_nn::network::TrainConfig;
use leapme_nn::schedule::LrSchedule;

/// One grid point with its measured quality.
#[derive(Debug, Clone)]
pub struct TunedCandidate {
    /// Short human-readable description of the configuration.
    pub label: String,
    /// The configuration itself.
    pub config: LeapmeConfig,
    /// Mean F1 over the tuning repetitions.
    pub f1_mean: f64,
    /// Std-dev of F1.
    pub f1_std: f64,
}

/// Grid definition: cartesian product of hidden-layer layouts and
/// learning-rate schedules (batch size and features stay fixed).
#[derive(Debug, Clone)]
pub struct TuningGrid {
    /// Candidate hidden-layer layouts.
    pub hidden: Vec<Vec<usize>>,
    /// Candidate schedules, labeled.
    pub schedules: Vec<(String, LrSchedule)>,
}

impl Default for TuningGrid {
    fn default() -> Self {
        TuningGrid {
            hidden: vec![vec![64], vec![128, 64], vec![256, 128]],
            schedules: vec![
                ("staged-paper".into(), LrSchedule::leapme()),
                ("const-1e-3".into(), LrSchedule::constant(20, 1e-3)),
            ],
        }
    }
}

/// Evaluate every grid point and return candidates ranked by mean F1
/// (best first).
pub fn grid_search(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    grid: &TuningGrid,
    base: &RunnerConfig,
) -> Result<Vec<TunedCandidate>, CoreError> {
    if grid.hidden.is_empty() || grid.schedules.is_empty() {
        return Err(CoreError::InvalidSplit("empty tuning grid".into()));
    }
    let mut out = Vec::with_capacity(grid.hidden.len() * grid.schedules.len());
    for hidden in &grid.hidden {
        for (schedule_label, schedule) in &grid.schedules {
            let config = LeapmeConfig {
                hidden: hidden.clone(),
                train: TrainConfig {
                    schedule: schedule.clone(),
                    ..base.leapme.train.clone()
                },
                ..base.leapme.clone()
            };
            let runner = RunnerConfig {
                leapme: config.clone(),
                ..base.clone()
            };
            let (summary, _) = run_repeated(dataset, store, &runner)?;
            out.push(TunedCandidate {
                label: format!("hidden={hidden:?} schedule={schedule_label}"),
                config,
                f1_mean: summary.f1_mean,
                f1_std: summary.f1_std,
            });
        }
    }
    out.sort_by(|a, b| b.f1_mean.partial_cmp(&a.f1_mean).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::corpus::{generate_corpus, CorpusConfig};
    use leapme_data::domains::{generate, Domain};
    use leapme_embedding::cooccur::CooccurrenceMatrix;
    use leapme_embedding::glove::{train, GloVeConfig};
    use leapme_embedding::store::EmbeddingStore;
    use leapme_embedding::vocab::Vocab;

    fn embeddings() -> EmbeddingStore {
        let corpus = generate_corpus(
            &Domain::Tvs.spec(),
            &CorpusConfig {
                sentences_per_synonym: 6,
                filler_sentences: 20,
            },
            3,
        );
        let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), 2);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, 5);
        train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 12,
                epochs: 6,
                ..GloVeConfig::default()
            },
            3,
        )
        .unwrap()
    }

    #[test]
    fn grid_search_ranks_candidates() {
        let ds = generate(Domain::Tvs, 55);
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let grid = TuningGrid {
            hidden: vec![vec![16], vec![32, 16]],
            schedules: vec![
                ("short".into(), LrSchedule::constant(4, 1e-3)),
                ("shorter".into(), LrSchedule::constant(2, 1e-3)),
            ],
        };
        let base = RunnerConfig {
            repetitions: 2,
            base_seed: 55,
            ..RunnerConfig::default()
        };
        let ranked = grid_search(&ds, &store, &grid, &base).unwrap();
        assert_eq!(ranked.len(), 4);
        // Sorted descending by F1.
        for w in ranked.windows(2) {
            assert!(w[0].f1_mean >= w[1].f1_mean);
        }
        // Labels identify the grid point.
        assert!(ranked.iter().any(|c| c.label.contains("short")));
        assert!(ranked[0].f1_mean > 0.3, "grid winner too weak");
    }

    #[test]
    fn empty_grid_rejected() {
        let ds = generate(Domain::Tvs, 56);
        let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(4));
        let grid = TuningGrid {
            hidden: vec![],
            schedules: vec![],
        };
        assert!(grid_search(&ds, &store, &grid, &RunnerConfig::default()).is_err());
    }
}
