//! Fault-injection tests for the core pipeline's panic isolation.
//!
//! Isolated in their own test binary because `leapme_faults::with_plan`
//! installs a process-wide plan that must not leak into the unit-test
//! suites running concurrently in another process's thread pool.
#![cfg(feature = "faults")]

use leapme_core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
use leapme_core::runner::{run_repeated, RunnerConfig};
use leapme_core::sampling;
use leapme_core::CoreError;
use leapme_data::domains::{generate, Domain};
use leapme_data::model::{Dataset, PropertyPair};
use leapme_embedding::store::EmbeddingStore;
use leapme_features::PropertyFeatureStore;
use leapme_nn::network::TrainConfig;
use leapme_nn::schedule::LrSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(2, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![8],
        ..LeapmeConfig::default()
    }
}

/// A trained model plus enough candidate pairs (≥ 2 × SCORE_BATCH) to
/// push `score_pairs_parallel` off its serial fallback.
fn model_and_pairs() -> (Dataset, PropertyFeatureStore, LeapmeModel, Vec<PropertyPair>) {
    let ds = generate(Domain::Tvs, 41);
    let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(8));
    let mut rng = StdRng::seed_from_u64(11);
    let split = sampling::split_sources(ds.sources().len(), 0.8, &mut rng).unwrap();
    let train = sampling::training_pairs(&ds, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_cfg()).unwrap();
    let base = sampling::test_pairs(&ds, &split.train);
    let pairs: Vec<PropertyPair> = base.iter().cloned().cycle().take(9000).collect();
    (ds, store, model, pairs)
}

#[test]
fn transient_score_worker_panic_is_requeued() {
    let (_ds, store, model, pairs) = model_and_pairs();
    let serial = model.score_pairs(&store, &pairs).unwrap();
    // Two of four workers die; their chunks are requeued on the calling
    // thread (the #2 cap is exhausted by then) and scores stay bitwise
    // identical to the serial path.
    let scores = leapme_faults::with_plan("seed=3;core.score.worker:panic@1.0#2", || {
        model.score_pairs_parallel(&store, &pairs, 4).unwrap()
    });
    assert_eq!(scores, serial);
}

#[test]
fn persistent_score_worker_panic_is_a_structured_error() {
    let (_ds, store, model, pairs) = model_and_pairs();
    // Every attempt panics, including the requeue: the shard fails with
    // a structured error instead of aborting the process.
    let err = leapme_faults::with_plan("seed=3;core.score.worker:panic@1.0", || {
        model.score_pairs_parallel(&store, &pairs, 4).unwrap_err()
    });
    match err {
        CoreError::WorkerPanic { site, payload } => {
            assert_eq!(site, "core.score.worker");
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn transient_runner_worker_panic_is_requeued() {
    let ds = generate(Domain::Tvs, 42);
    let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(8));
    let cfg = |threads| RunnerConfig {
        repetitions: 4,
        threads,
        leapme: quick_cfg(),
        ..RunnerConfig::default()
    };
    let (clean_summary, clean_outcomes) = run_repeated(&ds, &store, &cfg(1)).unwrap();
    let (summary, outcomes) = leapme_faults::with_plan("seed=5;core.runner.worker:panic@1.0#2", || {
        run_repeated(&ds, &store, &cfg(4)).unwrap()
    });
    assert_eq!(summary, clean_summary);
    for (a, b) in outcomes.iter().zip(&clean_outcomes) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.repetition, b.repetition);
    }
}

#[test]
fn persistent_runner_worker_panic_is_a_structured_error() {
    let ds = generate(Domain::Tvs, 42);
    let store = PropertyFeatureStore::build(&ds, &EmbeddingStore::new(8));
    let cfg = RunnerConfig {
        repetitions: 4,
        threads: 4,
        leapme: quick_cfg(),
        ..RunnerConfig::default()
    };
    let err = leapme_faults::with_plan("seed=5;core.runner.worker:panic@1.0", || {
        run_repeated(&ds, &store, &cfg).unwrap_err()
    });
    match err {
        CoreError::WorkerPanic { site, .. } => assert_eq!(site, "core.runner.worker"),
        other => panic!("expected WorkerPanic, got {other}"),
    }
}
