//! Index-layer guarantees (DESIGN.md §12): deterministic construction,
//! recall against the brute-force oracle, and clean cancellation.
//!
//! These tests run the real retrieval stack — stress-generator datasets,
//! hash-derived embedding stores, HNSW + name-LSH indexes — at sizes
//! small enough for CI but large enough that graph navigation actually
//! happens (hundreds to thousands of nodes, multiple layers).

use leapme_core::blocking::{
    evaluate_blocking_sorted, retrieval_candidates, AnnBlocker, LshBlocker, RetrievalMode,
};
use leapme_core::cancel::CancelToken;
use leapme_core::index::hnsw::{HnswConfig, HnswIndex, VisitedSet};
use leapme_core::index::PropertyVectors;
use leapme_core::CoreError;
use leapme_data::stress::{generate_stress_dataset, stress_vocabulary, StressConfig};
use leapme_embedding::store::EmbeddingStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic hash-derived unit vector per stress-vocabulary word —
/// the same construction the facade's stress embedding store uses
/// (random directions are exactly the hard case for a metric index: no
/// helpful global structure beyond the shared-word clusters).
fn hash_store(cfg: &StressConfig, dim: usize, seed: u64) -> EmbeddingStore {
    let mut store = EmbeddingStore::new(dim);
    for word in stress_vocabulary(cfg) {
        let mut h = seed;
        for b in word.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        let mut v: Vec<f32> = (0..dim)
            .map(|d| {
                let r = splitmix64(h ^ (d as u64).wrapping_mul(0x9E3779B97F4A7C15));
                ((r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
            })
            .collect();
        let norm = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
        for x in v.iter_mut() {
            *x = (f64::from(*x) / norm) as f32;
        }
        store.insert(&word, v).unwrap();
    }
    store
}

fn stress_vectors(properties: usize, seed: u64) -> (leapme_data::model::Dataset, PropertyVectors) {
    let cfg = StressConfig::new(properties, seed);
    let ds = generate_stress_dataset(&cfg);
    let store = hash_store(&cfg, 24, seed ^ 0xE5);
    let vectors = PropertyVectors::build(&ds, &store);
    (ds, vectors)
}

#[test]
fn hnsw_same_seed_identical_graph_and_candidates() {
    let (ds, vectors) = stress_vectors(1200, 11);
    let cfg = HnswConfig::default();
    let a = HnswIndex::build(&vectors, cfg, None).unwrap();
    let b = HnswIndex::build(&vectors, cfg, None).unwrap();
    assert_eq!(a, b, "same seed must give a bitwise-identical graph");

    let store = hash_store(&StressConfig::new(1200, 11), 24, 11 ^ 0xE5);
    let c1 = AnnBlocker::default().candidates_sorted(&ds, &store, None).unwrap();
    let c2 = AnnBlocker::default().candidates_sorted(&ds, &store, None).unwrap();
    assert_eq!(c1, c2, "same seed must give identical candidate sets");
}

#[test]
fn hnsw_recall_meets_target_vs_brute_force_oracle() {
    let (_ds, vectors) = stress_vectors(2000, 5);
    let index = HnswIndex::build(&vectors, HnswConfig::default(), None).unwrap();
    let mut visited = VisitedSet::new(vectors.len());
    let k = 10;
    let (mut hit, mut total, mut queries) = (0usize, 0usize, 0usize);
    for i in (0..vectors.len()).step_by(7) {
        if !vectors.non_zero[i] {
            continue;
        }
        let oracle = vectors.top_k(i, k);
        if oracle.is_empty() {
            continue;
        }
        let ann = index.search_node(&vectors, i, k, &mut visited);
        let got: std::collections::BTreeSet<u32> = ann.iter().map(|n| n.id).collect();
        hit += oracle.iter().filter(|n| got.contains(&n.id)).count();
        total += oracle.len();
        queries += 1;
    }
    assert!(queries > 100, "sample too small: {queries}");
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.95, "recall {recall:.4} below target over {queries} queries");
}

#[test]
fn retrieval_blocking_meets_completeness_on_stress_corpus() {
    let cfg = StressConfig::new(3000, 17);
    let ds = generate_stress_dataset(&cfg);
    let store = hash_store(&cfg, 24, 99);
    let ann = AnnBlocker { k: 10, ..AnnBlocker::default() };
    let lsh = LshBlocker::default();
    let flat =
        retrieval_candidates(&ds, &store, RetrievalMode::Both, &ann, &lsh, None).unwrap();
    let stats = evaluate_blocking_sorted(&ds, &flat);
    // Sublinear retrieval must prune hard AND keep the ground truth:
    // clusters average ~8 members, k = 10 with both directions unioned.
    assert!(stats.reduction_ratio > 0.99, "{stats:?}");
    assert!(stats.pair_completeness > 0.9, "{stats:?}");
}

#[test]
fn cancellation_mid_build_leaves_no_partial_state() {
    let (_ds, vectors) = stress_vectors(800, 3);
    // Flip to cancelled after 50 polls — mid-build (one poll per insert).
    let polls = AtomicUsize::new(0);
    let cancel = || polls.fetch_add(1, Ordering::Relaxed) >= 50;
    let err = HnswIndex::build(&vectors, HnswConfig::default(), Some(&cancel)).unwrap_err();
    assert!(matches!(err, CoreError::Cancelled));
    let n = polls.load(Ordering::Relaxed);
    assert!(n >= 50 && n < vectors.len(), "cancelled mid-build, polls {n}");

    // The failed attempt is gone without a trace: a fresh build is
    // bitwise identical to one that never shared a process with it.
    let fresh = HnswIndex::build(&vectors, HnswConfig::default(), None).unwrap();
    let reference = HnswIndex::build(&vectors, HnswConfig::default(), None).unwrap();
    assert_eq!(fresh, reference);
}

#[test]
fn cancel_token_checker_cancels_index_build() {
    let (ds, vectors) = stress_vectors(400, 21);
    let token = CancelToken::new();
    token.cancel();
    let checker = token.checker();
    assert!(matches!(
        HnswIndex::build(&vectors, HnswConfig::default(), Some(&checker)),
        Err(CoreError::Cancelled)
    ));
    let store = hash_store(&StressConfig::new(400, 21), 24, 21 ^ 0xE5);
    assert!(matches!(
        AnnBlocker::default().candidates_sorted(&ds, &store, Some(&checker)),
        Err(CoreError::Cancelled)
    ));
    assert!(matches!(
        LshBlocker::default().candidates_sorted(&ds, Some(&checker)),
        Err(CoreError::Cancelled)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism as a property: at random sizes, seeds, and ANN knobs,
    /// two builds agree graph-for-graph and candidate-for-candidate.
    #[test]
    fn index_construction_is_deterministic(
        properties in 150usize..500,
        seed in 0u64..1_000,
        m in 4usize..24,
        k in 1usize..12,
    ) {
        let cfg = StressConfig::new(properties, seed);
        let ds = generate_stress_dataset(&cfg);
        let store = hash_store(&cfg, 16, seed);
        let vectors = PropertyVectors::build(&ds, &store);
        let hcfg = HnswConfig { m, seed, ..HnswConfig::default() };
        let a = HnswIndex::build(&vectors, hcfg, None).unwrap();
        let b = HnswIndex::build(&vectors, hcfg, None).unwrap();
        prop_assert_eq!(&a, &b);

        let ann = AnnBlocker { k, config: hcfg };
        let lsh = LshBlocker { k, ..LshBlocker::default() };
        let c1 = retrieval_candidates(&ds, &store, RetrievalMode::Both, &ann, &lsh, None).unwrap();
        let c2 = retrieval_candidates(&ds, &store, RetrievalMode::Both, &ann, &lsh, None).unwrap();
        prop_assert_eq!(c1, c2);
    }
}
