//! Domain text-corpus generation for embedding training.
//!
//! The paper relies on pre-trained GloVe vectors in which domain synonyms
//! ("MP", "megapixels", "resolution") are close because they co-occur with
//! the same contexts in Common Crawl. To reproduce that geometry offline,
//! this module emits a synthetic "product description" corpus in which all
//! synonyms of a reference property — and the unit/vocabulary tokens of
//! its values — are embedded in shared, property-specific sentence
//! contexts. Training GloVe (`leapme-embedding`) on this corpus yields
//! embeddings with the same relevant structure (DESIGN.md §2).

use crate::spec::{DomainSpec, RefProperty};
use crate::value::ValueSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Sentences generated per (property, synonym) combination.
    pub sentences_per_synonym: usize,
    /// Additional generic filler sentences mixing product words.
    pub filler_sentences: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            sentences_per_synonym: 30,
            filler_sentences: 200,
        }
    }
}

/// Generate a tokenized corpus for a stress-scale dataset
/// ([`crate::stress`]): one shared-context sentence group per reference
/// property, covering the full stress vocabulary (base, modifier, unit
/// and category pseudo-words). Deterministic in the config seed. At
/// 100k+ properties the hash-derived store in the facade is the
/// practical choice; this path exists so the *same* GloVe trainer the
/// four paper domains use can run on stress vocabularies too.
pub fn generate_stress_corpus(
    cfg: &crate::stress::StressConfig,
    sentences_per_ref: usize,
) -> Vec<Vec<String>> {
    crate::stress::stress_corpus(cfg, sentences_per_ref)
}

/// Generate a tokenized corpus for `spec`, deterministic in `seed`.
///
/// Every sentence is returned pre-tokenized (lowercase alphanumeric
/// tokens) and can be fed directly to
/// `leapme_embedding::cooccur::CooccurrenceMatrix::from_sentences`.
pub fn generate_corpus(spec: &DomainSpec, cfg: &CorpusConfig, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sentences = Vec::new();

    for prop in &spec.properties {
        let value_words = value_vocabulary(&prop.value);
        for syn in &prop.synonyms {
            for _ in 0..cfg.sentences_per_synonym {
                sentences.push(property_sentence(
                    spec, prop, syn, &value_words, &mut rng,
                ));
            }
        }
    }

    for _ in 0..cfg.filler_sentences {
        sentences.push(filler_sentence(spec, &mut rng));
    }

    // Junk / decoration vocabulary: each word gets its own hash-derived
    // context neighborhood, so (like in the paper's 1.9M-word pre-trained
    // space) "catalog" and "availability" have non-zero and mutually
    // distinct vectors. Without this, all-OOV junk names average to the
    // zero vector and any two of them look embedding-identical.
    for word in crate::spec::junk_vocabulary(spec) {
        for _ in 0..cfg.sentences_per_synonym.div_ceil(2) {
            sentences.push(junk_sentence(&word, &mut rng));
        }
    }

    sentences
}

/// A sentence anchoring one junk word in a deterministic pseudo-context
/// derived from its hash, plus a generic commerce word.
fn junk_sentence(word: &str, rng: &mut StdRng) -> Vec<String> {
    const COMMERCE: [&str; 8] = [
        "listing", "shop", "data", "record", "entry", "admin", "export", "portal",
    ];
    let mut h: u64 = 0xcbf29ce484222325;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let c1 = format!("ctx{}", h % 41);
    let c2 = format!("ctx{}", (h >> 8) % 41);
    let mut words = vec![
        word.to_string(),
        c1,
        c2,
        COMMERCE.choose(rng).expect("non-empty").to_string(),
    ];
    words.shuffle(rng);
    words
}

/// The embedding-relevant vocabulary of a value spec: unit suffix words
/// and categorical option words.
pub fn value_vocabulary(value: &ValueSpec) -> Vec<String> {
    let mut words = Vec::new();
    let mut push_text = |text: &str| {
        words.extend(leapme_tokenize(text));
    };
    match value {
        ValueSpec::Numeric { units, .. } | ValueSpec::Integer { units, .. } => {
            for u in units {
                push_text(&u.suffix);
            }
        }
        ValueSpec::Categorical { options } => {
            for o in options {
                push_text(o);
            }
        }
        ValueSpec::Dimensions { .. } => {
            push_text("mm wide tall deep");
        }
        ValueSpec::FreeText { words: pool, .. } => {
            for w in pool {
                push_text(w);
            }
        }
        ValueSpec::ModelCode { .. } => {}
        ValueSpec::Fraction { suffix, .. } => push_text(suffix),
    }
    words.retain(|w| w.chars().any(|c| c.is_alphabetic()));
    words.sort();
    words.dedup();
    words
}

fn property_sentence(
    spec: &DomainSpec,
    prop: &RefProperty,
    synonym: &str,
    value_words: &[String],
    rng: &mut StdRng,
) -> Vec<String> {
    // GloVe learns from co-occurrence counts, not grammar, and on a small
    // corpus connective filler ("the", "of", "determine") swamps the
    // property-specific signal. So property sentences are dense bags of
    // related words: the synonym's tokens plus several words sampled from
    // the property's context vocabulary and its value vocabulary, with an
    // occasional product word. Synonyms of the same reference property
    // draw from the same pools, which is exactly the geometry the matcher
    // needs.
    let mut words = leapme_tokenize(synonym);
    let pool_len = prop.context.len() + value_words.len();
    let n_context = rng.gen_range(3..=5);
    for _ in 0..n_context.min(pool_len.max(1)) {
        let pick = rng.gen_range(0..pool_len.max(1));
        let w = if pick < prop.context.len() {
            prop.context.get(pick).cloned()
        } else {
            value_words.get(pick - prop.context.len()).cloned()
        };
        if let Some(w) = w {
            words.extend(leapme_tokenize(&w));
        }
    }
    if rng.gen_bool(0.25) {
        if let Some(p) = spec.product_words.choose(rng) {
            words.extend(leapme_tokenize(p));
        }
    }
    words.shuffle(rng);
    words
}

fn filler_sentence(spec: &DomainSpec, rng: &mut StdRng) -> Vec<String> {
    const FILLER: [&str; 12] = [
        "buy", "online", "compare", "specifications", "review", "best", "new", "features",
        "quality", "ships", "top", "deal",
    ];
    let product = spec
        .product_words
        .choose(rng)
        .map(String::as_str)
        .unwrap_or("product");
    let mut words = leapme_tokenize(product);
    for _ in 0..rng.gen_range(3..=5) {
        words.push(FILLER.choose(rng).expect("non-empty").to_string());
    }
    words.shuffle(rng);
    words
}

/// Minimal local tokenizer matching `leapme_embedding::tokenize::tokenize`
/// semantics for the subset of inputs the corpus generator produces
/// (lowercase split on non-alphanumerics; no camelCase in generated text).
/// Kept local to avoid a dependency cycle between the data and embedding
/// crates.
fn leapme_tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;

    #[test]
    fn corpus_covers_all_synonyms() {
        let spec = Domain::Headphones.spec();
        let corpus = generate_corpus(&spec, &CorpusConfig::default(), 1);
        let all_tokens: std::collections::HashSet<&str> = corpus
            .iter()
            .flatten()
            .map(String::as_str)
            .collect();
        for p in &spec.properties {
            for syn in &p.synonyms {
                for tok in leapme_tokenize(syn) {
                    assert!(
                        all_tokens.contains(tok.as_str()),
                        "token {tok:?} of synonym {syn:?} missing from corpus"
                    );
                }
            }
        }
    }

    #[test]
    fn corpus_includes_unit_words() {
        let spec = Domain::Cameras.spec();
        let corpus = generate_corpus(&spec, &CorpusConfig::default(), 2);
        let all: std::collections::HashSet<&str> =
            corpus.iter().flatten().map(String::as_str).collect();
        // "megapixels" (unit of resolution) and "shots" (unit of battery
        // life) should appear.
        assert!(all.contains("megapixels"));
        assert!(all.contains("shots"));
    }

    #[test]
    fn synonyms_share_context_words() {
        // Count co-occurrence of two resolution synonyms with the context
        // word "sensor" — both must co-occur with it.
        let spec = Domain::Cameras.spec();
        let corpus = generate_corpus(&spec, &CorpusConfig::default(), 3);
        let cooccurs = |word: &str, ctx: &str| {
            corpus
                .iter()
                .filter(|s| s.iter().any(|t| t == word) && s.iter().any(|t| t == ctx))
                .count()
        };
        assert!(cooccurs("megapixels", "sensor") > 0);
        assert!(cooccurs("resolution", "sensor") > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = Domain::Tvs.spec();
        let a = generate_corpus(&spec, &CorpusConfig::default(), 9);
        let b = generate_corpus(&spec, &CorpusConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn all_tokens_lowercase_alphanumeric() {
        let spec = Domain::Phones.spec();
        let corpus = generate_corpus(&spec, &CorpusConfig::default(), 4);
        for sentence in &corpus {
            assert!(!sentence.is_empty());
            for t in sentence {
                assert!(t.chars().all(char::is_alphanumeric), "bad token {t:?}");
                assert_eq!(t, &t.to_lowercase());
            }
        }
    }

    #[test]
    fn value_vocabulary_extraction() {
        let v = ValueSpec::numeric(0.0, 10.0, 1, &[(" MP", 1.0), (" megapixels", 1.0)]);
        assert_eq!(value_vocabulary(&v), vec!["megapixels", "mp"]);
        let c = ValueSpec::categorical(&["Dolby Vision", "HDR10"]);
        let words = value_vocabulary(&c);
        assert!(words.contains(&"dolby".to_string()));
        assert!(words.contains(&"vision".to_string()));
        // Pure numbers are dropped.
        let n = ValueSpec::integer(0, 5, &[("", 1.0)]);
        assert!(value_vocabulary(&n).is_empty());
    }

    #[test]
    fn filler_count_respected() {
        let spec = Domain::Tvs.spec();
        let small = generate_corpus(
            &spec,
            &CorpusConfig {
                sentences_per_synonym: 1,
                filler_sentences: 0,
            },
            5,
        );
        let syn_count: usize = spec.properties.iter().map(|p| p.synonyms.len()).sum();
        let junk_count = crate::spec::junk_vocabulary(&spec).len();
        assert_eq!(small.len(), syn_count + junk_count);
    }

    #[test]
    fn junk_vocabulary_gets_sentences() {
        let spec = Domain::Phones.spec();
        let corpus = generate_corpus(&spec, &CorpusConfig::default(), 6);
        let all: std::collections::HashSet<&str> =
            corpus.iter().flatten().map(String::as_str).collect();
        for w in ["catalog", "availability", "approx", "sku"] {
            assert!(all.contains(w), "junk word {w:?} missing from corpus");
        }
    }
}
