//! Camera reference ontology, mirroring the DI2KG'19 camera dataset.
//!
//! Thirty reference properties with the kind of synonym spread Fig. 1 of
//! the paper illustrates ("camera resolution" / "effective pixels" /
//! "megapixel", several shutter-speed variants, …).

use super::{prop, strings};
use crate::spec::DomainSpec;
use crate::value::ValueSpec;

/// The camera domain specification.
pub fn spec() -> DomainSpec {
    let properties = vec![
        prop(
            "resolution",
            &[
                "resolution",
                "megapixels",
                "mp",
                "effective pixels",
                "camera resolution",
                "pixel count",
                "image resolution",
                "effective megapixel",
            ],
            &["image", "sensor", "detail", "sharpness", "pixels"],
            ValueSpec::numeric(8.0, 61.0, 1, &[(" MP", 1.0), (" megapixels", 1.0), ("", 1.0)]),
            0.95,
        ),
        prop(
            "sensor type",
            &["sensor type", "sensor", "image sensor", "sensor technology"],
            &["chip", "imaging", "photosites", "capture"],
            ValueSpec::categorical(&["CMOS", "BSI-CMOS", "CCD", "Foveon X3", "Live MOS"]),
            0.85,
        ),
        prop(
            "sensor size",
            &["sensor size", "sensor format", "imager size", "sensor dimensions"],
            &["format", "crop", "full", "frame"],
            ValueSpec::categorical(&[
                "1/2.3\"",
                "1\"",
                "APS-C",
                "Full Frame",
                "Micro Four Thirds",
                "1/1.7\"",
            ]),
            0.80,
        ),
        prop(
            "iso",
            &["iso", "iso range", "iso sensitivity", "max iso", "light sensitivity"],
            &["low", "light", "noise", "gain", "exposure"],
            ValueSpec::integer(1600, 409600, &[("", 1.0), (" ISO", 1.0)]),
            0.85,
        ),
        prop(
            "shutter speed",
            &[
                "shutter speed",
                "max shutter speed",
                "fastest shutter",
                "shutter",
                "min shutter speed",
            ],
            &["exposure", "seconds", "fast", "motion", "freeze"],
            ValueSpec::Fraction {
                min_den: 1000,
                max_den: 32000,
                suffix: " s".into(),
            },
            0.80,
        ),
        prop(
            "aperture",
            &["aperture", "max aperture", "lens aperture", "f number", "maximum aperture"],
            &["lens", "bright", "bokeh", "depth", "field"],
            ValueSpec::categorical(&["f/1.2", "f/1.4", "f/1.8", "f/2.0", "f/2.8", "f/3.5", "f/4.0", "f/5.6"]),
            0.75,
        ),
        prop(
            "optical zoom",
            &["optical zoom", "zoom", "zoom ratio", "optical zoom factor", "zoom range"],
            &["telephoto", "magnification", "lens", "reach"],
            ValueSpec::numeric(1.0, 125.0, 0, &[("x", 1.0), ("x optical", 1.0)]),
            0.75,
        ),
        prop(
            "focal length",
            &["focal length", "lens focal length", "focal range", "focal distance"],
            &["lens", "wide", "angle", "telephoto", "millimetres"],
            ValueSpec::integer(10, 600, &[("mm", 1.0), (" mm", 1.0)]),
            0.75,
        ),
        prop(
            "screen size",
            &["screen size", "display size", "lcd size", "monitor size", "lcd screen size"],
            &["display", "rear", "diagonal", "inches", "panel"],
            ValueSpec::numeric(2.5, 3.5, 1, &[(" inch", 1.0), ("\"", 1.0), (" in", 1.0)]),
            0.85,
        ),
        prop(
            "screen resolution",
            &["screen resolution", "lcd resolution", "display dots", "monitor resolution"],
            &["dots", "display", "panel", "sharpness"],
            ValueSpec::integer(230, 2360, &[("k dots", 1.0), (" k dots", 1.0)]),
            0.60,
        ),
        prop(
            "weight",
            &["weight", "item weight", "body weight", "weight incl battery", "camera weight"],
            &["grams", "heavy", "light", "body", "mass"],
            ValueSpec::numeric(200.0, 1500.0, 0, &[(" g", 1.0), (" grams", 1.0), (" oz", 0.035274)]),
            0.90,
        ),
        prop(
            "dimensions",
            &["dimensions", "body dimensions", "size", "product dimensions", "body size"],
            &["width", "height", "depth", "millimetres", "compact"],
            ValueSpec::Dimensions {
                min: 50.0,
                max: 160.0,
                axes: 3,
            },
            0.80,
        ),
        prop(
            "battery life",
            &[
                "battery life",
                "battery",
                "shots per charge",
                "battery capacity cipa",
                "number of shots",
            ],
            &["charge", "power", "endurance", "cipa"],
            ValueSpec::integer(200, 1200, &[(" shots", 1.0), (" images", 1.0)]),
            0.70,
        ),
        prop(
            "video resolution",
            &["video resolution", "movie resolution", "video", "max video resolution", "movie mode"],
            &["recording", "footage", "film", "movie", "uhd"],
            ValueSpec::categorical(&["4K UHD", "1080p", "8K", "720p", "4K DCI"]),
            0.80,
        ),
        prop(
            "frame rate",
            &["frame rate", "fps", "continuous shooting", "burst rate", "burst speed"],
            &["burst", "continuous", "speed", "action", "sequence"],
            ValueSpec::integer(3, 30, &[(" fps", 1.0), (" frames per second", 1.0)]),
            0.65,
        ),
        prop(
            "viewfinder",
            &["viewfinder", "viewfinder type", "evf", "view finder"],
            &["eye", "electronic", "optical", "compose"],
            ValueSpec::categorical(&["electronic", "optical", "hybrid", "none"]),
            0.65,
        ),
        prop(
            "image stabilization",
            &[
                "image stabilization",
                "stabilization",
                "ibis",
                "steady shot",
                "anti shake",
            ],
            &["shake", "blur", "steady", "axis", "handheld"],
            ValueSpec::categorical(&["5-axis in-body", "optical", "digital", "none", "2-axis"]),
            0.65,
        ),
        prop(
            "storage",
            &["storage", "memory card", "card slot", "storage media", "memory card type"],
            &["card", "slot", "memory", "media"],
            ValueSpec::categorical(&["SD/SDHC/SDXC", "CFexpress", "dual SD", "microSD", "XQD"]),
            0.70,
        ),
        prop(
            "connectivity",
            &["connectivity", "wireless", "wifi", "wireless connectivity", "wifi connectivity"],
            &["transfer", "remote", "bluetooth", "pairing", "app"],
            ValueSpec::categorical(&["WiFi + Bluetooth", "WiFi", "WiFi + NFC", "none", "Bluetooth"]),
            0.65,
        ),
        prop(
            "lens mount",
            &["lens mount", "mount", "mount type", "lens system"],
            &["interchangeable", "bayonet", "lenses", "system"],
            ValueSpec::categorical(&[
                "Canon EF",
                "Nikon F",
                "Sony E",
                "Micro Four Thirds",
                "Fujifilm X",
                "L-mount",
            ]),
            0.55,
        ),
        prop(
            "flash",
            &["flash", "built in flash", "flash type", "flash modes"],
            &["light", "fill", "strobe", "sync"],
            ValueSpec::categorical(&[
                "built-in pop-up",
                "external only",
                "built-in + hot shoe",
                "none",
            ]),
            0.60,
        ),
        prop(
            "autofocus points",
            &["autofocus points", "af points", "focus points", "number of af points"],
            &["focus", "tracking", "phase", "detect", "subject"],
            ValueSpec::integer(9, 693, &[(" points", 1.0), (" af points", 1.0)]),
            0.55,
        ),
        prop(
            "brand",
            &["brand", "manufacturer", "make", "brand name"],
            &["company", "maker", "label"],
            ValueSpec::categorical(&[
                "Canon",
                "Nikon",
                "Sony",
                "Fujifilm",
                "Panasonic",
                "Olympus",
                "Leica",
                "Pentax",
            ]),
            0.90,
        ),
        prop(
            "model",
            &["model", "model name", "model number", "model id"],
            &["series", "edition", "version"],
            ValueSpec::ModelCode {
                prefixes: vec![
                    "EOS".into(),
                    "DSC".into(),
                    "DMC".into(),
                    "XT".into(),
                    "D".into(),
                ],
            },
            0.85,
        ),
        prop(
            "price",
            &["price", "retail price", "msrp", "list price", "price usd"],
            &["cost", "dollars", "buy", "discount"],
            ValueSpec::numeric(150.0, 6500.0, 2, &[(" USD", 1.0), (" EUR", 0.92), ("", 1.0)]),
            0.85,
        ),
        prop(
            "color",
            &["color", "colour", "body color", "finish"],
            &["black", "silver", "style", "look"],
            ValueSpec::categorical(&["black", "silver", "graphite", "white"]),
            0.65,
        ),
        prop(
            "gps",
            &["gps", "geotagging", "built in gps", "location tagging"],
            &["location", "coordinates", "tagging", "travel"],
            ValueSpec::categorical(&["yes", "no", "via smartphone"]),
            0.45,
        ),
        prop(
            "touchscreen",
            &["touchscreen", "touch screen", "touch display", "touch panel"],
            &["tap", "gesture", "swipe", "interface"],
            ValueSpec::categorical(&["yes", "no", "tilting touchscreen"]),
            0.55,
        ),
        prop(
            "release year",
            &["release year", "year", "announced", "launch year"],
            &["date", "launched", "introduced"],
            ValueSpec::integer(2005, 2021, &[("", 1.0)]),
            0.50,
        ),
        prop(
            "warranty",
            &["warranty", "warranty period", "guarantee"],
            &["coverage", "repair", "support", "service"],
            ValueSpec::integer(1, 3, &[(" years", 1.0), (" year warranty", 1.0)]),
            0.40,
        ),
    ];

    DomainSpec {
        name: "cameras".into(),
        product_words: strings(&["camera", "dslr", "mirrorless", "compact", "shooter"]),
        properties,
        junk_names: strings(&[
            "sku",
            "listing id",
            "availability",
            "condition",
            "shipping weight",
            "seller",
            "stock status",
            "item url",
            "upc",
            "asin",
            "product code",
            "customer rating",
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_size_and_fig1_examples() {
        let s = spec();
        assert_eq!(s.properties.len(), 30);
        // The Fig. 1 synonym cluster for resolution is represented.
        let res = s
            .properties
            .iter()
            .find(|p| p.canonical == "resolution")
            .unwrap();
        for needle in ["megapixels", "effective pixels", "camera resolution"] {
            assert!(
                res.synonyms.iter().any(|x| x == needle),
                "missing synonym {needle}"
            );
        }
    }

    #[test]
    fn prevalences_give_dense_sources() {
        let s = spec();
        let avg: f64 =
            s.properties.iter().map(|p| p.prevalence).sum::<f64>() / s.properties.len() as f64;
        assert!(avg > 0.6, "cameras should be dense, avg prevalence {avg}");
    }
}
