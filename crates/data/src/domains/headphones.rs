//! Headphone reference ontology, mirroring the WDC headphone gold
//! standard (small, imbalanced, noisy — a "low-quality" dataset in the
//! paper's terminology).

use super::{prop, strings};
use crate::spec::DomainSpec;
use crate::value::ValueSpec;

/// The headphone domain specification.
pub fn spec() -> DomainSpec {
    let properties = vec![
        prop(
            "driver size",
            &["driver size", "driver", "driver diameter", "driver unit", "speaker size"],
            &["dynamic", "membrane", "diaphragm", "sound"],
            ValueSpec::integer(6, 53, &[("mm", 1.0), (" mm driver", 1.0)]),
            0.80,
        ),
        prop(
            "impedance",
            &["impedance", "ohms", "nominal impedance", "input impedance"],
            &["resistance", "amplifier", "load", "drive"],
            ValueSpec::integer(16, 600, &[(" ohm", 1.0), (" ohms", 1.0), ("Ω", 1.0)]),
            0.75,
        ),
        prop(
            "frequency response",
            &[
                "frequency response",
                "frequency range",
                "freq response",
                "response range",
            ],
            &["bass", "treble", "hertz", "spectrum", "audio"],
            ValueSpec::free_text(
                &["20hz", "20khz", "5hz", "40khz", "10hz", "to", "-"],
                2,
                3,
            ),
            0.75,
        ),
        prop(
            "sensitivity",
            &["sensitivity", "spl", "sound pressure level", "efficiency"],
            &["loudness", "decibels", "output", "volume"],
            ValueSpec::integer(85, 120, &[(" dB", 1.0), (" db spl", 1.0)]),
            0.65,
        ),
        prop(
            "type",
            &["type", "headphone type", "form factor", "design", "wearing style"],
            &["ear", "cup", "fit", "style"],
            ValueSpec::categorical(&["over-ear", "on-ear", "in-ear", "earbuds", "open-back"]),
            0.85,
        ),
        prop(
            "wireless",
            &["wireless", "connection type", "connectivity", "cordless"],
            &["bluetooth", "cable", "pairing", "radio"],
            ValueSpec::categorical(&["wireless", "wired", "both", "true wireless"]),
            0.80,
        ),
        prop(
            "battery life",
            &["battery life", "battery", "playtime", "playback time", "listening time"],
            &["hours", "charge", "endurance", "power"],
            ValueSpec::integer(4, 80, &[(" hours", 1.0), ("h", 1.0), (" hrs", 1.0)]),
            0.70,
        ),
        prop(
            "noise cancellation",
            &[
                "noise cancellation",
                "anc",
                "active noise cancelling",
                "noise canceling",
            ],
            &["ambient", "isolation", "quiet", "transparency"],
            ValueSpec::categorical(&["active", "passive", "hybrid anc", "none"]),
            0.60,
        ),
        prop(
            "weight",
            &["weight", "item weight", "product weight"],
            &["grams", "light", "comfort"],
            ValueSpec::numeric(4.0, 420.0, 0, &[(" g", 1.0), (" grams", 1.0), (" oz", 0.035274)]),
            0.75,
        ),
        prop(
            "cable length",
            &["cable length", "cord length", "wire length"],
            &["metres", "detachable", "cord"],
            ValueSpec::numeric(0.8, 3.0, 1, &[(" m", 1.0), (" metres", 1.0), (" ft", 3.28084)]),
            0.50,
        ),
        prop(
            "microphone",
            &["microphone", "mic", "built in mic", "inline microphone"],
            &["calls", "voice", "talk", "remote"],
            ValueSpec::categorical(&["yes", "no", "inline remote mic", "boom mic"]),
            0.60,
        ),
        prop(
            "bluetooth version",
            &["bluetooth version", "bluetooth", "bt version"],
            &["codec", "pairing", "aptx", "wireless"],
            ValueSpec::categorical(&["5.0", "5.2", "4.2", "5.3", "4.1"]),
            0.55,
        ),
        prop(
            "color",
            &["color", "colour", "finish"],
            &["black", "white", "style"],
            ValueSpec::categorical(&["black", "white", "blue", "red", "silver"]),
            0.70,
        ),
        prop(
            "brand",
            &["brand", "manufacturer", "make"],
            &["company", "maker", "audio"],
            ValueSpec::categorical(&[
                "Sony",
                "Bose",
                "Sennheiser",
                "Audio-Technica",
                "JBL",
                "Beats",
                "AKG",
            ]),
            0.85,
        ),
        prop(
            "model",
            &["model", "model name", "model number"],
            &["series", "edition"],
            ValueSpec::ModelCode {
                prefixes: vec!["WH".into(), "QC".into(), "HD".into(), "ATH".into()],
            },
            0.80,
        ),
        prop(
            "price",
            &["price", "retail price", "msrp", "list price"],
            &["cost", "dollars", "budget"],
            ValueSpec::numeric(15.0, 1600.0, 2, &[(" USD", 1.0), ("", 1.0)]),
            0.80,
        ),
        prop(
            "foldable",
            &["foldable", "folding design", "collapsible"],
            &["travel", "portable", "compact"],
            ValueSpec::categorical(&["yes", "no", "flat folding"]),
            0.35,
        ),
        prop(
            "water resistance",
            &["water resistance", "ip rating", "waterproof", "sweat resistance"],
            &["sport", "rain", "gym", "sweat"],
            ValueSpec::categorical(&["IPX4", "IPX5", "IPX7", "none", "IP55"]),
            0.40,
        ),
        prop(
            "charging time",
            &["charging time", "charge time", "recharge time"],
            &["quick", "usb", "fast", "hours"],
            ValueSpec::numeric(0.5, 4.0, 1, &[(" hours", 1.0), ("h", 1.0)]),
            0.40,
        ),
        prop(
            "warranty",
            &["warranty", "warranty period", "guarantee"],
            &["coverage", "support", "service"],
            ValueSpec::integer(1, 3, &[(" years", 1.0), (" year", 1.0)]),
            0.35,
        ),
    ];

    DomainSpec {
        name: "headphones".into(),
        product_words: strings(&["headphones", "earphones", "headset", "earbuds"]),
        properties,
        junk_names: strings(&[
            "sku",
            "listing id",
            "availability",
            "condition",
            "seller",
            "stock",
            "ean",
            "asin",
            "shipping",
            "rating",
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_size() {
        assert_eq!(spec().properties.len(), 20);
    }

    #[test]
    fn audio_specific_properties_present() {
        let s = spec();
        for c in ["impedance", "driver size", "noise cancellation"] {
            assert!(s.properties.iter().any(|p| p.canonical == c), "missing {c}");
        }
    }
}
