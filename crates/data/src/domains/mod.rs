//! The four concrete product domains used in the paper's evaluation.
//!
//! * [`Domain::Cameras`] — mirrors the DI2KG'19 camera dataset: 24
//!   sources, balanced at 100 entities per source, mild noise (the paper's
//!   "high-quality" dataset).
//! * [`Domain::Headphones`], [`Domain::Phones`], [`Domain::Tvs`] — mirror
//!   the WDC Gold Standard datasets: fewer sources, imbalanced entity
//!   counts, heavy name noise (the paper's "low-quality" datasets).
//!
//! Each domain is a [`DomainSpec`] (reference ontology with synonym sets,
//! typed value distributions, and corpus context words) plus a
//! [`GeneratorConfig`] fixing its scale and noise level.

mod cameras;
mod headphones;
mod phones;
mod tvs;

use crate::model::Dataset;
use crate::noise::NoiseConfig;
use crate::spec::{generate_dataset, DomainSpec, EntityCount, GeneratorConfig, RefProperty};
use crate::value::ValueSpec;

/// The four evaluation domains (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// DI2KG'19-style camera data: the large, balanced, high-quality set.
    Cameras,
    /// WDC-style headphone data: small, imbalanced, noisy.
    Headphones,
    /// WDC-style phone data: small, imbalanced, noisy.
    Phones,
    /// WDC-style TV data: small, imbalanced, noisy.
    Tvs,
}

impl Domain {
    /// All four domains in the paper's table order.
    pub const ALL: [Domain; 4] = [
        Domain::Cameras,
        Domain::Headphones,
        Domain::Phones,
        Domain::Tvs,
    ];

    /// Dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Cameras => "cameras",
            Domain::Headphones => "headphones",
            Domain::Phones => "phones",
            Domain::Tvs => "tvs",
        }
    }

    /// Whether the paper classifies this dataset as low-quality
    /// (imbalanced WDC data).
    pub fn is_low_quality(self) -> bool {
        !matches!(self, Domain::Cameras)
    }

    /// The domain's reference ontology and generation vocabulary.
    pub fn spec(self) -> DomainSpec {
        match self {
            Domain::Cameras => cameras::spec(),
            Domain::Headphones => headphones::spec(),
            Domain::Phones => phones::spec(),
            Domain::Tvs => tvs::spec(),
        }
    }

    /// The domain's generation parameters, mirroring the paper's dataset
    /// characteristics (§V-B).
    pub fn generator_config(self) -> GeneratorConfig {
        match self {
            Domain::Cameras => GeneratorConfig {
                n_sources: 24,
                entities: EntityCount::Balanced(100),
                name_noise: NoiseConfig::mild(),
                value_noise: NoiseConfig::mild(),
                missing_value_rate: 0.15,
                junk_per_source: (2, 5),
                duplicate_variant_prob: 0.10,
            },
            Domain::Headphones | Domain::Phones | Domain::Tvs => GeneratorConfig {
                n_sources: 8,
                entities: EntityCount::Imbalanced { min: 5, max: 60 },
                name_noise: NoiseConfig::heavy(),
                value_noise: NoiseConfig::heavy(),
                missing_value_rate: 0.30,
                junk_per_source: (3, 7),
                duplicate_variant_prob: 0.15,
            },
        }
    }
}

/// Generate the dataset of `domain`, deterministic in `seed`.
pub fn generate(domain: Domain, seed: u64) -> Dataset {
    generate_dataset(&domain.spec(), &domain.generator_config(), seed)
}

/// Shorthand constructor for a [`RefProperty`] used by the domain modules.
pub(crate) fn prop(
    canonical: &str,
    synonyms: &[&str],
    context: &[&str],
    value: ValueSpec,
    prevalence: f64,
) -> RefProperty {
    RefProperty {
        canonical: canonical.to_string(),
        synonyms: synonyms.iter().map(|s| s.to_string()).collect(),
        context: context.iter().map(|s| s.to_string()).collect(),
        value,
        prevalence,
    }
}

/// Shorthand for string vectors in domain specs.
pub(crate) fn strings(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_well_formed() {
        for d in Domain::ALL {
            let spec = d.spec();
            assert!(!spec.properties.is_empty(), "{d:?} has no properties");
            assert!(!spec.junk_names.is_empty(), "{d:?} has no junk names");
            assert!(!spec.product_words.is_empty(), "{d:?} has no product words");
            for p in &spec.properties {
                assert!(
                    !p.synonyms.is_empty(),
                    "{d:?}::{} has no synonyms",
                    p.canonical
                );
                assert!(
                    !p.context.is_empty(),
                    "{d:?}::{} has no context words",
                    p.canonical
                );
                assert!(
                    (0.0..=1.0).contains(&p.prevalence),
                    "{d:?}::{} bad prevalence",
                    p.canonical
                );
                for s in &p.synonyms {
                    assert_eq!(
                        s.as_str(),
                        s.to_lowercase().as_str(),
                        "synonyms must be lowercase: {d:?}::{s}"
                    );
                }
            }
            // Canonical names are unique within a domain.
            let mut canon: Vec<&str> = spec
                .properties
                .iter()
                .map(|p| p.canonical.as_str())
                .collect();
            canon.sort_unstable();
            let before = canon.len();
            canon.dedup();
            assert_eq!(canon.len(), before, "{d:?} duplicate canonical names");
        }
    }

    #[test]
    fn cameras_scale_mirrors_paper() {
        let ds = generate(Domain::Cameras, 7);
        let stats = ds.stats();
        assert_eq!(stats.sources, 24);
        assert_eq!(stats.entities, 2400);
        assert!(
            stats.properties > 500,
            "cameras too small: {stats:?}"
        );
        assert!(
            stats.matching_pairs > 3000,
            "too few matching pairs: {stats:?}"
        );
    }

    #[test]
    fn low_quality_sets_are_smaller_and_imbalanced() {
        for d in [Domain::Headphones, Domain::Phones, Domain::Tvs] {
            let ds = generate(d, 11);
            let stats = ds.stats();
            assert_eq!(stats.sources, 8, "{d:?}");
            assert!(stats.properties < 400, "{d:?}: {stats:?}");
            assert!(stats.matching_pairs > 50, "{d:?}: {stats:?}");
        }
    }

    #[test]
    fn domains_have_distinct_ontologies() {
        let cam: std::collections::HashSet<String> = Domain::Cameras
            .spec()
            .properties
            .iter()
            .map(|p| p.canonical.clone())
            .collect();
        let tv: std::collections::HashSet<String> = Domain::Tvs
            .spec()
            .properties
            .iter()
            .map(|p| p.canonical.clone())
            .collect();
        // Some overlap (brand/price/weight) but mostly distinct.
        let inter = cam.intersection(&tv).count();
        assert!(inter < cam.len() / 2);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Domain::Cameras.name(), "cameras");
        assert_eq!(Domain::Tvs.name(), "tvs");
        assert!(Domain::Phones.is_low_quality());
        assert!(!Domain::Cameras.is_low_quality());
    }
}
