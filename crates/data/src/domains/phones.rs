//! Phone reference ontology, mirroring the WDC phone gold standard
//! (small, imbalanced, noisy — a "low-quality" dataset).

use super::{prop, strings};
use crate::spec::DomainSpec;
use crate::value::ValueSpec;

/// The phone domain specification.
pub fn spec() -> DomainSpec {
    let properties = vec![
        prop(
            "screen size",
            &["screen size", "display size", "display", "screen diagonal"],
            &["inches", "panel", "diagonal", "display"],
            ValueSpec::numeric(4.0, 7.0, 2, &[(" inch", 1.0), ("\"", 1.0), (" in display", 1.0)]),
            0.90,
        ),
        prop(
            "screen resolution",
            &["screen resolution", "display resolution", "resolution", "pixels"],
            &["sharp", "ppi", "crisp", "density"],
            ValueSpec::categorical(&[
                "1920x1080",
                "2340x1080",
                "2778x1284",
                "3200x1440",
                "1600x720",
            ]),
            0.75,
        ),
        prop(
            "storage",
            &["storage", "internal storage", "memory", "rom", "internal memory"],
            &["gigabytes", "capacity", "apps", "space"],
            ValueSpec::categorical(&["64 GB", "128 GB", "256 GB", "512 GB", "32 GB", "1 TB"]),
            0.85,
        ),
        prop(
            "ram",
            &["ram", "memory ram", "system memory", "ram size"],
            &["gigabytes", "multitasking", "speed"],
            ValueSpec::integer(2, 16, &[(" GB", 1.0), ("GB RAM", 1.0)]),
            0.75,
        ),
        prop(
            "battery capacity",
            &["battery capacity", "battery", "battery size", "battery mah"],
            &["charge", "mah", "endurance", "power"],
            ValueSpec::integer(2500, 6000, &[(" mAh", 1.0), ("mah", 1.0)]),
            0.85,
        ),
        prop(
            "rear camera",
            &["rear camera", "main camera", "back camera", "primary camera"],
            &["photo", "lens", "megapixels", "photography"],
            ValueSpec::integer(8, 200, &[(" MP", 1.0), ("mp camera", 1.0)]),
            0.80,
        ),
        prop(
            "front camera",
            &["front camera", "selfie camera", "front facing camera"],
            &["selfie", "video call", "facetime"],
            ValueSpec::integer(5, 60, &[(" MP", 1.0), ("mp", 1.0)]),
            0.60,
        ),
        prop(
            "processor",
            &["processor", "chipset", "cpu", "soc"],
            &["cores", "performance", "gigahertz", "chip"],
            ValueSpec::categorical(&[
                "Snapdragon 8 Gen 1",
                "A15 Bionic",
                "Dimensity 9000",
                "Exynos 2200",
                "Snapdragon 778G",
                "Helio G96",
            ]),
            0.70,
        ),
        prop(
            "operating system",
            &["operating system", "os", "platform", "software"],
            &["android", "ios", "version", "updates"],
            ValueSpec::categorical(&["Android 12", "iOS 15", "Android 11", "Android 13", "iOS 16"]),
            0.70,
        ),
        prop(
            "weight",
            &["weight", "item weight", "phone weight"],
            &["grams", "light", "hand"],
            ValueSpec::numeric(135.0, 240.0, 0, &[(" g", 1.0), (" grams", 1.0), (" oz", 0.035274)]),
            0.75,
        ),
        prop(
            "dimensions",
            &["dimensions", "size", "product dimensions", "body dimensions"],
            &["width", "height", "thickness", "millimetres"],
            ValueSpec::Dimensions {
                min: 7.0,
                max: 170.0,
                axes: 3,
            },
            0.65,
        ),
        prop(
            "sim",
            &["sim", "sim type", "sim slots", "dual sim"],
            &["nano", "esim", "card", "slots"],
            ValueSpec::categorical(&["dual nano-SIM", "nano-SIM", "nano-SIM + eSIM", "eSIM only"]),
            0.55,
        ),
        prop(
            "network",
            &["network", "connectivity", "cellular", "network type"],
            &["bands", "lte", "speed", "carrier"],
            ValueSpec::categorical(&["5G", "4G LTE", "5G + 4G", "3G/4G"]),
            0.65,
        ),
        prop(
            "color",
            &["color", "colour", "finish"],
            &["black", "style", "gradient"],
            ValueSpec::categorical(&["black", "white", "blue", "green", "purple", "gold"]),
            0.70,
        ),
        prop(
            "brand",
            &["brand", "manufacturer", "make"],
            &["company", "maker", "mobile"],
            ValueSpec::categorical(&[
                "Samsung",
                "Apple",
                "Xiaomi",
                "Google",
                "OnePlus",
                "Motorola",
                "Oppo",
            ]),
            0.85,
        ),
        prop(
            "model",
            &["model", "model name", "model number"],
            &["series", "edition", "generation"],
            ValueSpec::ModelCode {
                prefixes: vec!["SM".into(), "A".into(), "MI".into(), "GT".into()],
            },
            0.80,
        ),
        prop(
            "price",
            &["price", "retail price", "msrp", "list price"],
            &["cost", "dollars", "unlocked"],
            ValueSpec::numeric(99.0, 1800.0, 2, &[(" USD", 1.0), ("", 1.0)]),
            0.80,
        ),
        prop(
            "charging",
            &["charging", "fast charging", "charging speed", "charger watts"],
            &["watts", "quick", "usb", "wireless"],
            ValueSpec::integer(10, 150, &[("W", 1.0), (" watt fast charging", 1.0)]),
            0.50,
        ),
        prop(
            "water resistance",
            &["water resistance", "ip rating", "waterproof"],
            &["dust", "splash", "rating"],
            ValueSpec::categorical(&["IP68", "IP67", "IP53", "none"]),
            0.45,
        ),
        prop(
            "release year",
            &["release year", "year", "launch year", "announced"],
            &["launched", "date", "generation"],
            ValueSpec::integer(2015, 2022, &[("", 1.0)]),
            0.50,
        ),
        prop(
            "refresh rate",
            &["refresh rate", "display refresh rate", "screen refresh"],
            &["hertz", "smooth", "scrolling", "panel"],
            ValueSpec::categorical(&["60 Hz", "90 Hz", "120 Hz", "144 Hz"]),
            0.45,
        ),
        prop(
            "nfc",
            &["nfc", "near field communication", "contactless"],
            &["payments", "tap", "pairing"],
            ValueSpec::categorical(&["yes", "no"]),
            0.35,
        ),
    ];

    DomainSpec {
        name: "phones".into(),
        product_words: strings(&["phone", "smartphone", "handset", "mobile"]),
        properties,
        junk_names: strings(&[
            "sku",
            "listing id",
            "availability",
            "condition",
            "seller",
            "stock",
            "ean",
            "carrier lock",
            "shipping",
            "rating",
            "bundle",
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_size() {
        assert_eq!(spec().properties.len(), 22);
    }

    #[test]
    fn phone_specific_properties_present() {
        let s = spec();
        for c in ["ram", "battery capacity", "operating system", "nfc"] {
            assert!(s.properties.iter().any(|p| p.canonical == c), "missing {c}");
        }
    }
}
