//! TV reference ontology, mirroring the WDC TV gold standard (small,
//! imbalanced, noisy — a "low-quality" dataset).

use super::{prop, strings};
use crate::spec::DomainSpec;
use crate::value::ValueSpec;

/// The TV domain specification.
pub fn spec() -> DomainSpec {
    let properties = vec![
        prop(
            "screen size",
            &["screen size", "display size", "screen diagonal", "size class", "tv size"],
            &["inches", "diagonal", "panel", "living"],
            ValueSpec::integer(24, 85, &[(" inch", 1.0), ("\"", 1.0), (" in class", 1.0)]),
            0.95,
        ),
        prop(
            "resolution",
            &["resolution", "display resolution", "screen resolution", "native resolution"],
            &["pixels", "sharp", "detail", "uhd"],
            ValueSpec::categorical(&["4K UHD", "1080p Full HD", "8K", "720p HD"]),
            0.90,
        ),
        prop(
            "panel type",
            &["panel type", "display type", "panel technology", "screen type"],
            &["backlight", "contrast", "blacks", "viewing"],
            ValueSpec::categorical(&["OLED", "QLED", "LED", "Mini-LED", "LCD"]),
            0.75,
        ),
        prop(
            "refresh rate",
            &["refresh rate", "native refresh rate", "motion rate", "hz"],
            &["hertz", "motion", "gaming", "smooth"],
            ValueSpec::categorical(&["60 Hz", "120 Hz", "100 Hz", "144 Hz"]),
            0.70,
        ),
        prop(
            "hdr",
            &["hdr", "hdr format", "high dynamic range", "hdr support"],
            &["dolby", "vision", "contrast", "highlights"],
            ValueSpec::categorical(&["HDR10", "Dolby Vision", "HDR10+", "HLG", "none"]),
            0.65,
        ),
        prop(
            "smart platform",
            &["smart platform", "smart tv", "operating system", "tv os", "platform"],
            &["apps", "streaming", "voice", "assistant"],
            ValueSpec::categorical(&["webOS", "Tizen", "Google TV", "Roku TV", "Fire TV"]),
            0.70,
        ),
        prop(
            "hdmi ports",
            &["hdmi ports", "hdmi", "hdmi inputs", "number of hdmi"],
            &["inputs", "console", "soundbar", "connect"],
            ValueSpec::integer(2, 4, &[(" hdmi", 1.0), ("", 1.0), (" ports", 1.0)]),
            0.65,
        ),
        prop(
            "usb ports",
            &["usb ports", "usb", "usb inputs"],
            &["media", "playback", "drive"],
            ValueSpec::integer(1, 3, &[(" usb", 1.0), ("", 1.0)]),
            0.50,
        ),
        prop(
            "speaker power",
            &["speaker power", "audio output", "sound output", "speakers"],
            &["watts", "audio", "loud", "channels"],
            ValueSpec::integer(10, 60, &[("W", 1.0), (" watts", 1.0), (" w output", 1.0)]),
            0.55,
        ),
        prop(
            "weight",
            &["weight", "item weight", "weight without stand"],
            &["kilograms", "mount", "wall"],
            ValueSpec::numeric(4.0, 45.0, 1, &[(" kg", 1.0), (" lbs", 2.20462)]),
            0.70,
        ),
        prop(
            "dimensions",
            &["dimensions", "product dimensions", "size without stand", "tv dimensions"],
            &["width", "height", "depth", "centimetres"],
            ValueSpec::Dimensions {
                min: 30.0,
                max: 1900.0,
                axes: 3,
            },
            0.65,
        ),
        prop(
            "vesa",
            &["vesa", "vesa mount", "wall mount pattern", "mounting"],
            &["bracket", "wall", "pattern"],
            ValueSpec::categorical(&["200x200", "300x300", "400x400", "100x100", "600x400"]),
            0.40,
        ),
        prop(
            "energy rating",
            &["energy rating", "energy class", "energy efficiency"],
            &["consumption", "efficiency", "power"],
            ValueSpec::categorical(&["A", "B", "C", "D", "E", "F", "G"]),
            0.45,
        ),
        prop(
            "tuner",
            &["tuner", "tv tuner", "tuner type", "broadcast"],
            &["antenna", "channels", "digital"],
            ValueSpec::categorical(&["DVB-T2/C/S2", "ATSC 3.0", "ATSC", "DVB-T2"]),
            0.40,
        ),
        prop(
            "wifi",
            &["wifi", "wireless lan", "wifi built in"],
            &["streaming", "network", "wireless"],
            ValueSpec::categorical(&["WiFi 5", "WiFi 6", "yes", "WiFi 4"]),
            0.55,
        ),
        prop(
            "bluetooth",
            &["bluetooth", "bluetooth audio", "bt"],
            &["headphones", "pairing", "soundbar"],
            ValueSpec::categorical(&["yes", "no", "5.0", "4.2"]),
            0.45,
        ),
        prop(
            "brand",
            &["brand", "manufacturer", "make"],
            &["company", "maker", "electronics"],
            ValueSpec::categorical(&["Samsung", "LG", "Sony", "TCL", "Hisense", "Vizio", "Philips"]),
            0.85,
        ),
        prop(
            "model",
            &["model", "model name", "model number", "model code"],
            &["series", "lineup", "year"],
            ValueSpec::ModelCode {
                prefixes: vec!["QN".into(), "OLED".into(), "UN".into(), "X".into()],
            },
            0.80,
        ),
        prop(
            "price",
            &["price", "retail price", "msrp", "list price"],
            &["cost", "dollars", "deal"],
            ValueSpec::numeric(120.0, 4500.0, 2, &[(" USD", 1.0), ("", 1.0)]),
            0.80,
        ),
        prop(
            "release year",
            &["release year", "year", "model year"],
            &["lineup", "generation", "launched"],
            ValueSpec::integer(2015, 2022, &[("", 1.0)]),
            0.50,
        ),
    ];

    DomainSpec {
        name: "tvs".into(),
        product_words: strings(&["tv", "television", "smart tv", "display"]),
        properties,
        junk_names: strings(&[
            "sku",
            "listing id",
            "availability",
            "condition",
            "seller",
            "stock",
            "ean",
            "shipping class",
            "bundle offer",
            "rating",
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_size() {
        assert_eq!(spec().properties.len(), 20);
    }

    #[test]
    fn tv_specific_properties_present() {
        let s = spec();
        for c in ["panel type", "hdr", "smart platform", "vesa"] {
            assert!(s.properties.iter().any(|p| p.canonical == c), "missing {c}");
        }
    }
}
