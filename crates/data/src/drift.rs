//! Drifting arrival schedules for the continual-ingestion scenario.
//!
//! ROADMAP item 5 turns [`crate::stress`]'s static world into a stream:
//! an epoch-0 *base* dataset is resident from the start, and further
//! sources arrive over later epochs. Between epochs the world drifts the
//! way production catalogs do:
//!
//! * **naming drift** — later sources increasingly append epoch-specific
//!   modifier words and rotate to a different [`NamingStyle`], so the
//!   string-distance and name-embedding features see a slowly shifting
//!   distribution;
//! * **value drift** — numeric instance values scale up per epoch and
//!   switch unit words, and categorical vocabularies rotate, shifting
//!   the 29 instance features the same way.
//!
//! Every arrival still aligns to the same reference ontology as the base
//! dataset (`ref{r}` labels), so ground truth spans epochs and quality
//! over time is measurable. Optionally, every `corrupt_every`-th arrival
//! is deliberately defective (empty, oversized value, or row flood) —
//! the material a validation gate must quarantine.
//!
//! Everything derives from the same stateless splitmix64 draws as the
//! stress generator (streams 40+ are reserved for drift), so a schedule
//! is reproduced bit-for-bit from its config alone.

use crate::model::{Dataset, Instance, SourceId};
use crate::spec::NamingStyle;
use crate::stress::{
    self, draw, generate_stress_dataset, modifier_word, ref_at, ref_words, unit_word,
    StressConfig,
};
use std::collections::BTreeMap;

/// Shape of a drifting arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// The epoch-0 resident world (also fixes the reference ontology and
    /// the master seed).
    pub base: StressConfig,
    /// Arrival epochs after epoch 0.
    pub epochs: usize,
    /// New sources arriving in each epoch.
    pub sources_per_epoch: usize,
    /// Per-epoch naming-drift intensity in `[0, 1]`: the probability
    /// scale for epoch modifier words and style rotation.
    pub naming_drift: f64,
    /// Per-epoch value-drift intensity in `[0, 1]`: numeric scale shift,
    /// unit churn, categorical rotation.
    pub value_drift: f64,
    /// Every `corrupt_every`-th arrival carries an injected defect
    /// (`0` disables corruption).
    pub corrupt_every: usize,
}

impl DriftConfig {
    /// A schedule over a base world of `base_properties` properties with
    /// the default drift shape: 2 sources per epoch, moderate drift, no
    /// corrupted arrivals.
    pub fn new(base_properties: usize, epochs: usize, seed: u64) -> Self {
        DriftConfig {
            base: StressConfig::new(base_properties, seed),
            epochs,
            sources_per_epoch: 2,
            naming_drift: 0.15,
            value_drift: 0.25,
            corrupt_every: 0,
        }
    }

    /// Total scheduled arrivals.
    pub fn n_arrivals(&self) -> usize {
        self.epochs * self.sources_per_epoch
    }
}

/// The defect carried by a deliberately corrupted arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedDefect {
    /// The source arrives with no rows at all.
    Empty,
    /// One value is ballooned past any sane length bound.
    OversizedValue,
    /// The rows are duplicated far past the expected volume.
    RowFlood,
}

/// One row of an arriving source: `(property, entity, value)` before a
/// [`SourceId`] is assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalRow {
    /// Source-local property name.
    pub property: String,
    /// Entity identifier.
    pub entity: String,
    /// Instance value.
    pub value: String,
}

/// One source on the arrival schedule.
#[derive(Debug, Clone)]
pub struct ScheduledSource {
    /// Arrival epoch (1-based; epoch 0 is the resident base).
    pub epoch: usize,
    /// Source name (unique across the schedule).
    pub name: String,
    /// The rows the source ships.
    pub rows: Vec<ArrivalRow>,
    /// Ground-truth alignment: property name → reference label (same
    /// `ref{r}` namespace as the base dataset).
    pub alignment: BTreeMap<String, String>,
    /// The defect injected into this arrival, if any.
    pub defect: Option<InjectedDefect>,
}

impl ScheduledSource {
    /// The rows as [`Instance`]s under an assigned source id.
    pub fn instances(&self, sid: SourceId) -> Vec<Instance> {
        self.rows
            .iter()
            .map(|r| Instance {
                source: sid,
                property: r.property.clone(),
                entity: r.entity.clone(),
                value: r.value.clone(),
            })
            .collect()
    }
}

/// A complete drifting scenario: the resident base plus the ordered
/// arrivals.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    /// The epoch-0 dataset (resident before any arrival).
    pub base: Dataset,
    /// Arrivals in schedule order (non-decreasing epoch).
    pub arrivals: Vec<ScheduledSource>,
}

/// Map a draw to the unit interval.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Occurrence name of reference `r` as the drifted source `s` (arriving
/// in `epoch`) spells it: base words plus epoch-modifier creep, rendered
/// in an epoch-rotated naming style.
fn drifted_name(cfg: &DriftConfig, r: usize, s: usize, epoch: usize) -> String {
    let words = ref_words(&cfg.base, r);
    let u = draw(cfg.base.seed, 40, ((r as u64) << 20) | s as u64);
    let mut name = String::new();
    name.push_str(&words[0]);
    name.push(' ');
    name.push_str(&words[1]);
    if !u.is_multiple_of(4) {
        name.push(' ');
        name.push_str(&words[2]);
    }
    let strength = (cfg.naming_drift * epoch as f64).min(1.0);
    if unit(draw(cfg.base.seed, 41, ((r as u64) << 20) | s as u64)) < strength {
        // Epoch-specific vocabulary creeps into names: each epoch favors
        // its own small set of modifier words.
        name.push(' ');
        name.push_str(&modifier_word(epoch * 7 + ((u >> 16) as usize % 3)));
    }
    // Style rotates with the epoch — the whole-source naming-convention
    // shift (camelCase → snake_case …) that PSI on name features sees.
    let shift = if unit(draw(cfg.base.seed, 44, s as u64)) < strength {
        epoch
    } else {
        0
    };
    let style = NamingStyle::ALL
        [(draw(cfg.base.seed, 5, s as u64) as usize + shift) % NamingStyle::ALL.len()];
    style.apply(&name)
}

/// Instance value `j` of reference `r` under epoch drift: numeric values
/// scale and churn units, categorical vocabularies rotate.
fn drifted_value(cfg: &DriftConfig, r: usize, j: usize, epoch: usize) -> String {
    let h = draw(cfg.base.seed, 6, r as u64); // same type decision as the base world
    let strength = (cfg.value_drift * epoch as f64).min(1.0);
    if h.is_multiple_of(2) {
        let base = 1 + (h >> 8) % 1000;
        let scale = 1.0 + strength * 2.0;
        let v = (((base + j as u64) as f64) * scale).round() as u64;
        let churn = unit(draw(cfg.base.seed, 42, ((r as u64) << 8) | epoch as u64)) < strength;
        let unit_idx = (h >> 24) as usize + if churn { epoch } else { 0 };
        format!("{} {}", v, unit_word(unit_idx))
    } else {
        let rotate = unit(draw(cfg.base.seed, 43, ((r as u64) << 8) | epoch as u64)) < strength;
        let rot = if rotate { epoch } else { 0 };
        stress::category_word(((h >> 8) as usize).wrapping_add(j + rot))
    }
}

/// Apply the arrival's injected defect to its rows.
fn corrupt(defect: InjectedDefect, rows: &mut Vec<ArrivalRow>) {
    match defect {
        InjectedDefect::Empty => rows.clear(),
        InjectedDefect::OversizedValue => {
            if let Some(row) = rows.first_mut() {
                row.value = "x".repeat(64 * 1024);
            }
        }
        InjectedDefect::RowFlood => {
            let original = rows.clone();
            for _ in 0..63 {
                rows.extend(original.iter().cloned());
            }
        }
    }
}

/// Generate the full drifting scenario. Deterministic given the config;
/// arrivals are emitted in epoch order.
///
/// # Panics
///
/// Panics when the base config violates the stress generator's bounds,
/// or when the schedule would exceed `u16` source ids.
pub fn generate_drift_schedule(cfg: &DriftConfig) -> DriftSchedule {
    let base = generate_stress_dataset(&cfg.base);
    let n_base = cfg.base.n_sources();
    assert!(
        n_base + cfg.n_arrivals() <= u16::MAX as usize,
        "drift schedule exceeds u16 source ids"
    );
    let ontology = cfg.base.ontology_size();

    let mut arrivals = Vec::with_capacity(cfg.n_arrivals());
    for k in 0..cfg.n_arrivals() {
        let epoch = 1 + k / cfg.sources_per_epoch.max(1);
        let s = n_base + k; // global source index drives all draws
        let mut rows = Vec::with_capacity(
            cfg.base.properties_per_source * cfg.base.instances_per_property.max(1),
        );
        let mut alignment = BTreeMap::new();
        for j in 0..cfg.base.properties_per_source {
            let r = ref_at(&cfg.base, ontology, s, j);
            let name = drifted_name(cfg, r, s, epoch);
            alignment.insert(name.clone(), format!("ref{r:06}"));
            for e in 0..cfg.base.instances_per_property.max(1) {
                rows.push(ArrivalRow {
                    property: name.clone(),
                    entity: format!("e{e}"),
                    value: drifted_value(cfg, r, e, epoch),
                });
            }
        }
        let defect = if cfg.corrupt_every > 0 && (k + 1).is_multiple_of(cfg.corrupt_every) {
            let which = match (k / cfg.corrupt_every) % 3 {
                0 => InjectedDefect::Empty,
                1 => InjectedDefect::OversizedValue,
                _ => InjectedDefect::RowFlood,
            };
            corrupt(which, &mut rows);
            Some(which)
        } else {
            None
        };
        arrivals.push(ScheduledSource {
            epoch,
            name: format!("drift-src-{s:05}"),
            rows,
            alignment,
            defect,
        });
    }
    DriftSchedule { base, arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            sources_per_epoch: 2,
            corrupt_every: 0,
            ..DriftConfig::new(300, 4, 11)
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = generate_drift_schedule(&cfg());
        let b = generate_drift_schedule(&cfg());
        assert_eq!(a.base.to_json(), b.base.to_json());
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.alignment, y.alignment);
        }
    }

    #[test]
    fn arrivals_align_into_the_base_ontology() {
        let s = generate_drift_schedule(&cfg());
        assert_eq!(s.arrivals.len(), 8);
        let base_refs: std::collections::BTreeSet<&String> =
            s.base.alignment().values().collect();
        let mut shared = 0usize;
        for a in &s.arrivals {
            assert!(!a.rows.is_empty());
            assert_eq!(a.alignment.len(), cfg().base.properties_per_source);
            shared += a.alignment.values().filter(|r| base_refs.contains(r)).count();
        }
        assert!(shared > 0, "no arrival property aligns into the base world");
    }

    #[test]
    fn later_epochs_drift_away_from_the_base_conventions() {
        let mut c = cfg();
        c.naming_drift = 0.4;
        c.value_drift = 0.5;
        let s = generate_drift_schedule(&c);
        // Epoch-modifier creep: last-epoch sources carry more words per
        // name (modifier creep) than a zero-drift rendering would.
        let drifted_words: usize = s
            .arrivals
            .iter()
            .filter(|a| a.epoch == c.epochs)
            .flat_map(|a| a.alignment.keys())
            .map(|n| n.split(|ch: char| !ch.is_ascii_alphanumeric()).count())
            .sum();
        assert!(drifted_words > 0);
        // Values in the last epoch differ from an epoch-1 rendering of
        // the same references for at least some rows.
        let early: Vec<&ScheduledSource> =
            s.arrivals.iter().filter(|a| a.epoch == 1).collect();
        let late: Vec<&ScheduledSource> =
            s.arrivals.iter().filter(|a| a.epoch == c.epochs).collect();
        assert!(!early.is_empty() && !late.is_empty());
        let early_mean = mean_len(&early);
        let late_mean = mean_len(&late);
        assert_ne!(early_mean.to_bits(), late_mean.to_bits());
    }

    fn mean_len(arrivals: &[&ScheduledSource]) -> f64 {
        let total: usize = arrivals
            .iter()
            .flat_map(|a| a.rows.iter())
            .map(|r| r.value.len())
            .sum();
        let n: usize = arrivals.iter().map(|a| a.rows.len()).sum();
        total as f64 / n.max(1) as f64
    }

    #[test]
    fn corrupt_every_injects_rotating_defects() {
        let mut c = cfg();
        c.corrupt_every = 3;
        let s = generate_drift_schedule(&c);
        let defects: Vec<Option<InjectedDefect>> =
            s.arrivals.iter().map(|a| a.defect).collect();
        assert_eq!(defects[2], Some(InjectedDefect::Empty));
        assert_eq!(defects[5], Some(InjectedDefect::OversizedValue));
        assert!(s.arrivals[2].rows.is_empty());
        assert!(s.arrivals[5].rows.iter().any(|r| r.value.len() > 10_000));
        assert!(defects[0].is_none() && defects[1].is_none());
    }

    #[test]
    fn instances_carry_the_assigned_source_id() {
        let s = generate_drift_schedule(&cfg());
        let sid = SourceId(42);
        let inst = s.arrivals[0].instances(sid);
        assert_eq!(inst.len(), s.arrivals[0].rows.len());
        assert!(inst.iter().all(|i| i.source == sid));
    }
}
