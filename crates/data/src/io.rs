//! CSV import/export for real-world property data.
//!
//! Downstream users rarely start from JSON; scraped property instances
//! usually live in delimited files. This module reads/writes the two
//! files a LEAPME run needs, with a small built-in CSV codec (RFC-4180
//! quoting; no external dependency):
//!
//! * **instances**: `source,property,entity,value` rows;
//! * **alignments** (optional): `source,property,reference` rows mapping
//!   source-local properties to reference-ontology names.

use crate::model::{Dataset, Instance, ModelError, PropertyKey, SourceId};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Errors from CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed row.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The resulting dataset is inconsistent.
    Model(ModelError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            CsvError::Model(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Maximum number of per-line errors kept in an [`ImportReport`].
pub const MAX_REPORTED_ERRORS: usize = 20;

/// Hard cap on one physical CSV line. Longer lines are discarded
/// *without buffering* — a pathological no-newline or multi-gigabyte
/// line costs at most this much memory, never an unbounded allocation.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Hard cap on fields per row. A row with more fields stops parsing at
/// the cap instead of materializing millions of tiny strings.
pub const MAX_FIELDS: usize = 256;

/// Why a row was rejected — the typed half of an [`ImportIssue`], so
/// callers can distinguish structural damage from resource-cap hits
/// without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Structural parse/validation failure (bad quoting, wrong field
    /// count, injected fault).
    Malformed,
    /// The physical line exceeded [`MAX_LINE_BYTES`] and was discarded
    /// unbuffered.
    LineTooLong,
    /// The row had more than [`MAX_FIELDS`] fields.
    TooManyFields,
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::Malformed => write!(f, "malformed"),
            SkipReason::LineTooLong => write!(f, "line too long"),
            SkipReason::TooManyFields => write!(f, "too many fields"),
        }
    }
}

/// One skipped row in an [`ImportReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportIssue {
    /// 1-based line number.
    pub line: usize,
    /// Typed rejection category.
    pub reason: SkipReason,
    /// Human-readable detail.
    pub message: String,
}

/// Outcome summary of a lenient CSV import ([`read_dataset_lenient`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Data rows imported successfully (instances + alignments).
    pub imported: usize,
    /// Malformed rows skipped.
    pub skipped: usize,
    /// The first [`MAX_REPORTED_ERRORS`] skipped rows; later errors are
    /// counted but dropped.
    pub errors: Vec<ImportIssue>,
    /// Whether `errors` overflowed: `skipped` counts every bad row, but
    /// only the first [`MAX_REPORTED_ERRORS`] are kept verbatim.
    pub truncated: bool,
}

impl ImportReport {
    fn record(&mut self, line: usize, reason: SkipReason, message: String) {
        self.skipped += 1;
        if self.errors.len() < MAX_REPORTED_ERRORS {
            self.errors.push(ImportIssue { line, reason, message });
        } else {
            self.truncated = true;
        }
    }

    /// Human-readable multi-line summary of what was skipped.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "imported {} rows, skipped {} malformed",
            self.imported, self.skipped
        );
        for issue in &self.errors {
            out.push_str(&format!(
                "\n  line {}: {} ({})",
                issue.line, issue.message, issue.reason
            ));
        }
        if self.truncated {
            out.push_str(&format!(
                "\n  … and {} more",
                self.skipped - self.errors.len()
            ));
        }
        out
    }
}

/// Write `bytes` to `path` durably: write to a temp sibling, fsync, then
/// atomically rename over the destination (plus a best-effort directory
/// sync), so readers never observe a torn file. Shared by every file
/// writer in the workspace that persists results.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "output".into());
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Parse one CSV record (RFC-4180: `"` quoting, `""` escapes).
///
/// Returns the fields, or an error message for unterminated quotes or a
/// row exceeding [`MAX_FIELDS`] fields.
pub fn parse_record(line: &str) -> Result<Vec<String>, String> {
    parse_record_capped(line).map_err(|(reason, message)| {
        let _ = reason;
        message
    })
}

/// [`parse_record`] with the rejection reason kept typed, so lenient
/// importers can report cap hits distinctly from structural damage.
fn parse_record_capped(line: &str) -> Result<Vec<String>, (SkipReason, String)> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => current.push(other),
            }
        } else {
            match c {
                '"' if current.is_empty() => in_quotes = true,
                ',' => {
                    if fields.len() + 1 >= MAX_FIELDS {
                        return Err((
                            SkipReason::TooManyFields,
                            format!("row exceeds {MAX_FIELDS} fields"),
                        ));
                    }
                    fields.push(std::mem::take(&mut current));
                }
                other => current.push(other),
            }
        }
    }
    if in_quotes {
        return Err((SkipReason::Malformed, "unterminated quoted field".into()));
    }
    fields.push(current);
    Ok(fields)
}

/// One physical line from a bounded read.
enum BoundedLine {
    /// A complete line (terminator stripped) within [`MAX_LINE_BYTES`].
    Line(String),
    /// The line blew the cap; `discarded` bytes were skipped unbuffered.
    TooLong {
        /// Total bytes of the oversized line.
        discarded: usize,
    },
    /// End of the stream.
    Eof,
}

/// Read one `\n`-terminated line without ever buffering more than
/// [`MAX_LINE_BYTES`]. An oversized line is *consumed and discarded* in
/// fixed-size chunks, so a pathological input (no newline at all, or a
/// multi-gigabyte line) costs bounded memory and the stream stays
/// positioned at the next line.
fn read_line_bounded<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> std::io::Result<BoundedLine> {
    buf.clear();
    let mut total = 0usize;
    let mut overflowed = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF: flush whatever the final unterminated line held.
            return Ok(if overflowed {
                BoundedLine::TooLong { discarded: total }
            } else if buf.is_empty() && total == 0 {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(take_line_string(buf)?)
            });
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(p) => (&available[..p], true),
            None => (available, false),
        };
        total += chunk.len();
        if !overflowed {
            if total > MAX_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            return Ok(if overflowed {
                BoundedLine::TooLong { discarded: total }
            } else {
                BoundedLine::Line(take_line_string(buf)?)
            });
        }
    }
}

/// UTF-8-decode a collected line, stripping a trailing `\r` (CRLF input)
/// — the same shape `BufRead::lines` produces.
fn take_line_string(buf: &mut Vec<u8>) -> std::io::Result<String> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(std::mem::take(buf))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "line is not UTF-8"))
}

/// Quote a field if needed and append it to `out`.
fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        out.push_str(&field.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Fault hook: pretend the underlying reader failed for this line.
#[cfg(feature = "faults")]
fn injected_line_io() -> Option<std::io::Error> {
    (leapme_faults::fires(leapme_faults::sites::CSV_LINE) == Some(leapme_faults::FaultKind::Io))
        .then(|| std::io::Error::other("injected fault: csv read error"))
}

#[cfg(not(feature = "faults"))]
fn injected_line_io() -> Option<std::io::Error> {
    None
}

/// Fault hook: pretend this row failed structural validation.
#[cfg(feature = "faults")]
fn injected_malformed_row() -> Option<String> {
    (leapme_faults::fires(leapme_faults::sites::CSV_ROW)
        == Some(leapme_faults::FaultKind::Malformed))
    .then(|| "injected fault: malformed row".to_string())
}

#[cfg(not(feature = "faults"))]
fn injected_malformed_row() -> Option<String> {
    None
}

/// Validate one data row: parse, check the field count, apply faults.
fn parse_row(line: &str, expected_fields: usize) -> Result<Vec<String>, (SkipReason, String)> {
    if let Some(message) = injected_malformed_row() {
        return Err((SkipReason::Malformed, message));
    }
    let fields = parse_record_capped(line)?;
    if fields.len() != expected_fields {
        return Err((
            SkipReason::Malformed,
            format!("expected {expected_fields} fields, found {}", fields.len()),
        ));
    }
    Ok(fields)
}

/// Drive `f` over every data row of a CSV stream: skips the header and
/// blank lines, reads lines bounded by [`MAX_LINE_BYTES`], validates the
/// field count, and dispatches bad rows per `lenient`. The workhorse
/// behind both dataset files and the serve-side instance upload.
fn for_each_row<R: BufRead>(
    mut reader: R,
    expected_fields: usize,
    lenient: bool,
    report: &mut ImportReport,
    mut f: impl FnMut(Vec<String>),
) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    let mut lineno = 0usize;
    loop {
        let line = match read_line_bounded(&mut reader, &mut buf)? {
            BoundedLine::Eof => return Ok(()),
            BoundedLine::Line(line) => {
                lineno += 1;
                line
            }
            BoundedLine::TooLong { discarded } => {
                lineno += 1;
                let reason = SkipReason::LineTooLong;
                let message = format!(
                    "line is {discarded} bytes, cap is {MAX_LINE_BYTES}; discarded unbuffered"
                );
                if lenient {
                    report.record(lineno, reason, message);
                    continue;
                }
                return Err(CsvError::Malformed { line: lineno, message });
            }
        };
        // An I/O failure is a property of the stream, not of one row, so
        // it aborts the import even in lenient mode.
        if let Some(e) = injected_line_io() {
            return Err(CsvError::Io(e));
        }
        if lineno == 1 || line.trim().is_empty() {
            continue; // header / blank
        }
        match parse_row(&line, expected_fields) {
            Ok(fields) => {
                f(fields);
                report.imported += 1;
            }
            Err((reason, message)) if lenient => report.record(lineno, reason, message),
            Err((_, message)) => return Err(CsvError::Malformed { line: lineno, message }),
        }
    }
}

/// Assign (or look up) the id for a source name in first-appearance order.
fn source_id(name: &str, sources: &mut Vec<String>) -> SourceId {
    match sources.iter().position(|s| s == name) {
        Some(i) => SourceId(i as u16),
        None => {
            sources.push(name.to_string());
            SourceId((sources.len() - 1) as u16)
        }
    }
}

/// Parse `source,property,entity,value` rows (with header) from any
/// reader, leniently: bad rows land in the report, lines and field
/// counts are capped. Source ids are resolved against (and appended to)
/// `sources` in first-appearance order — pass the existing source list
/// to merge an upload into a resident dataset, or an empty `Vec` for a
/// standalone parse.
pub fn read_instances_lenient<R: BufRead>(
    reader: R,
    sources: &mut Vec<String>,
) -> Result<(Vec<Instance>, ImportReport), CsvError> {
    let mut report = ImportReport::default();
    let mut instances = Vec::new();
    for_each_row(reader, 4, true, &mut report, |fields| {
        let sid = source_id(&fields[0], sources);
        instances.push(Instance {
            source: sid,
            property: fields[1].clone(),
            entity: fields[2].clone(),
            value: fields[3].clone(),
        });
    })?;
    Ok((instances, report))
}

fn read_dataset_inner(
    name: &str,
    instances_path: &Path,
    alignments_path: Option<&Path>,
    lenient: bool,
) -> Result<(Dataset, ImportReport), CsvError> {
    let mut sources: Vec<String> = Vec::new();
    let mut report = ImportReport::default();

    let mut instances = Vec::new();
    let reader = BufReader::new(std::fs::File::open(instances_path)?);
    for_each_row(reader, 4, lenient, &mut report, |fields| {
        let sid = source_id(&fields[0], &mut sources);
        instances.push(Instance {
            source: sid,
            property: fields[1].clone(),
            entity: fields[2].clone(),
            value: fields[3].clone(),
        });
    })?;

    let mut alignment: BTreeMap<PropertyKey, String> = BTreeMap::new();
    if let Some(path) = alignments_path {
        let reader = BufReader::new(std::fs::File::open(path)?);
        for_each_row(reader, 3, lenient, &mut report, |fields| {
            let sid = source_id(&fields[0], &mut sources);
            alignment.insert(PropertyKey::new(sid, fields[1].clone()), fields[2].clone());
        })?;
    }

    let dataset = Dataset::new(name, sources, instances, alignment).map_err(CsvError::Model)?;
    Ok((dataset, report))
}

/// Read `source,property,entity,value` rows (with header) plus an
/// optional `source,property,reference` alignment file into a [`Dataset`].
///
/// Source ids are assigned in first-appearance order across both files.
/// Strict: the first malformed row aborts the import. See
/// [`read_dataset_lenient`] for the fail-soft variant.
pub fn read_dataset(
    name: &str,
    instances_path: &Path,
    alignments_path: Option<&Path>,
) -> Result<Dataset, CsvError> {
    read_dataset_inner(name, instances_path, alignments_path, false).map(|(ds, _)| ds)
}

/// Like [`read_dataset`], but malformed rows are skipped and collected
/// into an [`ImportReport`] (first [`MAX_REPORTED_ERRORS`] kept verbatim)
/// instead of aborting the import. I/O errors still abort.
pub fn read_dataset_lenient(
    name: &str,
    instances_path: &Path,
    alignments_path: Option<&Path>,
) -> Result<(Dataset, ImportReport), CsvError> {
    read_dataset_inner(name, instances_path, alignments_path, true)
}

/// Write a dataset's instances (and alignment, if any) back to CSV files.
pub fn write_dataset(
    dataset: &Dataset,
    instances_path: &Path,
    alignments_path: Option<&Path>,
) -> Result<(), CsvError> {
    let mut out = String::from("source,property,entity,value\n");
    for inst in dataset.instances() {
        let source = &dataset.sources()[inst.source.0 as usize];
        for (i, field) in [source, &inst.property, &inst.entity, &inst.value]
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, field);
        }
        out.push('\n');
    }
    atomic_write(instances_path, out.as_bytes())?;

    if let Some(path) = alignments_path {
        let mut out = String::from("source,property,reference\n");
        for key in dataset.properties() {
            if let Some(reference) = dataset.alignment_of(&key) {
                let source = &dataset.sources()[key.source.0 as usize];
                for (i, field) in [source.as_str(), &key.name, reference].into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_field(&mut out, field);
                }
                out.push('\n');
            }
        }
        atomic_write(path, out.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate, Domain};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_data_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn parse_record_basics() {
        assert_eq!(parse_record("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_record("").unwrap(), vec![""]);
        assert_eq!(parse_record("a,,c").unwrap(), vec!["a", "", "c"]);
    }

    #[test]
    fn parse_record_quoting() {
        assert_eq!(
            parse_record(r#"shopA,"weight, net",e1,"20.1 ""MP""""#).unwrap(),
            vec!["shopA", "weight, net", "e1", r#"20.1 "MP""#]
        );
        assert!(parse_record(r#""unterminated"#).is_err());
    }

    #[test]
    fn round_trip_through_csv() {
        let original = generate(Domain::Headphones, 8);
        let inst_path = tmp("rt_instances.csv");
        let align_path = tmp("rt_alignments.csv");
        write_dataset(&original, &inst_path, Some(&align_path)).unwrap();
        let back = read_dataset("headphones", &inst_path, Some(&align_path)).unwrap();
        let (a, b) = (original.stats(), back.stats());
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.properties, b.properties);
        assert_eq!(a.aligned_properties, b.aligned_properties);
        assert_eq!(a.matching_pairs, b.matching_pairs);
        std::fs::remove_file(inst_path).ok();
        std::fs::remove_file(align_path).ok();
    }

    #[test]
    fn read_simple_files() {
        let inst = tmp("simple_instances.csv");
        std::fs::write(
            &inst,
            "source,property,entity,value\n\
             shopA,megapixels,e1,20.1 MP\n\
             shopB,resolution,x1,\"20,1 megapixels\"\n",
        )
        .unwrap();
        let align = tmp("simple_alignments.csv");
        std::fs::write(
            &align,
            "source,property,reference\n\
             shopA,megapixels,resolution\n\
             shopB,resolution,resolution\n",
        )
        .unwrap();
        let ds = read_dataset("custom", &inst, Some(&align)).unwrap();
        assert_eq!(ds.sources().len(), 2);
        assert_eq!(ds.stats().matching_pairs, 1);
        let key = PropertyKey::new(SourceId(1), "resolution");
        assert_eq!(ds.instances_of(&key)[0].value, "20,1 megapixels");
        std::fs::remove_file(inst).ok();
        std::fs::remove_file(align).ok();
    }

    #[test]
    fn rejects_malformed_rows() {
        let inst = tmp("bad_instances.csv");
        std::fs::write(&inst, "header\nonly,three,fields\n").unwrap();
        let err = read_dataset("bad", &inst, None).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }));
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn lenient_skips_malformed_rows_and_reports() {
        let inst = tmp("lenient_instances.csv");
        std::fs::write(
            &inst,
            "source,property,entity,value\n\
             shopA,megapixels,e1,20.1 MP\n\
             only,three,fields\n\
             \"unterminated,x,y,z\n\
             shopB,resolution,x1,24 MP\n",
        )
        .unwrap();
        let (ds, report) = read_dataset_lenient("lenient", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 2);
        assert_eq!(report.imported, 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.errors[0].line, 3);
        assert_eq!(report.errors[0].reason, SkipReason::Malformed);
        assert_eq!(report.errors[1].line, 4);
        assert!(!report.truncated);
        assert!(report.summary().contains("skipped 2 malformed"));
        assert!(!report.summary().contains("more"));
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn lenient_report_caps_error_list() {
        let inst = tmp("lenient_cap_instances.csv");
        let mut csv = String::from("source,property,entity,value\n");
        for _ in 0..(MAX_REPORTED_ERRORS + 5) {
            csv.push_str("only,three,fields\n");
        }
        csv.push_str("shopA,p,e,v\n");
        std::fs::write(&inst, &csv).unwrap();
        let (ds, report) = read_dataset_lenient("cap", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 1);
        assert_eq!(report.skipped, MAX_REPORTED_ERRORS + 5);
        assert_eq!(report.errors.len(), MAX_REPORTED_ERRORS);
        assert!(report.truncated);
        assert!(report.summary().contains("and 5 more"));
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let original = generate(Domain::Cameras, 5);
        let inst_path = tmp("lenient_clean_instances.csv");
        let align_path = tmp("lenient_clean_alignments.csv");
        write_dataset(&original, &inst_path, Some(&align_path)).unwrap();
        let strict = read_dataset("c", &inst_path, Some(&align_path)).unwrap();
        let (lenient, report) =
            read_dataset_lenient("c", &inst_path, Some(&align_path)).unwrap();
        assert_eq!(strict.stats(), lenient.stats());
        assert_eq!(report.skipped, 0);
        assert!(report.errors.is_empty());
        std::fs::remove_file(inst_path).ok();
        std::fs::remove_file(align_path).ok();
    }

    #[test]
    fn alignment_can_reference_new_sources() {
        // Alignment file mentions a source absent from instances — allowed
        // (a schema-only source), ids assigned consistently.
        let inst = tmp("new_src_instances.csv");
        std::fs::write(&inst, "h\nshopA,p,e,v\n").unwrap();
        let align = tmp("new_src_alignments.csv");
        std::fs::write(&align, "h\nshopB,q,ref\n").unwrap();
        let ds = read_dataset("x", &inst, Some(&align)).unwrap();
        assert_eq!(ds.sources().len(), 2);
        assert_eq!(
            ds.alignment_of(&PropertyKey::new(SourceId(1), "q")),
            Some("ref")
        );
        std::fs::remove_file(inst).ok();
        std::fs::remove_file(align).ok();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let path = tmp("atomic_out.txt");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_file_name("atomic_out.txt.tmp").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_line_is_discarded_unbuffered_in_lenient_mode() {
        let inst = tmp("longline_instances.csv");
        let mut csv = String::from("source,property,entity,value\n");
        csv.push_str("shopA,megapixels,e1,20.1 MP\n");
        // One line past the cap: a huge quoted value.
        csv.push_str("shopB,big,e2,\"");
        csv.push_str(&"x".repeat(MAX_LINE_BYTES + 64));
        csv.push_str("\"\n");
        csv.push_str("shopB,resolution,x1,24 MP\n");
        std::fs::write(&inst, &csv).unwrap();
        let (ds, report) = read_dataset_lenient("long", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 2, "rows around the bomb survive");
        assert_eq!(report.skipped, 1);
        assert_eq!(report.errors[0].line, 3);
        assert_eq!(report.errors[0].reason, SkipReason::LineTooLong);
        assert!(report.errors[0].message.contains("discarded unbuffered"));
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn oversized_line_is_a_typed_error_in_strict_mode() {
        let inst = tmp("longline_strict_instances.csv");
        let mut csv = String::from("source,property,entity,value\n");
        csv.push_str(&"y".repeat(MAX_LINE_BYTES + 1));
        csv.push('\n');
        std::fs::write(&inst, &csv).unwrap();
        let err = read_dataset("long", &inst, None).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }), "{err}");
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn field_bomb_is_capped_with_a_typed_reason() {
        let inst = tmp("fieldbomb_instances.csv");
        let mut csv = String::from("source,property,entity,value\n");
        // A row of MAX_FIELDS+99 commas would otherwise materialize that
        // many allocations; parsing must stop at the cap.
        csv.push_str(&",".repeat(MAX_FIELDS + 99));
        csv.push('\n');
        csv.push_str("shopA,p,e,v\n");
        std::fs::write(&inst, &csv).unwrap();
        let (ds, report) = read_dataset_lenient("bomb", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 1);
        assert_eq!(report.errors[0].reason, SkipReason::TooManyFields);
        assert!(report.errors[0].message.contains("exceeds"));
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn unterminated_final_line_without_newline_still_parses() {
        let inst = tmp("noeol_instances.csv");
        std::fs::write(
            &inst,
            "source,property,entity,value\nshopA,megapixels,e1,20.1 MP",
        )
        .unwrap();
        let ds = read_dataset("noeol", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 1);
        std::fs::remove_file(inst).ok();
    }

    #[test]
    fn read_instances_lenient_merges_into_existing_sources() {
        let mut sources = vec!["shopA".to_string(), "shopB".to_string()];
        let csv = "source,property,entity,value\n\
                   shopB,resolution,x1,24 MP\n\
                   shopC,pixels,y1,12 MP\n";
        let (instances, report) =
            read_instances_lenient(std::io::Cursor::new(csv), &mut sources).unwrap();
        assert_eq!(report.imported, 2);
        assert_eq!(instances[0].source, SourceId(1), "existing id reused");
        assert_eq!(instances[1].source, SourceId(2), "new source appended");
        assert_eq!(sources.len(), 3);
    }

    #[test]
    fn empty_instances_file_is_ok() {
        let inst = tmp("empty_instances.csv");
        std::fs::write(&inst, "source,property,entity,value\n").unwrap();
        let ds = read_dataset("empty", &inst, None).unwrap();
        assert_eq!(ds.stats().instances, 0);
        std::fs::remove_file(inst).ok();
    }
}
