//! Multi-source property data model and synthetic dataset generators.
//!
//! The LEAPME evaluation (paper §V-B) uses four multi-source e-commerce
//! datasets — cameras (DI2KG'19 challenge, 24 sources) and headphones /
//! phones / TVs (WDC Gold Standard) — where every source-local property is
//! aligned to a reference ontology, and two properties *match* iff they
//! align to the same reference property. Those datasets are not available
//! offline, so this crate provides:
//!
//! * [`model`] — the data model: sources, entities, property instances
//!   `(p, e, v)` (paper §III), datasets with reference alignments, and
//!   ground-truth pair derivation;
//! * [`value`] — typed synthetic value generators (numbers with unit
//!   variants, categorical vocabularies, physical dimensions, model codes,
//!   free text);
//! * [`noise`] — realistic corruption: typos, abbreviations, token
//!   dropout, case jitter;
//! * [`spec`] — the generation engine: domain specifications (reference
//!   properties with synonym sets) plus per-source naming styles are
//!   expanded into a concrete [`model::Dataset`];
//! * [`domains`] — the four concrete domain ontologies mirroring the
//!   paper's datasets (balanced high-quality cameras; smaller, imbalanced,
//!   noisier headphones / phones / TVs);
//! * [`corpus`] — a domain text-corpus generator whose sentences make
//!   synonymous property terms share contexts, so that GloVe training in
//!   `leapme-embedding` reproduces the semantic geometry the paper gets
//!   from pre-trained vectors (DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use leapme_data::domains::{Domain, generate};
//!
//! let dataset = generate(Domain::Cameras, 42);
//! assert_eq!(dataset.sources().len(), 24);
//! let stats = dataset.stats();
//! assert!(stats.properties > 500);
//! assert!(stats.matching_pairs > 1000);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod domains;
pub mod drift;
pub mod io;
pub mod model;
pub mod noise;
pub mod spec;
pub mod stress;
pub mod value;
