//! The multi-source property data model (paper §III).
//!
//! A [`Dataset`] holds property instances `(p, e, v)` from several sources
//! plus the alignment of each source-local property to a reference
//! ontology. Ground truth follows the paper's rule: two properties from
//! *different* sources match iff both are aligned to the same reference
//! property.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifier of a source within a dataset (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SourceId(pub u16);

/// A property is identified by its source and its (source-local) name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PropertyKey {
    /// Source the property belongs to.
    pub source: SourceId,
    /// Source-local property name.
    pub name: String,
}

impl PropertyKey {
    /// Convenience constructor.
    pub fn new(source: SourceId, name: impl Into<String>) -> Self {
        PropertyKey {
            source,
            name: name.into(),
        }
    }
}

impl std::fmt::Display for PropertyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}:{}", self.source.0, self.name)
    }
}

/// A property instance `(p, e, v)`: property name, entity id, literal value
/// (paper §III), tagged with its source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Source the instance comes from.
    pub source: SourceId,
    /// Property name within the source.
    pub property: String,
    /// Entity identifier within the source.
    pub entity: String,
    /// Literal value.
    pub value: String,
}

/// An unordered pair of properties from different sources.
///
/// Stored canonically (lexicographically smaller key first) so it can be
/// used as a set/map key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PropertyPair(pub PropertyKey, pub PropertyKey);

impl PropertyPair {
    /// Build the canonical pair.
    ///
    /// # Panics
    ///
    /// Panics if both properties come from the same source — the task only
    /// matches properties *across* sources (paper §III).
    pub fn new(a: PropertyKey, b: PropertyKey) -> Self {
        assert_ne!(a.source, b.source, "pairs must span two sources");
        if a <= b {
            PropertyPair(a, b)
        } else {
            PropertyPair(b, a)
        }
    }
}

/// Summary statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of sources.
    pub sources: usize,
    /// Number of distinct (source, name) properties.
    pub properties: usize,
    /// Number of aligned properties (having a reference property).
    pub aligned_properties: usize,
    /// Number of property instances.
    pub instances: usize,
    /// Number of entities summed over sources.
    pub entities: usize,
    /// Number of cross-source matching property pairs.
    pub matching_pairs: usize,
}

/// A multi-source dataset with reference-ontology alignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    sources: Vec<String>,
    instances: Vec<Instance>,
    /// Alignment of properties to reference-property names. Properties
    /// absent from the map are unaligned ("junk") and match nothing.
    /// Serialized as a list of pairs because JSON map keys must be strings.
    #[serde(with = "alignment_serde")]
    alignment: BTreeMap<PropertyKey, String>,
    // ---- caches (rebuilt on deserialize) ----
    #[serde(skip)]
    by_property: HashMap<PropertyKey, Vec<usize>>,
}

impl Dataset {
    /// Assemble a dataset.
    ///
    /// `sources[i]` names the source with id `i`. Instances referring to a
    /// source id out of range are rejected.
    pub fn new(
        name: impl Into<String>,
        sources: Vec<String>,
        instances: Vec<Instance>,
        alignment: BTreeMap<PropertyKey, String>,
    ) -> Result<Self, ModelError> {
        let n = sources.len();
        for inst in &instances {
            if inst.source.0 as usize >= n {
                return Err(ModelError::UnknownSource(inst.source));
            }
        }
        for key in alignment.keys() {
            if key.source.0 as usize >= n {
                return Err(ModelError::UnknownSource(key.source));
            }
        }
        let mut ds = Dataset {
            name: name.into(),
            sources,
            instances,
            alignment,
            by_property: HashMap::new(),
        };
        ds.rebuild_index();
        Ok(ds)
    }

    fn rebuild_index(&mut self) {
        self.by_property.clear();
        for (i, inst) in self.instances.iter().enumerate() {
            self.by_property
                .entry(PropertyKey::new(inst.source, inst.property.clone()))
                .or_default()
                .push(i);
        }
    }

    /// Dataset name (e.g. `"cameras"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source names; index = source id.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// All property instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All distinct properties, sorted.
    pub fn properties(&self) -> Vec<PropertyKey> {
        let mut set: BTreeSet<PropertyKey> = self.by_property.keys().cloned().collect();
        // Aligned properties may exist without instances (rare); include them.
        set.extend(self.alignment.keys().cloned());
        set.into_iter().collect()
    }

    /// The schema of one source: its distinct property names, sorted
    /// (paper §III "class schema").
    pub fn schema_of(&self, source: SourceId) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .by_property
            .keys()
            .filter(|k| k.source == source)
            .map(|k| k.name.as_str())
            .collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Instances of one property.
    pub fn instances_of(&self, key: &PropertyKey) -> Vec<&Instance> {
        self.by_property
            .get(key)
            .map(|idxs| idxs.iter().map(|&i| &self.instances[i]).collect())
            .unwrap_or_default()
    }

    /// Reference property a property is aligned to, if any.
    pub fn alignment_of(&self, key: &PropertyKey) -> Option<&str> {
        self.alignment.get(key).map(String::as_str)
    }

    /// The full alignment map (property → reference name).
    pub fn alignment(&self) -> &BTreeMap<PropertyKey, String> {
        &self.alignment
    }

    /// Whether two properties match per the paper's ground-truth rule:
    /// different sources, both aligned, same reference property.
    pub fn matches(&self, a: &PropertyKey, b: &PropertyKey) -> bool {
        if a.source == b.source {
            return false;
        }
        match (self.alignment.get(a), self.alignment.get(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// All cross-source matching property pairs (the ground truth).
    pub fn ground_truth_pairs(&self) -> BTreeSet<PropertyPair> {
        let mut by_ref: BTreeMap<&str, Vec<&PropertyKey>> = BTreeMap::new();
        for (key, reference) in &self.alignment {
            by_ref.entry(reference.as_str()).or_default().push(key);
        }
        let mut pairs = BTreeSet::new();
        for keys in by_ref.values() {
            for (i, a) in keys.iter().enumerate() {
                for b in &keys[i + 1..] {
                    if a.source != b.source {
                        pairs.insert(PropertyPair::new((*a).clone(), (*b).clone()));
                    }
                }
            }
        }
        pairs
    }

    /// All cross-source property pairs restricted to the given sources
    /// (both endpoints must belong to `sources`). This is the candidate
    /// space the classifier scores.
    pub fn cross_source_pairs(&self, sources: &[SourceId]) -> Vec<PropertyPair> {
        let allowed: BTreeSet<SourceId> = sources.iter().copied().collect();
        let props: Vec<PropertyKey> = self
            .properties()
            .into_iter()
            .filter(|p| allowed.contains(&p.source))
            .collect();
        let mut pairs = Vec::new();
        for (i, a) in props.iter().enumerate() {
            for b in &props[i + 1..] {
                if a.source != b.source {
                    pairs.push(PropertyPair::new(a.clone(), b.clone()));
                }
            }
        }
        pairs
    }

    /// Size of the full cross-source pair space restricted to `sources`
    /// — `|cross_source_pairs(sources)|` computed arithmetically from
    /// per-source property counts (`(T² − Σnᵢ²) / 2`) instead of
    /// materializing the pairs. At stress scale (100k–1M properties) the
    /// materialized form is ~10⁹–10¹² pairs; this stays O(properties).
    pub fn cross_source_pair_count(&self, sources: &[SourceId]) -> usize {
        let allowed: BTreeSet<SourceId> = sources.iter().copied().collect();
        let mut counts: BTreeMap<SourceId, usize> = BTreeMap::new();
        for p in self.properties() {
            if allowed.contains(&p.source) {
                *counts.entry(p.source).or_default() += 1;
            }
        }
        let total: usize = counts.values().sum();
        let squares: usize = counts.values().map(|&c| c * c).sum();
        (total * total - squares) / 2
    }

    /// Summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let entities: BTreeSet<(SourceId, &str)> = self
            .instances
            .iter()
            .map(|i| (i.source, i.entity.as_str()))
            .collect();
        DatasetStats {
            sources: self.sources.len(),
            properties: self.properties().len(),
            aligned_properties: self.alignment.len(),
            instances: self.instances.len(),
            entities: entities.len(),
            matching_pairs: self.ground_truth_pairs().len(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset is serializable")
    }

    /// Deserialize from JSON produced by [`Dataset::to_json`].
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        let mut ds: Dataset =
            serde_json::from_str(json).map_err(|e| ModelError::Json(e.to_string()))?;
        ds.rebuild_index();
        Ok(ds)
    }
}

mod alignment_serde {
    //! JSON-friendly (de)serialization of the alignment map: a sequence of
    //! `(PropertyKey, String)` entries instead of a map with struct keys.
    use super::PropertyKey;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<PropertyKey, String>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&PropertyKey, &String)> = map.iter().collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<PropertyKey, String>, D::Error> {
        let entries: Vec<(PropertyKey, String)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

/// Errors constructing or loading datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An instance or alignment refers to a source id not in the dataset.
    UnknownSource(SourceId),
    /// JSON (de)serialization failure.
    Json(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownSource(s) => write!(f, "unknown source id {}", s.0),
            ModelError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let s0 = SourceId(0);
        let s1 = SourceId(1);
        let s2 = SourceId(2);
        let instances = vec![
            Instance {
                source: s0,
                property: "megapixels".into(),
                entity: "e1".into(),
                value: "20.1 MP".into(),
            },
            Instance {
                source: s0,
                property: "megapixels".into(),
                entity: "e2".into(),
                value: "24 MP".into(),
            },
            Instance {
                source: s1,
                property: "camera resolution".into(),
                entity: "x1".into(),
                value: "20 megapixels".into(),
            },
            Instance {
                source: s2,
                property: "effective pixels".into(),
                entity: "z1".into(),
                value: "18.2".into(),
            },
            Instance {
                source: s1,
                property: "sku".into(),
                entity: "x1".into(),
                value: "A-1023".into(),
            },
            Instance {
                source: s2,
                property: "sku".into(),
                entity: "z1".into(),
                value: "B-884".into(),
            },
        ];
        let mut alignment = BTreeMap::new();
        alignment.insert(PropertyKey::new(s0, "megapixels"), "resolution".to_string());
        alignment.insert(
            PropertyKey::new(s1, "camera resolution"),
            "resolution".to_string(),
        );
        alignment.insert(
            PropertyKey::new(s2, "effective pixels"),
            "resolution".to_string(),
        );
        Dataset::new(
            "toy",
            vec!["a".into(), "b".into(), "c".into()],
            instances,
            alignment,
        )
        .unwrap()
    }

    #[test]
    fn schema_and_instances() {
        let ds = toy();
        assert_eq!(ds.schema_of(SourceId(1)), vec!["camera resolution", "sku"]);
        let key = PropertyKey::new(SourceId(0), "megapixels");
        assert_eq!(ds.instances_of(&key).len(), 2);
        assert_eq!(ds.instances_of(&PropertyKey::new(SourceId(0), "nope")).len(), 0);
    }

    #[test]
    fn ground_truth_matches_same_reference() {
        let ds = toy();
        let gt = ds.ground_truth_pairs();
        // 3 aligned properties from 3 different sources → 3 pairs.
        assert_eq!(gt.len(), 3);
        assert!(ds.matches(
            &PropertyKey::new(SourceId(0), "megapixels"),
            &PropertyKey::new(SourceId(1), "camera resolution"),
        ));
    }

    #[test]
    fn unaligned_properties_never_match() {
        let ds = toy();
        // "sku" appears in two sources with the same name but is unaligned.
        assert!(!ds.matches(
            &PropertyKey::new(SourceId(1), "sku"),
            &PropertyKey::new(SourceId(2), "sku"),
        ));
    }

    #[test]
    fn same_source_never_matches() {
        let ds = toy();
        assert!(!ds.matches(
            &PropertyKey::new(SourceId(0), "megapixels"),
            &PropertyKey::new(SourceId(0), "megapixels"),
        ));
    }

    #[test]
    fn cross_source_pairs_exclude_same_source() {
        let ds = toy();
        let pairs = ds.cross_source_pairs(&[SourceId(0), SourceId(1)]);
        assert!(pairs
            .iter()
            .all(|PropertyPair(a, b)| a.source != b.source));
        // s0 has 1 property, s1 has 2 → 2 cross pairs.
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn pair_count_matches_materialized_pairs() {
        let ds = toy();
        let all: Vec<SourceId> = (0..3).map(SourceId).collect();
        assert_eq!(
            ds.cross_source_pair_count(&all),
            ds.cross_source_pairs(&all).len()
        );
        let two = [SourceId(0), SourceId(1)];
        assert_eq!(
            ds.cross_source_pair_count(&two),
            ds.cross_source_pairs(&two).len()
        );
        assert_eq!(ds.cross_source_pair_count(&[SourceId(2)]), 0);
        assert_eq!(ds.cross_source_pair_count(&[]), 0);
    }

    #[test]
    fn pair_is_canonical() {
        let a = PropertyKey::new(SourceId(0), "x");
        let b = PropertyKey::new(SourceId(1), "a");
        assert_eq!(
            PropertyPair::new(a.clone(), b.clone()),
            PropertyPair::new(b, a)
        );
    }

    #[test]
    #[should_panic(expected = "span two sources")]
    fn pair_rejects_same_source() {
        let a = PropertyKey::new(SourceId(0), "x");
        let b = PropertyKey::new(SourceId(0), "y");
        PropertyPair::new(a, b);
    }

    #[test]
    fn stats() {
        let ds = toy();
        let s = ds.stats();
        assert_eq!(s.sources, 3);
        assert_eq!(s.properties, 5);
        assert_eq!(s.aligned_properties, 3);
        assert_eq!(s.instances, 6);
        assert_eq!(s.entities, 4);
        assert_eq!(s.matching_pairs, 3);
    }

    #[test]
    fn rejects_unknown_source() {
        let err = Dataset::new(
            "bad",
            vec!["only".into()],
            vec![Instance {
                source: SourceId(5),
                property: "p".into(),
                entity: "e".into(),
                value: "v".into(),
            }],
            BTreeMap::new(),
        )
        .unwrap_err();
        assert_eq!(err, ModelError::UnknownSource(SourceId(5)));
    }

    #[test]
    fn json_round_trip_preserves_ground_truth() {
        let ds = toy();
        let json = ds.to_json();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.stats(), ds.stats());
        assert_eq!(back.ground_truth_pairs(), ds.ground_truth_pairs());
        // Index rebuilt after deserialization.
        let key = PropertyKey::new(SourceId(0), "megapixels");
        assert_eq!(back.instances_of(&key).len(), 2);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Dataset::from_json("not json").is_err());
    }

    #[test]
    fn display_formats() {
        let k = PropertyKey::new(SourceId(3), "iso");
        assert_eq!(k.to_string(), "s3:iso");
    }
}
