//! Noise injection for property names and values.
//!
//! The paper's three WDC datasets are described as "low-quality": fewer
//! sources, imbalanced entity counts, and messier names. This module
//! provides the corruptions the generators apply — typos, abbreviation,
//! vowel dropping, token dropout, case jitter, and decorative suffixes —
//! each applied with a configurable probability.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Probabilistic noise model applied to generated property names/values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Probability of injecting a single character-level typo.
    pub typo: f64,
    /// Probability of abbreviating one word (truncation or vowel removal).
    pub abbreviate: f64,
    /// Probability of dropping one token from a multi-token name.
    pub token_dropout: f64,
    /// Probability of jittering case (Title Case / UPPER).
    pub case_jitter: f64,
    /// Probability of appending a decorative suffix (`" (approx.)"` etc).
    pub decorate: f64,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn clean() -> Self {
        NoiseConfig {
            typo: 0.0,
            abbreviate: 0.0,
            token_dropout: 0.0,
            case_jitter: 0.0,
            decorate: 0.0,
        }
    }

    /// Mild noise for the high-quality (cameras) dataset.
    pub fn mild() -> Self {
        NoiseConfig {
            typo: 0.02,
            abbreviate: 0.05,
            token_dropout: 0.02,
            case_jitter: 0.10,
            decorate: 0.03,
        }
    }

    /// Heavy noise for the low-quality (WDC-style) datasets.
    ///
    /// Calibrated so that fully out-of-vocabulary names (which neither
    /// the paper's 1.9M-word GloVe nor our fuzzy fallback can embed)
    /// stay rare, as they are in the real WDC data.
    pub fn heavy() -> Self {
        NoiseConfig {
            typo: 0.04,
            abbreviate: 0.04,
            token_dropout: 0.05,
            case_jitter: 0.25,
            decorate: 0.10,
        }
    }

    /// Apply the configured corruptions to `text`.
    pub fn apply(&self, text: &str, rng: &mut StdRng) -> String {
        let mut s = text.to_string();
        if rng.gen_bool(self.token_dropout.clamp(0.0, 1.0)) {
            s = drop_token(&s, rng);
        }
        if rng.gen_bool(self.abbreviate.clamp(0.0, 1.0)) {
            s = abbreviate_word(&s, rng);
        }
        if rng.gen_bool(self.typo.clamp(0.0, 1.0)) {
            s = inject_typo(&s, rng);
        }
        if rng.gen_bool(self.case_jitter.clamp(0.0, 1.0)) {
            s = jitter_case(&s, rng);
        }
        if rng.gen_bool(self.decorate.clamp(0.0, 1.0)) {
            s = decorate(&s, rng);
        }
        s
    }
}

/// Inject one random character-level typo: swap, drop, or duplicate.
///
/// Strings shorter than 3 characters are returned unchanged (a typo there
/// would destroy the word entirely).
pub fn inject_typo(text: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < 3 {
        return text.to_string();
    }
    let mut out = chars.clone();
    let pos = rng.gen_range(1..chars.len() - 1);
    match rng.gen_range(0..3) {
        0 => out.swap(pos, pos - 1),
        1 => {
            out.remove(pos);
        }
        _ => out.insert(pos, chars[pos]),
    }
    out.into_iter().collect()
}

/// Abbreviate one randomly chosen word of ≥ 5 letters: either truncate to
/// its first 3–4 characters (optionally adding `.`) or strip its non-lead
/// vowels (`resolution` → `rsltn`).
pub fn abbreviate_word(text: &str, rng: &mut StdRng) -> String {
    let words: Vec<&str> = text.split(' ').collect();
    let candidates: Vec<usize> = words
        .iter()
        .enumerate()
        .filter(|(_, w)| w.chars().count() >= 5 && w.chars().all(char::is_alphabetic))
        .map(|(i, _)| i)
        .collect();
    let Some(&idx) = candidates.choose(rng) else {
        return text.to_string();
    };
    let word = words[idx];
    let abbreviated = if rng.gen_bool(0.5) {
        let keep = rng.gen_range(3..=4);
        let mut t: String = word.chars().take(keep).collect();
        if rng.gen_bool(0.5) {
            t.push('.');
        }
        t
    } else {
        let mut out = String::new();
        for (i, c) in word.chars().enumerate() {
            if i == 0 || !"aeiouAEIOU".contains(c) {
                out.push(c);
            }
        }
        out
    };
    let mut new_words: Vec<String> = words.iter().map(|w| w.to_string()).collect();
    new_words[idx] = abbreviated;
    new_words.join(" ")
}

/// Drop one token from a multi-token string; single tokens are unchanged.
pub fn drop_token(text: &str, rng: &mut StdRng) -> String {
    let words: Vec<&str> = text.split(' ').filter(|w| !w.is_empty()).collect();
    if words.len() < 2 {
        return text.to_string();
    }
    let drop = rng.gen_range(0..words.len());
    words
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != drop)
        .map(|(_, w)| *w)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Randomly switch the string to Title Case or UPPER CASE.
pub fn jitter_case(text: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        // Title Case.
        text.split(' ')
            .map(|w| {
                let mut c = w.chars();
                match c.next() {
                    Some(first) => first.to_uppercase().chain(c).collect::<String>(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        text.to_uppercase()
    }
}

/// The word tokens decorations can introduce into property names
/// (exported so the corpus generator can give them embedding vectors).
pub const DECORATION_WORDS: [&str; 3] = ["approx", "max", "info"];

/// Append a decorative suffix commonly seen in scraped spec tables.
pub fn decorate(text: &str, rng: &mut StdRng) -> String {
    const SUFFIXES: [&str; 5] = [":", " *", " (approx.)", " (max)", " info"];
    format!("{text}{}", SUFFIXES.choose(rng).expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clean_config_is_identity() {
        let cfg = NoiseConfig::clean();
        let mut r = rng(1);
        for s in ["camera resolution", "MP", ""] {
            assert_eq!(cfg.apply(s, &mut r), s);
        }
    }

    #[test]
    fn typo_changes_long_strings() {
        let mut r = rng(2);
        let mut changed = 0;
        for _ in 0..30 {
            if inject_typo("resolution", &mut r) != "resolution" {
                changed += 1;
            }
        }
        assert!(changed > 25, "typos should nearly always change the string");
    }

    #[test]
    fn typo_preserves_short_strings() {
        let mut r = rng(3);
        assert_eq!(inject_typo("mp", &mut r), "mp");
        assert_eq!(inject_typo("", &mut r), "");
    }

    #[test]
    fn abbreviation_shortens_a_word() {
        let mut r = rng(4);
        let mut saw_shorter = false;
        for _ in 0..20 {
            let out = abbreviate_word("maximum shutter speed", &mut r);
            if out.len() < "maximum shutter speed".len() {
                saw_shorter = true;
            }
            // "speed"/"shutter"/"maximum" are candidates; output keeps 3 tokens.
            assert_eq!(out.split(' ').count(), 3);
        }
        assert!(saw_shorter);
    }

    #[test]
    fn abbreviation_skips_short_words() {
        let mut r = rng(5);
        assert_eq!(abbreviate_word("iso mp", &mut r), "iso mp");
    }

    #[test]
    fn token_dropout_reduces_word_count() {
        let mut r = rng(6);
        let out = drop_token("a b c", &mut r);
        assert_eq!(out.split(' ').count(), 2);
        assert_eq!(drop_token("single", &mut r), "single");
    }

    #[test]
    fn case_jitter_changes_case_only() {
        let mut r = rng(7);
        for _ in 0..10 {
            let out = jitter_case("white balance", &mut r);
            assert_eq!(out.to_lowercase(), "white balance");
        }
    }

    #[test]
    fn decorate_appends_suffix() {
        let mut r = rng(8);
        let out = decorate("zoom", &mut r);
        assert!(out.starts_with("zoom") && out.len() > 4, "{out}");
    }

    #[test]
    fn heavy_noise_often_alters() {
        let cfg = NoiseConfig::heavy();
        let mut r = rng(9);
        let altered = (0..200)
            .filter(|_| cfg.apply("optical zoom range", &mut r) != "optical zoom range")
            .count();
        assert!(altered > 60, "heavy noise altered only {altered}/200");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NoiseConfig::heavy();
        let a = cfg.apply("sensor size", &mut rng(10));
        let b = cfg.apply("sensor size", &mut rng(10));
        assert_eq!(a, b);
    }
}
