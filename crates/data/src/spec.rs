//! Domain specifications and the dataset generation engine.
//!
//! A [`DomainSpec`] describes a product domain the way the paper's
//! reference ontologies do: a list of reference properties, each with the
//! synonym names sources use for it, a typed value distribution, and
//! context words (used by the corpus generator). [`generate_dataset`]
//! expands a spec into a concrete multi-source [`Dataset`]: every source
//! gets a naming style, a value-rendering style, a subset of the ontology
//! under source-specific names, optional extra unaligned ("junk")
//! properties, and per-entity instance values.

use crate::model::{Dataset, Instance, PropertyKey, SourceId};
use crate::noise::NoiseConfig;
use crate::value::{SourceStyle, ValueSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One reference property of a domain ontology.
#[derive(Debug, Clone)]
pub struct RefProperty {
    /// Reference (canonical) name, e.g. `"resolution"`.
    pub canonical: String,
    /// Name variants used across sources (the canonical name may or may
    /// not be among them).
    pub synonyms: Vec<String>,
    /// Context words for corpus generation (semantically related terms).
    pub context: Vec<String>,
    /// Distribution of the property's instance values.
    pub value: ValueSpec,
    /// Probability that a given source carries this property.
    pub prevalence: f64,
}

/// A product-domain ontology plus generation vocabulary.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Domain name (`"cameras"`, …).
    pub name: String,
    /// Words naming the product itself (corpus generation).
    pub product_words: Vec<String>,
    /// The reference properties.
    pub properties: Vec<RefProperty>,
    /// Pool of unaligned property names sources may additionally carry.
    pub junk_names: Vec<String>,
}

/// How many entities each source holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityCount {
    /// Every source has exactly `n` entities (the paper's balanced camera
    /// setting: 100 per source).
    Balanced(usize),
    /// Each source draws uniformly from `[min, max]` (the imbalanced WDC
    /// setting).
    Imbalanced {
        /// Minimum entities per source.
        min: usize,
        /// Maximum entities per source.
        max: usize,
    },
}

/// Generation parameters independent of the ontology.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of sources.
    pub n_sources: usize,
    /// Entities per source.
    pub entities: EntityCount,
    /// Noise applied to property names.
    pub name_noise: NoiseConfig,
    /// Noise applied to instance values (typically lighter).
    pub value_noise: NoiseConfig,
    /// Probability an entity is missing a value for a property it has.
    pub missing_value_rate: f64,
    /// Range (inclusive) of unaligned junk properties per source.
    pub junk_per_source: (usize, usize),
    /// Probability a source carries a *second* differently named property
    /// aligned to the same reference property.
    pub duplicate_variant_prob: f64,
}

/// Naming convention a source applies to its property names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingStyle {
    /// `camera resolution`
    SpaceLower,
    /// `Camera Resolution`
    TitleSpace,
    /// `cameraResolution`
    CamelCase,
    /// `camera_resolution`
    SnakeCase,
    /// `camera-resolution`
    KebabCase,
    /// `CAMERA RESOLUTION`
    UpperSpace,
}

impl NamingStyle {
    /// All styles, for sampling.
    pub const ALL: [NamingStyle; 6] = [
        NamingStyle::SpaceLower,
        NamingStyle::TitleSpace,
        NamingStyle::CamelCase,
        NamingStyle::SnakeCase,
        NamingStyle::KebabCase,
        NamingStyle::UpperSpace,
    ];

    /// Render a lowercase space-separated name in this style.
    pub fn apply(self, name: &str) -> String {
        let words: Vec<&str> = name.split(' ').filter(|w| !w.is_empty()).collect();
        match self {
            NamingStyle::SpaceLower => words.join(" "),
            NamingStyle::TitleSpace => words
                .iter()
                .map(|w| capitalize(w))
                .collect::<Vec<_>>()
                .join(" "),
            NamingStyle::CamelCase => {
                let mut out = String::new();
                for (i, w) in words.iter().enumerate() {
                    if i == 0 {
                        out.push_str(&w.to_lowercase());
                    } else {
                        out.push_str(&capitalize(w));
                    }
                }
                out
            }
            NamingStyle::SnakeCase => words.join("_"),
            NamingStyle::KebabCase => words.join("-"),
            NamingStyle::UpperSpace => words.join(" ").to_uppercase(),
        }
    }
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(first) => first.to_uppercase().chain(c).collect(),
        None => String::new(),
    }
}

/// Expand a domain spec into a concrete dataset. Deterministic given
/// `seed`.
///
/// # Panics
///
/// Panics if the spec has no properties or the config has zero sources
/// (domain specs are static data; misuse is a programming error).
pub fn generate_dataset(spec: &DomainSpec, cfg: &GeneratorConfig, seed: u64) -> Dataset {
    assert!(!spec.properties.is_empty(), "spec has no properties");
    assert!(cfg.n_sources >= 2, "need at least two sources");
    let mut rng = StdRng::seed_from_u64(seed);

    let source_names: Vec<String> = (0..cfg.n_sources)
        .map(|i| format!("{}-src{:02}", spec.name, i))
        .collect();

    let mut instances: Vec<Instance> = Vec::new();
    let mut alignment: BTreeMap<PropertyKey, String> = BTreeMap::new();

    for sid in 0..cfg.n_sources {
        let source = SourceId(sid as u16);
        let style = *NamingStyle::ALL.choose(&mut rng).expect("non-empty");
        let value_style = SourceStyle::sample(&mut rng);
        let n_entities = match cfg.entities {
            EntityCount::Balanced(n) => n,
            EntityCount::Imbalanced { min, max } => rng.gen_range(min..=max.max(min)),
        };

        // ---- choose the source's properties ----
        // (property name, value spec, aligned reference or None)
        let mut props: Vec<(String, &ValueSpec, Option<String>)> = Vec::new();
        let mut used_names: std::collections::BTreeSet<String> = Default::default();

        for rp in &spec.properties {
            if !rng.gen_bool(rp.prevalence.clamp(0.0, 1.0)) {
                continue;
            }
            // Synonym popularity is Zipf-like: most sources copy the
            // manufacturer's spec-sheet wording, a minority uses rarer
            // variants. (Uniform choice would make lexically trivial
            // matches far rarer than in the paper's real datasets, where
            // exact-name matchers reach 35-60% recall.)
            let primary = weighted_synonym_index(rp.synonyms.len(), &mut rng);
            let mut chosen: Vec<&String> = vec![&rp.synonyms[primary]];
            if rng.gen_bool(cfg.duplicate_variant_prob.clamp(0.0, 1.0)) && rp.synonyms.len() > 1 {
                let mut second = rng.gen_range(0..rp.synonyms.len() - 1);
                if second >= primary {
                    second += 1;
                }
                chosen.push(&rp.synonyms[second]);
            }
            for syn in chosen {
                let noisy = cfg.name_noise.apply(syn, &mut rng);
                let name = style.apply(&noisy);
                if name.is_empty() || !used_names.insert(name.clone()) {
                    continue;
                }
                props.push((name, &rp.value, Some(rp.canonical.clone())));
            }
        }

        // ---- junk properties ----
        // Two kinds, mirroring real gold standards:
        //  * shared-pool names ("sku", "availability", …) recur across
        //    sources *with the same meaning*, so annotators would align
        //    them — they become self-aligned reference properties
        //    (`junk:<name>`), i.e. easy cross-source matches;
        //  * composed names are source-idiosyncratic leftovers and stay
        //    unaligned (they match nothing).
        let (jmin, jmax) = cfg.junk_per_source;
        let n_junk = rng.gen_range(jmin..=jmax.max(jmin));
        for _ in 0..n_junk {
            let (raw, reference) = if rng.gen_bool(0.15) && !spec.junk_names.is_empty() {
                let n = spec.junk_names.choose(&mut rng).expect("non-empty").clone();
                let r = format!("junk:{n}");
                (n, Some(r))
            } else {
                (compose_junk_name(&mut rng), None)
            };
            let name = style.apply(&raw);
            if name.is_empty() || !used_names.insert(name.clone()) {
                continue;
            }
            props.push((name, junk_value_spec(&raw), reference));
        }

        // ---- alignment bookkeeping ----
        for (name, _, reference) in &props {
            if let Some(r) = reference {
                alignment.insert(PropertyKey::new(source, name.clone()), r.clone());
            }
        }

        // ---- entities and instance values ----
        for e in 0..n_entities {
            let entity = format!("s{sid:02}e{e:04}");
            for (name, vspec, _) in &props {
                if rng.gen_bool(cfg.missing_value_rate.clamp(0.0, 1.0)) {
                    continue;
                }
                let raw = vspec.generate(value_style, &mut rng);
                let value = cfg.value_noise.apply(&raw, &mut rng);
                instances.push(Instance {
                    source,
                    property: name.clone(),
                    entity: entity.clone(),
                    value,
                });
            }
        }
    }

    Dataset::new(spec.name.clone(), source_names, instances, alignment)
        .expect("generator emits consistent source ids")
}

/// Zipf-weighted synonym index: weight of synonym `i` ∝ `1/(i+1)^2`, so
/// roughly two thirds of sources use the head synonym. Calibrated against
/// the paper's exact-lexical baseline recalls (AML reaches ~0.6 recall on
/// cameras, so most matching pairs must share near-identical names).
fn weighted_synonym_index(len: usize, rng: &mut StdRng) -> usize {
    debug_assert!(len > 0);
    let weights: Vec<f64> = (0..len).map(|i| 1.0 / ((i + 1) as f64).powf(2.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    len - 1
}

/// First half of composed junk property names.
pub const JUNK_BASES: [&str; 10] = [
    "internal", "listing", "page", "vendor", "feed", "shop", "catalog", "legacy", "import",
    "meta",
];

/// Second half of composed junk property names.
pub const JUNK_TAILS: [&str; 10] = [
    "id", "code", "ref", "key", "tag", "field", "index", "token", "note", "slot",
];

/// Optional third word of composed junk property names.
pub const JUNK_EXTRAS: [&str; 12] = [
    "alpha", "beta", "main", "aux", "old", "raw", "ext", "sys", "tmp", "src", "alt", "org",
];

/// Compose a source-idiosyncratic junk property name: base + tail from
/// the pools, usually with a numeric suffix ("feed tag 17"), so that
/// cross-source name collisions among *unaligned* properties are rare —
/// in real gold standards, recurring identically named properties get
/// aligned, they are not left as impossible negatives.
fn compose_junk_name(rng: &mut StdRng) -> String {
    let base = JUNK_BASES.choose(rng).expect("non-empty");
    let tail = JUNK_TAILS.choose(rng).expect("non-empty");
    if rng.gen_bool(0.6) {
        // A third word multiplies the name space to ~1200 combinations;
        // the pool is part of the embedded junk vocabulary, so the name
        // stays fully in-vocabulary (numeric suffixes would dilute the
        // average embedding toward zero).
        let extra = JUNK_EXTRAS.choose(rng).expect("non-empty");
        format!("{base} {tail} {extra}")
    } else {
        format!("{base} {tail}")
    }
}

/// Every word that can appear in a generated property name *without*
/// being ontology vocabulary: junk-name tokens (shared pool and composed
/// pools) and the decoration words the noise model appends. The corpus
/// generator embeds these so that, like the paper's huge pre-trained
/// vocabulary, they have non-zero and mutually distinct vectors — two
/// all-OOV names would otherwise both map to the zero vector and look
/// embedding-identical.
pub fn junk_vocabulary(spec: &DomainSpec) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for name in &spec.junk_names {
        words.extend(name.split(' ').map(str::to_string));
    }
    words.extend(JUNK_BASES.iter().map(|s| s.to_string()));
    words.extend(JUNK_TAILS.iter().map(|s| s.to_string()));
    words.extend(JUNK_EXTRAS.iter().map(|s| s.to_string()));
    words.extend(
        crate::noise::DECORATION_WORDS
            .iter()
            .map(|s| s.to_string()),
    );
    words.sort();
    words.dedup();
    words
}

/// A stable value spec for a junk property, derived from its name so the
/// same junk name renders consistently across sources.
fn junk_value_spec(name: &str) -> &'static ValueSpec {
    use std::sync::OnceLock;
    static SPECS: OnceLock<Vec<ValueSpec>> = OnceLock::new();
    let specs = SPECS.get_or_init(|| {
        vec![
            ValueSpec::ModelCode {
                prefixes: vec!["SKU".into(), "ID".into(), "REF".into()],
            },
            ValueSpec::integer(1, 99999, &[("", 1.0)]),
            ValueSpec::free_text(
                &[
                    "new", "stock", "limited", "offer", "bundle", "deal", "ships", "fast",
                    "standard", "info",
                ],
                1,
                3,
            ),
        ]
    });
    // FNV-1a hash for stability across runs (no RandomState).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    &specs[(h % specs.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DomainSpec {
        DomainSpec {
            name: "widgets".into(),
            product_words: vec!["widget".into()],
            properties: vec![
                RefProperty {
                    canonical: "resolution".into(),
                    synonyms: vec![
                        "resolution".into(),
                        "megapixels".into(),
                        "effective pixels".into(),
                    ],
                    context: vec!["image".into(), "sensor".into()],
                    value: ValueSpec::numeric(8.0, 60.0, 1, &[(" MP", 1.0)]),
                    prevalence: 1.0,
                },
                RefProperty {
                    canonical: "weight".into(),
                    synonyms: vec!["weight".into(), "item weight".into()],
                    context: vec!["grams".into()],
                    value: ValueSpec::numeric(100.0, 900.0, 0, &[(" g", 1.0), (" kg", 0.001)]),
                    prevalence: 1.0,
                },
            ],
            junk_names: vec!["sku".into(), "listing id".into(), "availability".into()],
        }
    }

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            n_sources: 4,
            entities: EntityCount::Balanced(10),
            name_noise: NoiseConfig::clean(),
            value_noise: NoiseConfig::clean(),
            missing_value_rate: 0.1,
            junk_per_source: (1, 2),
            duplicate_variant_prob: 0.2,
        }
    }

    #[test]
    fn naming_styles() {
        let n = "camera resolution";
        assert_eq!(NamingStyle::SpaceLower.apply(n), "camera resolution");
        assert_eq!(NamingStyle::TitleSpace.apply(n), "Camera Resolution");
        assert_eq!(NamingStyle::CamelCase.apply(n), "cameraResolution");
        assert_eq!(NamingStyle::SnakeCase.apply(n), "camera_resolution");
        assert_eq!(NamingStyle::KebabCase.apply(n), "camera-resolution");
        assert_eq!(NamingStyle::UpperSpace.apply(n), "CAMERA RESOLUTION");
    }

    #[test]
    fn generates_expected_shape() {
        let ds = generate_dataset(&tiny_spec(), &cfg(), 1);
        let stats = ds.stats();
        assert_eq!(stats.sources, 4);
        // Both ref properties have prevalence 1.0 → ≥ 2 aligned props per source.
        assert!(stats.aligned_properties >= 8, "{stats:?}");
        assert!(stats.matching_pairs >= 6, "{stats:?}");
        assert!(stats.instances > 100, "{stats:?}");
        assert_eq!(stats.entities, 40);
    }

    #[test]
    fn alignment_only_to_known_references() {
        let ds = generate_dataset(&tiny_spec(), &cfg(), 2);
        for p in ds.properties() {
            if let Some(r) = ds.alignment_of(&p) {
                assert!(
                    r == "resolution" || r == "weight" || r.starts_with("junk:"),
                    "unexpected ref {r}"
                );
            }
        }
    }

    #[test]
    fn shared_junk_is_self_aligned() {
        // With enough sources, shared-pool junk names recur and must be
        // aligned to a junk: reference, so identical recurring properties
        // are matches (as annotators would label them).
        let mut c = cfg();
        c.n_sources = 12;
        c.junk_per_source = (4, 6);
        let ds = generate_dataset(&tiny_spec(), &c, 9);
        let junk_aligned = ds
            .properties()
            .iter()
            .filter(|p| {
                ds.alignment_of(p)
                    .map(|r| r.starts_with("junk:"))
                    .unwrap_or(false)
            })
            .count();
        assert!(junk_aligned > 0, "expected some self-aligned junk");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_dataset(&tiny_spec(), &cfg(), 3);
        let b = generate_dataset(&tiny_spec(), &cfg(), 3);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dataset(&tiny_spec(), &cfg(), 4);
        let b = generate_dataset(&tiny_spec(), &cfg(), 5);
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn imbalanced_entity_counts_vary() {
        let mut c = cfg();
        c.n_sources = 8;
        c.entities = EntityCount::Imbalanced { min: 2, max: 50 };
        let ds = generate_dataset(&tiny_spec(), &c, 6);
        // Count entities per source.
        let mut per_source: std::collections::HashMap<u16, std::collections::HashSet<&str>> =
            Default::default();
        for i in ds.instances() {
            per_source
                .entry(i.source.0)
                .or_default()
                .insert(i.entity.as_str());
        }
        let counts: Vec<usize> = per_source.values().map(|s| s.len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "expected imbalance, got {counts:?}");
    }

    #[test]
    fn missing_values_thin_instances() {
        let mut dense = cfg();
        dense.missing_value_rate = 0.0;
        let mut sparse = cfg();
        sparse.missing_value_rate = 0.8;
        let d = generate_dataset(&tiny_spec(), &dense, 7);
        let s = generate_dataset(&tiny_spec(), &sparse, 7);
        assert!(s.stats().instances < d.stats().instances / 2);
    }

    #[test]
    fn junk_value_spec_is_stable() {
        let a = junk_value_spec("sku") as *const _;
        let b = junk_value_spec("sku") as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn property_names_unique_within_source() {
        let ds = generate_dataset(&tiny_spec(), &cfg(), 8);
        for sid in 0..4u16 {
            let schema = ds.schema_of(SourceId(sid));
            let set: std::collections::HashSet<&String> = schema.iter().collect();
            assert_eq!(set.len(), schema.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least two sources")]
    fn rejects_single_source() {
        let mut c = cfg();
        c.n_sources = 1;
        generate_dataset(&tiny_spec(), &c, 0);
    }
}
