//! Stress-scale dataset generator: 100k–1M properties across thousands
//! of sources.
//!
//! The four paper domains ([`crate::domains`]) top out around a thousand
//! properties — enough to validate quality, far too small to exercise
//! sublinear candidate generation. This module generates datasets whose
//! *shape* matches the paper's setting (many sources, each aligning a
//! modest schema to a shared reference ontology) at whatever scale the
//! index layer needs, in O(properties) time and memory:
//!
//! * a reference ontology of `ontology_size` properties, each named by a
//!   unique pair of pseudo-words plus a flavor word (pseudo-words are
//!   purely alphabetic so every [`NamingStyle`] tokenizes back to the
//!   same word set);
//! * each source carries `properties_per_source` distinct reference
//!   properties chosen by a per-source affine stride over the prime-sized
//!   ontology (distinctness within a source is guaranteed, and each
//!   reference property lands in ~`cluster_size` sources on average);
//! * per-occurrence name variation (word dropout, modifier words, one of
//!   six naming styles per source) so cluster members are near- but not
//!   exact-duplicates — the regime ANN retrieval has to survive;
//! * typed instance values (numeric-with-unit or categorical) so the
//!   instance-feature path has real work to do.
//!
//! Everything derives from splitmix64 draws keyed on `(seed, source,
//! ref)` — the same dataset is reproduced bit-for-bit at any scale, with
//! no RNG state threaded through the loops.

use crate::model::{Dataset, Instance, PropertyKey, SourceId};
use crate::spec::NamingStyle;
use std::collections::BTreeMap;

/// Shape of a stress-scale dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Total number of (source, name) properties to generate.
    pub properties: usize,
    /// Properties carried by each source (the last source takes the
    /// remainder).
    pub properties_per_source: usize,
    /// Average number of sources a reference property appears in — the
    /// expected ground-truth cluster size.
    pub cluster_size: usize,
    /// Instances per property (kept small: stress runs exercise the
    /// retrieval layer, not the value aggregator).
    pub instances_per_property: usize,
    /// Master seed.
    pub seed: u64,
}

impl StressConfig {
    /// Config for `properties` total properties with the default shape:
    /// 50 properties per source, expected cluster size 8, one instance
    /// per property.
    pub fn new(properties: usize, seed: u64) -> Self {
        StressConfig {
            properties,
            properties_per_source: 50,
            cluster_size: 8,
            instances_per_property: 1,
            seed,
        }
    }

    /// Number of sources the dataset will have.
    pub fn n_sources(&self) -> usize {
        self.properties.div_ceil(self.properties_per_source)
    }

    /// Size of the reference ontology: smallest prime ≥
    /// `properties / cluster_size`, floored at `properties_per_source`
    /// so the per-source affine stride can always pick distinct
    /// references (small configs get smaller clusters as a result).
    pub fn ontology_size(&self) -> usize {
        next_prime(
            (self.properties / self.cluster_size.max(1))
                .max(self.properties_per_source)
                .max(2),
        )
    }
}

/// Number of base pseudo-words. Prime, so any multiplier is a valid
/// affine-permutation coefficient mod `VOCAB`.
const VOCAB: usize = 911;
/// Modifier words occasionally appended to an occurrence's name.
const MODIFIERS: usize = 32;
/// Unit words for numeric values.
const UNITS: usize = 8;
/// Categorical value vocabulary.
const CATEGORIES: usize = 16;

/// Syllables for pseudo-word construction — purely alphabetic so the
/// tokenizer in `leapme-embedding` round-trips every naming style to the
/// same lowercase words.
const SYLLABLES: [&str; 24] = [
    "ka", "ro", "mi", "ta", "lu", "ve", "so", "ni", "pa", "de", "gu", "fi", "zo", "ba",
    "re", "ki", "mo", "sa", "tu", "le", "vo", "na", "pi", "da",
];

/// The `i`-th pseudo-word: three base-24 syllable digits, unique for
/// `i < 24³ = 13824`.
pub(crate) fn word(i: usize) -> String {
    debug_assert!(i < 24 * 24 * 24);
    let mut s = String::with_capacity(6);
    s.push_str(SYLLABLES[i % 24]);
    s.push_str(SYLLABLES[(i / 24) % 24]);
    s.push_str(SYLLABLES[i / (24 * 24)]);
    s
}

fn base_word(i: usize) -> String {
    word(i)
}

pub(crate) fn modifier_word(i: usize) -> String {
    word(VOCAB + i % MODIFIERS)
}

pub(crate) fn unit_word(i: usize) -> String {
    word(VOCAB + MODIFIERS + i % UNITS)
}

pub(crate) fn category_word(i: usize) -> String {
    word(VOCAB + MODIFIERS + UNITS + i % CATEGORIES)
}

/// splitmix64 — the repo's stateless deterministic draw (same finalizer
/// as `leapme-faults`).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic draw keyed on the seed plus two stream coordinates.
pub(crate) fn draw(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a.wrapping_mul(0x9E3779B97F4A7C15) ^ splitmix64(b)))
}

/// Smallest prime ≥ `n` (trial division; ontology sizes are ≤ ~10⁶).
fn next_prime(n: usize) -> usize {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c += 1;
    }
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Space-separated lowercase words of reference property `r`.
///
/// The first two words are per-digit affine permutations of `r`'s base-
/// `VOCAB` digits — a bijection, so no two reference properties share
/// both words and clusters never merge geometrically. The third "flavor"
/// word is a free hash draw (collisions across references are harmless).
pub(crate) fn ref_words(cfg: &StressConfig, r: usize) -> [String; 3] {
    // Draw streams 1 and 2 feed the affine coefficients; stream 3 the
    // flavor word.
    let perm = |digit: usize, d: u64| -> usize {
        let a = 1 + (draw(cfg.seed, 1, d) as usize) % (VOCAB - 1);
        let b = (draw(cfg.seed, 2, d) as usize) % VOCAB;
        (a * digit + b) % VOCAB
    };
    let w1 = perm(r % VOCAB, 0);
    let w2 = perm((r / VOCAB) % VOCAB, 1);
    let w3 = (draw(cfg.seed, 3, r as u64) as usize) % VOCAB;
    [base_word(w1), base_word(w2), base_word(w3)]
}

/// Render the occurrence-level name of reference `r` as seen by source
/// `s`: base words with deterministic dropout/modifier variation, in the
/// source's naming style.
pub(crate) fn occurrence_name(cfg: &StressConfig, r: usize, s: usize) -> String {
    let words = ref_words(cfg, r);
    let u = draw(cfg.seed, 4, (r as u64) << 20 | s as u64);
    let mut name = String::new();
    name.push_str(&words[0]);
    name.push(' ');
    name.push_str(&words[1]);
    match u % 4 {
        // Drop the flavor word.
        0 => {}
        // Append a modifier after the full base name.
        1 => {
            name.push(' ');
            name.push_str(&words[2]);
            name.push(' ');
            name.push_str(&modifier_word((u >> 8) as usize));
        }
        _ => {
            name.push(' ');
            name.push_str(&words[2]);
        }
    }
    let style = NamingStyle::ALL[draw(cfg.seed, 5, s as u64) as usize % NamingStyle::ALL.len()];
    style.apply(&name)
}

/// Instance value `j` of reference property `r`: numeric-with-unit or
/// categorical, decided per reference.
pub(crate) fn instance_value(cfg: &StressConfig, r: usize, j: usize) -> String {
    let h = draw(cfg.seed, 6, r as u64);
    if h.is_multiple_of(2) {
        let base = 1 + (h >> 8) % 1000;
        format!("{} {}", base + j as u64, unit_word((h >> 24) as usize))
    } else {
        category_word(((h >> 8) as usize).wrapping_add(j))
    }
}

/// Reference property carried at slot `j` of source `s`: affine stride
/// over the prime-sized ontology — distinct within a source for
/// `j < ontology`.
pub(crate) fn ref_at(cfg: &StressConfig, ontology: usize, s: usize, j: usize) -> usize {
    let offset = (draw(cfg.seed, 7, s as u64) as usize) % ontology;
    let stride = 1 + (draw(cfg.seed, 8, s as u64) as usize) % (ontology - 1);
    (offset + j * stride) % ontology
}

/// Every word any stress name or value can contain, sorted and distinct
/// — the vocabulary an embedding store for this dataset must cover.
pub fn stress_vocabulary(_cfg: &StressConfig) -> Vec<String> {
    let mut words: Vec<String> = (0..VOCAB + MODIFIERS + UNITS + CATEGORIES).map(word).collect();
    words.sort();
    words.dedup();
    words
}

/// Tokenized training corpus for the stress vocabulary: for every
/// reference property, `sentences_per_ref` sentences embedding its base
/// words in shared contexts (plus its unit/category value words), so
/// GloVe training in `leapme-embedding` can recover the same
/// synonyms-cluster geometry the hash-derived stress store assumes.
/// Exposed through [`crate::corpus::generate_stress_corpus`].
pub(crate) fn stress_corpus(cfg: &StressConfig, sentences_per_ref: usize) -> Vec<Vec<String>> {
    let ontology = cfg.ontology_size();
    let mut sentences = Vec::with_capacity(ontology * sentences_per_ref);
    for r in 0..ontology {
        let words = ref_words(cfg, r);
        let h = draw(cfg.seed, 6, r as u64);
        for k in 0..sentences_per_ref {
            let u = draw(cfg.seed, 9, ((r as u64) << 8) | k as u64);
            let mut s = vec![words[0].clone(), words[1].clone(), words[2].clone()];
            if u.is_multiple_of(3) {
                s.push(modifier_word((u >> 8) as usize));
            }
            // Anchor the value vocabulary in the same context.
            if h.is_multiple_of(2) {
                s.push(unit_word((h >> 24) as usize));
            } else {
                s.push(category_word((h >> 8) as usize));
            }
            sentences.push(s);
        }
    }
    sentences
}

/// Generate a stress-scale dataset. Deterministic given the config;
/// O(properties) time and memory.
///
/// # Panics
///
/// Panics if the config asks for zero properties, more sources than
/// `SourceId` can address (u16), or more properties per source than the
/// ontology holds.
pub fn generate_stress_dataset(cfg: &StressConfig) -> Dataset {
    assert!(cfg.properties > 0, "stress config needs properties > 0");
    assert!(
        cfg.properties_per_source > 0,
        "stress config needs properties_per_source > 0"
    );
    let n_sources = cfg.n_sources();
    assert!(
        n_sources <= u16::MAX as usize,
        "stress config needs ≤ {} sources, got {n_sources}",
        u16::MAX
    );
    let ontology = cfg.ontology_size();
    assert!(
        cfg.properties_per_source <= ontology,
        "properties_per_source ({}) exceeds ontology size ({ontology})",
        cfg.properties_per_source
    );

    let mut sources = Vec::with_capacity(n_sources);
    let mut instances =
        Vec::with_capacity(cfg.properties * cfg.instances_per_property.max(1));
    let mut alignment: BTreeMap<PropertyKey, String> = BTreeMap::new();

    let mut remaining = cfg.properties;
    for s in 0..n_sources {
        sources.push(format!("stress-src-{s:05}"));
        let sid = SourceId(s as u16);
        let here = remaining.min(cfg.properties_per_source);
        remaining -= here;
        for j in 0..here {
            let r = ref_at(cfg, ontology, s, j);
            let name = occurrence_name(cfg, r, s);
            alignment.insert(PropertyKey::new(sid, name.clone()), format!("ref{r:06}"));
            for e in 0..cfg.instances_per_property.max(1) {
                instances.push(Instance {
                    source: sid,
                    property: name.clone(),
                    entity: format!("e{e}"),
                    value: instance_value(cfg, r, e),
                });
            }
        }
    }

    Dataset::new(
        format!("stress-{}", cfg.properties),
        sources,
        instances,
        alignment,
    )
    .expect("stress generator emits only known sources")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_exactly_sized() {
        let cfg = StressConfig::new(500, 7);
        let a = generate_stress_dataset(&cfg);
        let b = generate_stress_dataset(&cfg);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.properties().len(), 500);
        assert_eq!(a.sources().len(), cfg.n_sources());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_stress_dataset(&StressConfig::new(200, 1));
        let b = generate_stress_dataset(&StressConfig::new(200, 2));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn every_property_is_aligned_and_clustered() {
        let cfg = StressConfig::new(1000, 42);
        let ds = generate_stress_dataset(&cfg);
        let props = ds.properties();
        assert!(props.iter().all(|p| ds.alignment_of(p).is_some()));
        // Ground truth exists and average cluster size is near the target.
        let gt = ds.ground_truth_pairs();
        assert!(!gt.is_empty());
        let stats = ds.stats();
        let avg_pairs_per_ref = gt.len() as f64 / cfg.ontology_size() as f64;
        // cluster_size c gives ~c(c−1)/2 pairs per reference; allow slack
        // for the balls-into-bins spread.
        let expect = (cfg.cluster_size * (cfg.cluster_size - 1) / 2) as f64;
        assert!(
            avg_pairs_per_ref > 0.3 * expect && avg_pairs_per_ref < 3.0 * expect,
            "avg {avg_pairs_per_ref} vs expected ~{expect} ({stats:?})"
        );
    }

    #[test]
    fn names_tokenize_into_stress_vocabulary() {
        let cfg = StressConfig::new(300, 9);
        let vocab = stress_vocabulary(&cfg);
        let ds = generate_stress_dataset(&cfg);
        for p in ds.properties() {
            // Styles may camel-case or capitalize; lowercase and split on
            // the separators the styles introduce.
            let lower = p.name.to_lowercase();
            for w in lower.split(|c: char| !c.is_ascii_alphabetic()) {
                if w.is_empty() {
                    continue;
                }
                // CamelCase renders word boundaries invisibly; those names
                // lowercase to concatenations of vocab words. Accept any
                // segment that is a concatenation of vocabulary words.
                assert!(
                    is_vocab_concat(w, &vocab),
                    "token {w:?} from name {:?} not covered by vocabulary",
                    p.name
                );
            }
        }
    }

    fn is_vocab_concat(s: &str, vocab: &[String]) -> bool {
        if s.is_empty() {
            return true;
        }
        // Pseudo-words are exactly 6 ASCII chars (3 syllables × 2).
        if !s.len().is_multiple_of(6) {
            return false;
        }
        s.as_bytes()
            .chunks(6)
            .all(|c| vocab.binary_search_by(|v| v.as_str().cmp(std::str::from_utf8(c).unwrap())).is_ok())
    }

    #[test]
    fn pair_space_is_quadratic_but_counted_linearly() {
        let cfg = StressConfig::new(2000, 3);
        let ds = generate_stress_dataset(&cfg);
        let all: Vec<SourceId> = (0..ds.sources().len() as u16).map(SourceId).collect();
        let count = ds.cross_source_pair_count(&all);
        // 2000 properties, 50 per source: (2000² − 40·50²)/2.
        assert_eq!(count, (2000 * 2000 - 40 * 50 * 50) / 2);
    }
}
