//! Typed synthetic value generators.
//!
//! Real product-spec values mix numbers, units, enumerations and free
//! text, and the *same* reference property is rendered differently across
//! sources ("20.1 MP" vs "20 megapixels" vs "20100000 pixels"). A
//! [`ValueSpec`] describes the value distribution of one reference
//! property; [`ValueSpec::generate`] renders a concrete string for one
//! entity, with per-source unit choice so sources are internally
//! consistent but mutually heterogeneous.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A unit rendering for a numeric value: suffix text plus the factor that
/// converts the canonical quantity into this unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    /// Text appended after the number (e.g. `" MP"`, `"mm"`, `" grams"`).
    pub suffix: String,
    /// Multiplier applied to the canonical quantity before rendering.
    pub factor: f64,
}

impl Unit {
    /// Convenience constructor.
    pub fn new(suffix: &str, factor: f64) -> Self {
        Unit {
            suffix: suffix.to_string(),
            factor,
        }
    }
}

/// Distribution of the values of one reference property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValueSpec {
    /// A real-valued quantity with alternative unit renderings.
    Numeric {
        /// Inclusive canonical-quantity range.
        min: f64,
        /// Inclusive canonical-quantity range.
        max: f64,
        /// Decimal places in the rendering.
        decimals: u8,
        /// Alternative units; a source picks one and sticks with it.
        units: Vec<Unit>,
    },
    /// An integer quantity with alternative unit renderings.
    Integer {
        /// Inclusive range.
        min: i64,
        /// Inclusive range.
        max: i64,
        /// Alternative units.
        units: Vec<Unit>,
    },
    /// One of a closed vocabulary of strings.
    Categorical {
        /// The vocabulary.
        options: Vec<String>,
    },
    /// `W x H` or `W x H x D` physical dimensions.
    Dimensions {
        /// Inclusive per-axis range (canonical millimetres).
        min: f64,
        /// Inclusive per-axis range.
        max: f64,
        /// Number of axes (2 or 3).
        axes: u8,
    },
    /// A short free-text phrase assembled from a word pool.
    FreeText {
        /// Word pool.
        words: Vec<String>,
        /// Words per value (min).
        min_words: u8,
        /// Words per value (max).
        max_words: u8,
    },
    /// An opaque alphanumeric model/stock code like `DSC-RX100M7`.
    ModelCode {
        /// Prefix pool (brand-ish fragments).
        prefixes: Vec<String>,
    },
    /// A fraction such as a shutter speed `1/4000 s`.
    Fraction {
        /// Denominator range (inclusive).
        min_den: u32,
        /// Denominator range (inclusive).
        max_den: u32,
        /// Unit suffix (e.g. `" s"`).
        suffix: String,
    },
}

/// Per-source rendering context: which unit index a source picked for each
/// numeric spec, so a single source renders a property consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceStyle {
    /// Index into the spec's unit list (modulo its length).
    pub unit_choice: usize,
    /// Whether the source writes the unit suffix at all.
    pub write_units: bool,
}

impl SourceStyle {
    /// Sample a style for one source.
    pub fn sample(rng: &mut StdRng) -> Self {
        SourceStyle {
            unit_choice: rng.gen_range(0..16),
            write_units: rng.gen_bool(0.85),
        }
    }
}

impl ValueSpec {
    /// Helper: a numeric spec.
    pub fn numeric(min: f64, max: f64, decimals: u8, units: &[(&str, f64)]) -> Self {
        ValueSpec::Numeric {
            min,
            max,
            decimals,
            units: units.iter().map(|&(s, f)| Unit::new(s, f)).collect(),
        }
    }

    /// Helper: an integer spec.
    pub fn integer(min: i64, max: i64, units: &[(&str, f64)]) -> Self {
        ValueSpec::Integer {
            min,
            max,
            units: units.iter().map(|&(s, f)| Unit::new(s, f)).collect(),
        }
    }

    /// Helper: a categorical spec.
    pub fn categorical(options: &[&str]) -> Self {
        ValueSpec::Categorical {
            options: options.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Helper: a free-text spec.
    pub fn free_text(words: &[&str], min_words: u8, max_words: u8) -> Self {
        ValueSpec::FreeText {
            words: words.iter().map(|s| s.to_string()).collect(),
            min_words,
            max_words,
        }
    }

    /// Render one value under a source style.
    ///
    /// # Panics
    ///
    /// Panics if a range is inverted or an option pool is empty (domain
    /// specs are static data validated by tests).
    pub fn generate(&self, style: SourceStyle, rng: &mut StdRng) -> String {
        match self {
            ValueSpec::Numeric {
                min,
                max,
                decimals,
                units,
            } => {
                assert!(min <= max, "inverted numeric range");
                let q = rng.gen_range(*min..=*max);
                let unit = pick_unit(units, style);
                let rendered = q * unit.map(|u| u.factor).unwrap_or(1.0);
                let mut s = format!("{rendered:.prec$}", prec = *decimals as usize);
                if style.write_units {
                    if let Some(u) = unit {
                        s.push_str(&u.suffix);
                    }
                }
                s
            }
            ValueSpec::Integer { min, max, units } => {
                assert!(min <= max, "inverted integer range");
                let q = rng.gen_range(*min..=*max);
                let unit = pick_unit(units, style);
                let rendered = (q as f64 * unit.map(|u| u.factor).unwrap_or(1.0)).round() as i64;
                let mut s = rendered.to_string();
                if style.write_units {
                    if let Some(u) = unit {
                        s.push_str(&u.suffix);
                    }
                }
                s
            }
            ValueSpec::Categorical { options } => {
                assert!(!options.is_empty(), "empty categorical options");
                options.choose(rng).expect("non-empty").clone()
            }
            ValueSpec::Dimensions { min, max, axes } => {
                assert!(min <= max, "inverted dimension range");
                let n = (*axes).clamp(2, 3);
                let parts: Vec<String> = (0..n)
                    .map(|_| format!("{:.1}", rng.gen_range(*min..=*max)))
                    .collect();
                let sep = if style.unit_choice.is_multiple_of(2) { " x " } else { "x" };
                let mut s = parts.join(sep);
                if style.write_units {
                    s.push_str(" mm");
                }
                s
            }
            ValueSpec::FreeText {
                words,
                min_words,
                max_words,
            } => {
                assert!(!words.is_empty(), "empty word pool");
                assert!(min_words <= max_words, "inverted word count range");
                let n = rng.gen_range(*min_words..=*max_words).max(1);
                (0..n)
                    .map(|_| words.choose(rng).expect("non-empty").as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            }
            ValueSpec::ModelCode { prefixes } => {
                assert!(!prefixes.is_empty(), "empty prefix pool");
                let p = prefixes.choose(rng).expect("non-empty");
                let digits = rng.gen_range(100..9999);
                let tail: String = if rng.gen_bool(0.4) {
                    let c = (b'A' + rng.gen_range(0..26u8)) as char;
                    format!("{digits}{c}")
                } else {
                    digits.to_string()
                };
                format!("{p}-{tail}")
            }
            ValueSpec::Fraction {
                min_den,
                max_den,
                suffix,
            } => {
                assert!(min_den <= max_den, "inverted denominator range");
                let den = rng.gen_range(*min_den..=*max_den);
                if style.write_units {
                    format!("1/{den}{suffix}")
                } else {
                    format!("1/{den}")
                }
            }
        }
    }
}

fn pick_unit(units: &[Unit], style: SourceStyle) -> Option<&Unit> {
    if units.is_empty() {
        None
    } else {
        Some(&units[style.unit_choice % units.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn style(unit: usize, write: bool) -> SourceStyle {
        SourceStyle {
            unit_choice: unit,
            write_units: write,
        }
    }

    #[test]
    fn numeric_respects_unit_choice() {
        let spec = ValueSpec::numeric(10.0, 20.0, 1, &[(" MP", 1.0), (" megapixels", 1.0)]);
        let a = spec.generate(style(0, true), &mut rng());
        let b = spec.generate(style(1, true), &mut rng());
        assert!(a.ends_with(" MP"), "{a}");
        assert!(b.ends_with(" megapixels"), "{b}");
    }

    #[test]
    fn numeric_unit_factor_scales() {
        let spec = ValueSpec::numeric(1.0, 1.0, 0, &[("g", 1.0), ("kg", 0.001)]);
        let grams = spec.generate(style(0, true), &mut rng());
        let kilos = spec.generate(style(1, true), &mut rng());
        assert_eq!(grams, "1g");
        assert_eq!(kilos, "0kg");
    }

    #[test]
    fn write_units_false_omits_suffix() {
        let spec = ValueSpec::numeric(5.0, 5.0, 0, &[(" MP", 1.0)]);
        assert_eq!(spec.generate(style(0, false), &mut rng()), "5");
    }

    #[test]
    fn integer_in_range() {
        let spec = ValueSpec::integer(100, 200, &[("", 1.0)]);
        for _ in 0..50 {
            let v: i64 = spec
                .generate(style(0, false), &mut rng())
                .parse()
                .unwrap();
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn categorical_only_from_options() {
        let spec = ValueSpec::categorical(&["CMOS", "CCD"]);
        let mut r = rng();
        for _ in 0..20 {
            let v = spec.generate(style(0, true), &mut r);
            assert!(v == "CMOS" || v == "CCD");
        }
    }

    #[test]
    fn dimensions_axes_and_separator() {
        let spec = ValueSpec::Dimensions {
            min: 10.0,
            max: 20.0,
            axes: 3,
        };
        let spaced = spec.generate(style(0, true), &mut rng());
        assert_eq!(spaced.matches(" x ").count(), 2, "{spaced}");
        assert!(spaced.ends_with(" mm"));
        let tight = spec.generate(style(1, false), &mut rng());
        assert!(tight.contains('x') && !tight.contains(" x "), "{tight}");
    }

    #[test]
    fn free_text_word_count() {
        let spec = ValueSpec::free_text(&["fast", "hybrid", "autofocus"], 2, 4);
        let mut r = rng();
        for _ in 0..20 {
            let v = spec.generate(style(0, true), &mut r);
            let n = v.split(' ').count();
            assert!((2..=4).contains(&n), "{v}");
        }
    }

    #[test]
    fn model_code_shape() {
        let spec = ValueSpec::ModelCode {
            prefixes: vec!["DSC".into(), "EOS".into()],
        };
        let mut r = rng();
        for _ in 0..20 {
            let v = spec.generate(style(0, true), &mut r);
            assert!(v.starts_with("DSC-") || v.starts_with("EOS-"), "{v}");
        }
    }

    #[test]
    fn fraction_shape() {
        let spec = ValueSpec::Fraction {
            min_den: 1000,
            max_den: 8000,
            suffix: " s".into(),
        };
        let v = spec.generate(style(0, true), &mut rng());
        assert!(v.starts_with("1/") && v.ends_with(" s"), "{v}");
        let bare = spec.generate(style(0, false), &mut rng());
        assert!(bare.starts_with("1/") && !bare.ends_with('s'), "{bare}");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ValueSpec::numeric(0.0, 100.0, 2, &[(" u", 1.0)]);
        let a = spec.generate(style(0, true), &mut StdRng::seed_from_u64(5));
        let b = spec.generate(style(0, true), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn style_sampling_is_seeded() {
        let a = SourceStyle::sample(&mut StdRng::seed_from_u64(3));
        let b = SourceStyle::sample(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
