//! Windowed word co-occurrence counting with `1/d` distance weighting.
//!
//! GloVe's input is a sparse matrix `X` where `X[i][j]` accumulates, for
//! every occurrence of word `i`, a weight `1/d` for each word `j` appearing
//! `d` positions away within a symmetric window (Pennington et al. 2014).

use crate::vocab::Vocab;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sparse symmetric co-occurrence matrix over vocabulary ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CooccurrenceMatrix {
    /// `(i, j) → weight`, stored once per unordered pair with `i <= j`.
    cells: HashMap<(u32, u32), f64>,
}

impl CooccurrenceMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count co-occurrences over tokenized sentences with a symmetric
    /// window of `window` positions, weighting a pair at distance `d` by
    /// `1/d`. Tokens missing from `vocab` are skipped but still occupy a
    /// position (they contribute distance).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn from_sentences(vocab: &Vocab, sentences: &[Vec<String>], window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let mut m = CooccurrenceMatrix::new();
        for sentence in sentences {
            let ids: Vec<Option<u32>> = sentence.iter().map(|t| vocab.id(t)).collect();
            for (pos, &center) in ids.iter().enumerate() {
                let Some(ci) = center else { continue };
                let end = (pos + window + 1).min(ids.len());
                for (offset, &context) in ids[pos + 1..end].iter().enumerate() {
                    let Some(cj) = context else { continue };
                    let d = offset + 1;
                    m.add(ci, cj, 1.0 / d as f64);
                }
            }
        }
        m
    }

    /// Accumulate weight for the unordered pair `(i, j)`.
    pub fn add(&mut self, i: u32, j: u32, weight: f64) {
        let key = if i <= j { (i, j) } else { (j, i) };
        *self.cells.entry(key).or_insert(0.0) += weight;
    }

    /// Co-occurrence weight of the unordered pair `(i, j)`.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        let key = if i <= j { (i, j) } else { (j, i) };
        self.cells.get(&key).copied().unwrap_or(0.0)
    }

    /// Number of stored (non-zero) unordered pairs.
    pub fn nnz(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Maximum cell value (GloVe's `x_max` normalization reference).
    pub fn max_value(&self) -> f64 {
        self.cells.values().fold(0.0f64, |a, &v| a.max(v))
    }

    /// Iterate all `(i, j, weight)` entries with `i <= j`, in deterministic
    /// (sorted) order — important for reproducible training.
    pub fn iter_sorted(&self) -> Vec<(u32, u32, f64)> {
        let mut v: Vec<(u32, u32, f64)> = self
            .cells
            .iter()
            .map(|(&(i, j), &w)| (i, j, w))
            .collect();
        v.sort_by_key(|&(i, j, _)| (i, j));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn vocab_for(text: &[&str]) -> (Vocab, Vec<Vec<String>>) {
        let sents: Vec<Vec<String>> = text.iter().map(|s| tokenize(s)).collect();
        let v = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        (v, sents)
    }

    #[test]
    fn adjacent_words_weighted_one() {
        let (v, s) = vocab_for(&["alpha beta"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 5);
        let (a, b) = (v.id("alpha").unwrap(), v.id("beta").unwrap());
        assert_eq!(m.get(a, b), 1.0);
        assert_eq!(m.get(b, a), 1.0); // symmetric accessor
    }

    #[test]
    fn distance_weighting() {
        let (v, s) = vocab_for(&["alpha mid beta"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 5);
        let (a, b) = (v.id("alpha").unwrap(), v.id("beta").unwrap());
        assert!((m.get(a, b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_limits_reach() {
        let (v, s) = vocab_for(&["alpha x y z beta"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 2);
        let (a, b) = (v.id("alpha").unwrap(), v.id("beta").unwrap());
        assert_eq!(m.get(a, b), 0.0);
    }

    #[test]
    fn repeated_cooccurrence_accumulates() {
        let (v, s) = vocab_for(&["alpha beta", "alpha beta"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 5);
        let (a, b) = (v.id("alpha").unwrap(), v.id("beta").unwrap());
        assert_eq!(m.get(a, b), 2.0);
    }

    #[test]
    fn sentences_do_not_bleed() {
        let (v, s) = vocab_for(&["alpha", "beta"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 5);
        assert!(m.is_empty());
    }

    #[test]
    fn oov_tokens_keep_distance() {
        // vocab lacks "zzz" because min_count filter: build vocab from
        // restricted token set.
        let sents: Vec<Vec<String>> = vec![tokenize("alpha zzz beta")];
        let v = Vocab::build(["alpha", "beta"], 1);
        let m = CooccurrenceMatrix::from_sentences(&v, &sents, 5);
        let (a, b) = (v.id("alpha").unwrap(), v.id("beta").unwrap());
        // zzz occupies a slot → distance 2 → weight 0.5
        assert!((m.get(a, b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_sorted_is_deterministic_and_complete() {
        let (v, s) = vocab_for(&["a b c a b"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 3);
        let entries = m.iter_sorted();
        assert_eq!(entries.len(), m.nnz());
        for w in entries.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        let total: f64 = entries.iter().map(|e| e.2).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn max_value_tracks_largest_cell() {
        let mut m = CooccurrenceMatrix::new();
        m.add(0, 1, 2.0);
        m.add(1, 2, 5.0);
        m.add(0, 1, 1.0);
        assert_eq!(m.max_value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let (v, s) = vocab_for(&["a"]);
        CooccurrenceMatrix::from_sentences(&v, &s, 0);
    }

    #[test]
    fn self_cooccurrence_counts_once_per_pair() {
        let (v, s) = vocab_for(&["dup dup"]);
        let m = CooccurrenceMatrix::from_sentences(&v, &s, 5);
        let d = v.id("dup").unwrap();
        assert_eq!(m.get(d, d), 1.0);
    }
}
