//! Intrinsic embedding-quality evaluation.
//!
//! The GloVe substitution (DESIGN.md §2) is only valid if the trained
//! space reproduces the property the classifier relies on: synonymous
//! domain terms lie closer together than unrelated terms. This module
//! measures that directly, without any classifier in the loop:
//!
//! * [`separation`] — mean within-group vs across-group cosine over
//!   labeled synonym groups, plus the gap between the two;
//! * [`retrieval_accuracy`] — for each word, whether its nearest
//!   neighbour belongs to the same synonym group (a precision@1 probe);
//! * [`SimilarityProbe`] — scored word pairs for fine-grained checks.

use crate::store::{cosine, EmbeddingStore};

/// A labeled set of synonym groups (each group: words that should embed
/// close together).
#[derive(Debug, Clone, Default)]
pub struct SynonymGroups {
    groups: Vec<Vec<String>>,
}

impl SynonymGroups {
    /// Build from string groups, dropping words of fewer than one group
    /// and groups with fewer than two usable words.
    pub fn new(groups: Vec<Vec<String>>) -> Self {
        SynonymGroups {
            groups: groups.into_iter().filter(|g| g.len() >= 2).collect(),
        }
    }

    /// The groups.
    pub fn groups(&self) -> &[Vec<String>] {
        &self.groups
    }

    /// Restrict to words present in `store` (groups shrinking below two
    /// members are dropped).
    pub fn known_to(&self, store: &EmbeddingStore) -> SynonymGroups {
        SynonymGroups::new(
            self.groups
                .iter()
                .map(|g| {
                    g.iter()
                        .filter(|w| store.get(w).is_some())
                        .cloned()
                        .collect::<Vec<_>>()
                })
                .collect(),
        )
    }
}

/// Within/across-group cosine statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Separation {
    /// Mean cosine between words of the same group.
    pub within_mean: f64,
    /// Mean cosine between words of different groups.
    pub across_mean: f64,
    /// `within_mean − across_mean`; the larger, the better the space.
    pub gap: f64,
    /// Number of within-group pairs measured.
    pub within_pairs: usize,
    /// Number of across-group pairs measured.
    pub across_pairs: usize,
}

/// Measure within- vs across-group cosine separation. Returns `None`
/// when fewer than two groups survive the vocabulary restriction.
pub fn separation(store: &EmbeddingStore, groups: &SynonymGroups) -> Option<Separation> {
    let known = groups.known_to(store);
    if known.groups().len() < 2 {
        return None;
    }
    let vec_of = |w: &str| store.get(w).expect("restricted to known words");

    let mut within = Vec::new();
    let mut across = Vec::new();
    for (gi, g) in known.groups().iter().enumerate() {
        for (i, a) in g.iter().enumerate() {
            for b in &g[i + 1..] {
                within.push(cosine(vec_of(a), vec_of(b)));
            }
        }
        for h in &known.groups()[gi + 1..] {
            for a in g {
                for b in h {
                    across.push(cosine(vec_of(a), vec_of(b)));
                }
            }
        }
    }
    if within.is_empty() || across.is_empty() {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (within_mean, across_mean) = (mean(&within), mean(&across));
    Some(Separation {
        within_mean,
        across_mean,
        gap: within_mean - across_mean,
        within_pairs: within.len(),
        across_pairs: across.len(),
    })
}

/// Precision@1 of nearest-neighbour retrieval: the fraction of words
/// whose closest *probe* word (over all group members, excluding itself)
/// belongs to the same group. Returns `None` if fewer than two groups
/// survive.
pub fn retrieval_accuracy(store: &EmbeddingStore, groups: &SynonymGroups) -> Option<f64> {
    let known = groups.known_to(store);
    if known.groups().len() < 2 {
        return None;
    }
    let all: Vec<(usize, &String)> = known
        .groups()
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.iter().map(move |w| (gi, w)))
        .collect();

    let mut correct = 0usize;
    let mut total = 0usize;
    for &(gi, word) in &all {
        let v = store.get(word).expect("known");
        let best = all
            .iter()
            .filter(|(_, w)| *w != word)
            .map(|(hj, w)| (*hj, cosine(v, store.get(w).expect("known"))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((hj, _)) = best {
            total += 1;
            if hj == gi {
                correct += 1;
            }
        }
    }
    if total == 0 {
        None
    } else {
        Some(correct as f64 / total as f64)
    }
}

/// A scored word-pair probe: expected-similar pairs should outscore
/// expected-dissimilar pairs.
#[derive(Debug, Clone)]
pub struct SimilarityProbe {
    /// Pairs expected to be similar.
    pub similar: Vec<(String, String)>,
    /// Pairs expected to be dissimilar.
    pub dissimilar: Vec<(String, String)>,
}

impl SimilarityProbe {
    /// Fraction of (similar, dissimilar) pair combinations ranked
    /// correctly (similar scoring strictly higher). Pairs with unknown
    /// words are skipped. Returns `None` when nothing is comparable.
    pub fn ranking_accuracy(&self, store: &EmbeddingStore) -> Option<f64> {
        let score = |pair: &(String, String)| -> Option<f64> {
            store.cosine_similarity(&pair.0, &pair.1)
        };
        let sims: Vec<f64> = self.similar.iter().filter_map(score).collect();
        let diss: Vec<f64> = self.dissimilar.iter().filter_map(score).collect();
        if sims.is_empty() || diss.is_empty() {
            return None;
        }
        let mut correct = 0usize;
        for s in &sims {
            for d in &diss {
                if s > d {
                    correct += 1;
                }
            }
        }
        Some(correct as f64 / (sims.len() * diss.len()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built store with two clean clusters and a stray word.
    fn store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(3);
        s.insert("mp", vec![1.0, 0.1, 0.0]).unwrap();
        s.insert("megapixels", vec![0.95, 0.15, 0.0]).unwrap();
        s.insert("resolution", vec![0.9, 0.2, 0.0]).unwrap();
        s.insert("battery", vec![0.0, 0.1, 1.0]).unwrap();
        s.insert("mah", vec![0.05, 0.12, 0.95]).unwrap();
        s.insert("stray", vec![0.4, 0.9, 0.4]).unwrap();
        s
    }

    fn groups() -> SynonymGroups {
        SynonymGroups::new(vec![
            vec!["mp".into(), "megapixels".into(), "resolution".into()],
            vec!["battery".into(), "mah".into()],
        ])
    }

    #[test]
    fn separation_on_clean_clusters() {
        let sep = separation(&store(), &groups()).unwrap();
        assert!(sep.within_mean > 0.9);
        assert!(sep.across_mean < 0.3);
        assert!(sep.gap > 0.6);
        assert_eq!(sep.within_pairs, 3 + 1);
        assert_eq!(sep.across_pairs, 6);
    }

    #[test]
    fn retrieval_is_perfect_on_clean_clusters() {
        assert_eq!(retrieval_accuracy(&store(), &groups()), Some(1.0));
    }

    #[test]
    fn unknown_words_are_dropped() {
        let g = SynonymGroups::new(vec![
            vec!["mp".into(), "megapixels".into(), "ghost".into()],
            vec!["battery".into(), "mah".into()],
        ]);
        let sep = separation(&store(), &g).unwrap();
        // "ghost" contributes nothing.
        assert_eq!(sep.within_pairs, 1 + 1);
    }

    #[test]
    fn too_few_groups_is_none() {
        let g = SynonymGroups::new(vec![vec!["mp".into(), "megapixels".into()]]);
        assert!(separation(&store(), &g).is_none());
        assert!(retrieval_accuracy(&store(), &g).is_none());
        // All-unknown groups also collapse.
        let g = SynonymGroups::new(vec![
            vec!["x".into(), "y".into()],
            vec!["z".into(), "w".into()],
        ]);
        assert!(separation(&store(), &g).is_none());
    }

    #[test]
    fn groups_filter_tiny_groups() {
        let g = SynonymGroups::new(vec![vec!["only".into()], vec!["a".into(), "b".into()]]);
        assert_eq!(g.groups().len(), 1);
    }

    #[test]
    fn similarity_probe_ranking() {
        let probe = SimilarityProbe {
            similar: vec![("mp".into(), "megapixels".into())],
            dissimilar: vec![("mp".into(), "battery".into()), ("mp".into(), "ghost".into())],
        };
        // Pair with unknown "ghost" is skipped; the remaining comparison
        // is correct.
        assert_eq!(probe.ranking_accuracy(&store()), Some(1.0));

        let empty = SimilarityProbe {
            similar: vec![("ghost".into(), "mp".into())],
            dissimilar: vec![],
        };
        assert_eq!(empty.ranking_accuracy(&store()), None);
    }

    #[test]
    fn trained_embeddings_pass_probes() {
        use crate::cooccur::CooccurrenceMatrix;
        use crate::glove::{train, GloVeConfig};
        use crate::tokenize::tokenize;
        use crate::vocab::Vocab;
        // Reuse the synonym corpus trick: two context-separated clusters.
        let mut sentences = Vec::new();
        for round in 0..60 {
            let r = ["mp", "megapixels", "resolution"][round % 3];
            let b = ["battery", "mah", "charge"][round % 3];
            sentences.push(tokenize(&format!("sensor image {r} detail sharpness")));
            sentences.push(tokenize(&format!("power hours {b} endurance energy")));
        }
        let vocab = Vocab::build(sentences.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sentences, 5);
        let store = train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 40,
                ..GloVeConfig::default()
            },
            11,
        )
        .unwrap();
        let g = SynonymGroups::new(vec![
            vec!["mp".into(), "megapixels".into(), "resolution".into()],
            vec!["battery".into(), "mah".into(), "charge".into()],
        ]);
        let sep = separation(&store, &g).unwrap();
        assert!(sep.gap > 0.2, "trained separation too small: {sep:?}");
        let acc = retrieval_accuracy(&store, &g).unwrap();
        assert!(acc > 0.8, "retrieval accuracy {acc}");
    }
}
