//! GloVe training: AdaGrad on the weighted least-squares objective.
//!
//! For each non-zero co-occurrence `x_ij` the model minimizes
//!
//! ```text
//! f(x_ij) · (wᵢ · w̃ⱼ + bᵢ + b̃ⱼ − ln x_ij)²
//! f(x) = (x / x_max)^α  capped at 1,   α = 0.75
//! ```
//!
//! with separate "main" and "context" vectors whose sum is the final
//! embedding, exactly as in Pennington et al. (2014). Updates use AdaGrad
//! with per-coordinate accumulators, and the co-occurrence entries are
//! visited in a seeded shuffled order each epoch for reproducibility.

use crate::cooccur::CooccurrenceMatrix;
use crate::store::EmbeddingStore;
use crate::vocab::Vocab;
use crate::EmbeddingError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for GloVe training.
#[derive(Debug, Clone)]
pub struct GloVeConfig {
    /// Embedding dimensionality (the paper's pre-trained vectors: 300; our
    /// trained-from-scratch default: 50, swept in the ablation bench).
    pub dim: usize,
    /// Number of passes over the co-occurrence entries.
    pub epochs: usize,
    /// Initial AdaGrad learning rate.
    pub learning_rate: f64,
    /// Weighting-function cap `x_max`; entries at or above it get weight 1.
    pub x_max: f64,
    /// Weighting-function exponent α.
    pub alpha: f64,
    /// Mean-center the final vectors (subtract the average vector).
    ///
    /// Embeddings trained on small corpora are strongly anisotropic: all
    /// vectors share a large common component, so cosine similarities
    /// crowd toward 1 and thresholds lose their meaning. Removing the
    /// mean (the first step of the standard "all-but-the-top"
    /// post-processing) restores a spread of cosines comparable to
    /// large-corpus GloVe, which the paper's matchers assume.
    pub mean_center: bool,
    /// Scale every final vector to unit length (after centering).
    ///
    /// GloVe vector norms grow with word frequency; in the paper's huge
    /// corpus all property-vocabulary words are frequent, so their norms
    /// are comparable, and vector-difference features reflect *direction*.
    /// On a small corpus, rare words keep near-initialization (tiny-norm)
    /// vectors, making any two rare words spuriously "close". Unit
    /// normalization restores comparable norms.
    pub unit_norm: bool,
}

impl Default for GloVeConfig {
    fn default() -> Self {
        GloVeConfig {
            dim: 50,
            epochs: 25,
            learning_rate: 0.05,
            x_max: 100.0,
            alpha: 0.75,
            mean_center: true,
            unit_norm: true,
        }
    }
}

impl GloVeConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), EmbeddingError> {
        if self.dim == 0 {
            return Err(EmbeddingError::InvalidConfig("dim must be > 0".into()));
        }
        if self.epochs == 0 {
            return Err(EmbeddingError::InvalidConfig("epochs must be > 0".into()));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(EmbeddingError::InvalidConfig(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if self.x_max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(EmbeddingError::InvalidConfig("x_max must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(EmbeddingError::InvalidConfig(
                "alpha must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// The GloVe weighting function `f(x) = min(1, (x/x_max)^α)`.
    pub fn weight(&self, x: f64) -> f64 {
        if x >= self.x_max {
            1.0
        } else {
            (x / self.x_max).powf(self.alpha)
        }
    }
}

/// Train GloVe embeddings over `cooc` and return the final store
/// (main + context vectors summed).
///
/// Training is deterministic given `seed`.
pub fn train(
    vocab: &Vocab,
    cooc: &CooccurrenceMatrix,
    cfg: &GloVeConfig,
    seed: u64,
) -> Result<EmbeddingStore, EmbeddingError> {
    cfg.validate()?;
    if vocab.is_empty() {
        return Err(EmbeddingError::EmptyVocabulary);
    }
    if cooc.is_empty() {
        return Err(EmbeddingError::EmptyCooccurrence);
    }

    let n = vocab.len();
    let d = cfg.dim;
    let mut rng = StdRng::seed_from_u64(seed);

    // Main (w) and context (w~) vectors + biases, flat layout [n * d].
    let mut w = init_vec(n * d, d, &mut rng);
    let mut wc = init_vec(n * d, d, &mut rng);
    let mut b = vec![0.0f64; n];
    let mut bc = vec![0.0f64; n];

    // AdaGrad accumulators (start at 1.0 like the reference implementation
    // so early updates aren't huge).
    let mut gw = vec![1.0f64; n * d];
    let mut gwc = vec![1.0f64; n * d];
    let mut gb = vec![1.0f64; n];
    let mut gbc = vec![1.0f64; n];

    let mut entries = cooc.iter_sorted();
    let lr = cfg.learning_rate;

    for _epoch in 0..cfg.epochs {
        entries.shuffle(&mut rng);
        for &(i, j, x) in &entries {
            debug_assert!(x > 0.0);
            let (i, j) = (i as usize, j as usize);
            let fx = cfg.weight(x);
            let log_x = x.ln();

            // Symmetric matrix stored once per unordered pair: update both
            // (i ctr, j ctx) and (j ctr, i ctx) directions, except the
            // diagonal which exists once.
            let directions: &[(usize, usize)] = if i == j { &[(i, j)] } else { &[(i, j), (j, i)] };
            for &(ci, cj) in directions {
                let wi = ci * d..(ci + 1) * d;
                let wj = cj * d..(cj + 1) * d;

                let mut dot = 0.0f64;
                for (a, bb) in w[wi.clone()].iter().zip(&wc[wj.clone()]) {
                    dot += a * bb;
                }
                let diff = dot + b[ci] + bc[cj] - log_x;
                let coef = fx * diff; // gradient scale (×2 folded into lr)

                // Vector updates.
                for k in 0..d {
                    let gi = ci * d + k;
                    let gj = cj * d + k;
                    let grad_w = coef * wc[gj];
                    let grad_c = coef * w[gi];
                    w[gi] -= lr * grad_w / gw[gi].sqrt();
                    wc[gj] -= lr * grad_c / gwc[gj].sqrt();
                    gw[gi] += grad_w * grad_w;
                    gwc[gj] += grad_c * grad_c;
                }
                // Bias updates.
                b[ci] -= lr * coef / gb[ci].sqrt();
                bc[cj] -= lr * coef / gbc[cj].sqrt();
                gb[ci] += coef * coef;
                gbc[cj] += coef * coef;
            }
        }
    }

    // Final embedding: w + w~ (standard GloVe practice), optionally
    // mean-centered to remove small-corpus anisotropy.
    let mut vectors: Vec<Vec<f32>> = (0..n)
        .map(|id| {
            let base = id * d;
            (0..d).map(|k| (w[base + k] + wc[base + k]) as f32).collect()
        })
        .collect();
    if cfg.mean_center && n > 1 {
        let mut mean = vec![0.0f64; d];
        for v in &vectors {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        for v in &mut vectors {
            for (x, &m) in v.iter_mut().zip(&mean) {
                *x -= m as f32;
            }
        }
    }
    if cfg.unit_norm {
        for v in &mut vectors {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-8 {
                for x in v.iter_mut() {
                    *x /= norm;
                }
            }
        }
    }
    let mut store = EmbeddingStore::new(d);
    for (id, word, _) in vocab.iter() {
        store
            .insert(word, vectors[id as usize].clone())
            .expect("dim is consistent");
    }
    Ok(store)
}

/// Total weighted least-squares loss of a trained store against the
/// co-occurrence matrix — used to verify training actually minimizes the
/// objective. Uses the summed vectors as both main and context (an
/// approximation adequate for monitoring).
pub fn objective_proxy(
    store: &EmbeddingStore,
    vocab: &Vocab,
    cooc: &CooccurrenceMatrix,
    cfg: &GloVeConfig,
) -> f64 {
    let mut total = 0.0;
    for (i, j, x) in cooc.iter_sorted() {
        let (Some(wi), Some(wj)) = (
            vocab.word(i).and_then(|w| store.get(w)),
            vocab.word(j).and_then(|w| store.get(w)),
        ) else {
            continue;
        };
        let dot: f64 = wi.iter().zip(wj).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        // Summed vectors roughly double the scale; halve the dot product.
        let diff = dot / 2.0 - x.ln();
        total += cfg.weight(x) * diff * diff;
    }
    total
}

fn init_vec(len: usize, dim: usize, rng: &mut StdRng) -> Vec<f64> {
    let scale = 0.5 / dim as f64;
    (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    /// A corpus where {mp, megapixels, resolution} share contexts and
    /// {battery, mah, charge} share different contexts.
    fn synonym_corpus() -> Vec<Vec<String>> {
        let mut sentences = Vec::new();
        let res_words = ["mp", "megapixels", "resolution"];
        let bat_words = ["battery", "mah", "charge"];
        for round in 0..40 {
            let r = res_words[round % 3];
            let b = bat_words[round % 3];
            sentences.push(tokenize(&format!("the camera sensor captures {r} of image detail")));
            sentences.push(tokenize(&format!("image detail depends on sensor {r} quality")));
            sentences.push(tokenize(&format!("the {b} lasts many hours of power use")));
            sentences.push(tokenize(&format!("power use drains the {b} over hours")));
        }
        sentences
    }

    fn train_on_corpus(dim: usize, epochs: usize) -> (Vocab, CooccurrenceMatrix, EmbeddingStore) {
        let sents = synonym_corpus();
        let vocab = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sents, 6);
        let cfg = GloVeConfig {
            dim,
            epochs,
            ..GloVeConfig::default()
        };
        let store = train(&vocab, &cooc, &cfg, 123).unwrap();
        (vocab, cooc, store)
    }

    #[test]
    fn weighting_function_shape() {
        let cfg = GloVeConfig::default();
        assert_eq!(cfg.weight(100.0), 1.0);
        assert_eq!(cfg.weight(1000.0), 1.0);
        assert!(cfg.weight(1.0) < cfg.weight(10.0));
        assert!(cfg.weight(10.0) < 1.0);
    }

    #[test]
    fn config_validation() {
        assert!(GloVeConfig::default().validate().is_ok());
        let bad = GloVeConfig { dim: 0, ..GloVeConfig::default() };
        assert!(bad.validate().is_err());
        let bad = GloVeConfig { epochs: 0, ..GloVeConfig::default() };
        assert!(bad.validate().is_err());
        let bad = GloVeConfig { learning_rate: -1.0, ..GloVeConfig::default() };
        assert!(bad.validate().is_err());
        let bad = GloVeConfig { alpha: 2.0, ..GloVeConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn errors_on_empty_inputs() {
        let empty_vocab = Vocab::build(std::iter::empty(), 1);
        let cooc = CooccurrenceMatrix::new();
        let cfg = GloVeConfig::default();
        assert!(matches!(
            train(&empty_vocab, &cooc, &cfg, 0),
            Err(EmbeddingError::EmptyVocabulary)
        ));
        let vocab = Vocab::build(["a"], 1);
        assert!(matches!(
            train(&vocab, &cooc, &cfg, 0),
            Err(EmbeddingError::EmptyCooccurrence)
        ));
    }

    #[test]
    fn training_reduces_objective() {
        let sents = synonym_corpus();
        let vocab = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sents, 6);
        // Centering would change the dot products the proxy measures.
        let cfg_short = GloVeConfig { dim: 16, epochs: 1, mean_center: false, unit_norm: false, ..GloVeConfig::default() };
        let cfg_long = GloVeConfig { dim: 16, epochs: 40, mean_center: false, unit_norm: false, ..GloVeConfig::default() };
        let short = train(&vocab, &cooc, &cfg_short, 7).unwrap();
        let long = train(&vocab, &cooc, &cfg_long, 7).unwrap();
        let loss_short = objective_proxy(&short, &vocab, &cooc, &cfg_long);
        let loss_long = objective_proxy(&long, &vocab, &cooc, &cfg_long);
        assert!(
            loss_long < loss_short,
            "objective should drop: {loss_short} → {loss_long}"
        );
    }

    #[test]
    fn synonyms_closer_than_unrelated_words() {
        let (_vocab, _cooc, store) = train_on_corpus(24, 60);
        let syn = store.cosine_similarity("mp", "megapixels").unwrap();
        let unrel = store.cosine_similarity("mp", "battery").unwrap();
        assert!(
            syn > unrel,
            "synonyms should be closer: sim(mp,megapixels)={syn} vs sim(mp,battery)={unrel}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sents = synonym_corpus();
        let vocab = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sents, 6);
        let cfg = GloVeConfig { dim: 8, epochs: 3, ..GloVeConfig::default() };
        let a = train(&vocab, &cooc, &cfg, 99).unwrap();
        let b = train(&vocab, &cooc, &cfg, 99).unwrap();
        assert_eq!(a.get("camera"), b.get("camera"));
    }

    #[test]
    fn mean_centering_zeroes_the_mean() {
        let sents = synonym_corpus();
        let vocab = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sents, 6);
        let cfg = GloVeConfig {
            dim: 8,
            epochs: 3,
            unit_norm: false, // per-vector rescaling would move the mean
            ..GloVeConfig::default()
        };
        let store = train(&vocab, &cooc, &cfg, 77).unwrap();
        let mut mean = vec![0.0f64; 8];
        for (_, word, _) in vocab.iter() {
            for (m, &x) in mean.iter_mut().zip(store.get(word).unwrap()) {
                *m += x as f64;
            }
        }
        for m in &mean {
            assert!((m / vocab.len() as f64).abs() < 1e-5, "mean not centered");
        }
    }

    #[test]
    fn centering_spreads_cosines() {
        let sents = synonym_corpus();
        let vocab = Vocab::build(sents.iter().flatten().map(String::as_str), 1);
        let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sents, 6);
        let raw = train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 30,
                mean_center: false,
                ..GloVeConfig::default()
            },
            7,
        )
        .unwrap();
        let centered = train(
            &vocab,
            &cooc,
            &GloVeConfig {
                dim: 16,
                epochs: 30,
                mean_center: true,
                ..GloVeConfig::default()
            },
            7,
        )
        .unwrap();
        let avg_cos = |s: &EmbeddingStore| {
            let words: Vec<&str> = vocab.iter().map(|(_, w, _)| w).collect();
            let mut total = 0.0;
            let mut count = 0;
            for (i, a) in words.iter().enumerate() {
                for b in &words[i + 1..] {
                    total += s.cosine_similarity(a, b).unwrap();
                    count += 1;
                }
            }
            total / count as f64
        };
        assert!(
            avg_cos(&centered).abs() < avg_cos(&raw).abs(),
            "centering should reduce the global cosine bias"
        );
    }

    #[test]
    fn unit_norm_gives_unit_vectors() {
        let (vocab, _, store) = train_on_corpus(12, 3);
        for (_, word, _) in vocab.iter() {
            let v = store.get(word).unwrap();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "{word}: norm {norm}");
        }
    }

    #[test]
    fn all_vocab_words_have_vectors() {
        let (vocab, _, store) = train_on_corpus(8, 2);
        for (_, word, _) in vocab.iter() {
            let v = store.get(word).expect("every vocab word embedded");
            assert_eq!(v.len(), 8);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
