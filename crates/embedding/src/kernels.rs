//! Shared unrolled vector kernels for the featurization hot path.
//!
//! Every dense-vector loop along the instance→property→pair chain —
//! embedding averaging in [`crate::store`], property aggregation in
//! `leapme-features`, pair differencing, and the cosine similarities used
//! by blocking and the semantic baselines — funnels through this one
//! module so there is exactly one implementation of each arithmetic
//! pattern to optimize and to prove correct.
//!
//! The elementwise kernels ([`add_assign`], [`axpy`], [`div_assign`],
//! [`sub_abs`]) dispatch at runtime: on x86-64 with SSE2 confirmed by
//! `is_x86_feature_detected!` they run explicit `core::arch` packed
//! lanes ([`sse2`]), everywhere else the fixed-width register-tile
//! fallback — the same `[f32; LANES]` array-view idiom as the matmul
//! kernel in `leapme-nn/src/matrix.rs`, whose compile-time-constant
//! indices let the autovectorizer keep the tile in SIMD registers.
//! Both paths apply exactly one IEEE add/mul/div/abs per element, and
//! each output element depends only on the matching input elements, so
//! neither vectorization nor blocking reorders any floating-point
//! operation — results are bitwise identical across paths and at every
//! width (pinned by the identity tests below).
//!
//! [`cosine`] is a *reduction*: widening it into multiple partial
//! accumulators (scalar-unrolled or SIMD) would reassociate the sums
//! and change the result in the last ulp. Determinism
//! (bitwise-reproducible scores, resumable training) outranks
//! throughput here, so it keeps the single ascending-index `f64`
//! accumulator chain the rest of the repo already relies on, on every
//! architecture.

/// Width of the fixed-size lane tile used by the elementwise kernels.
///
/// 16 `f32`s = one AVX-512 register or two AVX2 registers — wide enough
/// that the compiler emits packed SIMD, small enough that the scalar
/// remainder (at most `LANES - 1` elements) stays cheap for the short
/// 8-element string-feature tails.
pub const LANES: usize = 16;

/// Explicit SSE2 lanes for the elementwise kernels — the one place in
/// this crate allowed to use `unsafe` (see the crate-level lint note).
///
/// Every function here applies the same single IEEE operation per
/// element as its scalar fallback (`_mm_add_ps` ↔ `+`, `_mm_mul_ps` +
/// `_mm_add_ps` ↔ `a * x + acc` without fusing, `_mm_div_ps` ↔ `/`,
/// and sign-bit `_mm_andnot_ps` ↔ `f32::abs`), so the two paths are
/// bitwise identical on every input; no FMA contraction, reciprocal
/// approximation, or reassociation is permitted. The `try_*` entry
/// points return `false` without touching the data when SSE2 is
/// unavailable (on x86-64 the baseline ABI guarantees it, but the
/// runtime gate keeps the contract explicit and the fallback honest).
#[cfg(target_arch = "x86_64")]
pub mod sse2 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::{
        _mm_add_ps, _mm_andnot_ps, _mm_div_ps, _mm_loadu_ps, _mm_mul_ps, _mm_set1_ps,
        _mm_storeu_ps, _mm_sub_ps,
    };

    /// Packed lane width of one `__m128` register.
    const W: usize = 4;

    /// [`super::add_assign`] on SSE2 lanes; `false` if SSE2 is absent.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn try_add_assign(acc: &mut [f32], x: &[f32]) -> bool {
        assert_eq!(acc.len(), x.len(), "kernel length mismatch");
        if !std::arch::is_x86_feature_detected!("sse2") {
            return false;
        }
        // SAFETY: SSE2 availability was just confirmed.
        unsafe { add_assign(acc, x) };
        true
    }

    /// [`super::axpy`] on SSE2 lanes; `false` if SSE2 is absent.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn try_axpy(acc: &mut [f32], a: f32, x: &[f32]) -> bool {
        assert_eq!(acc.len(), x.len(), "kernel length mismatch");
        if !std::arch::is_x86_feature_detected!("sse2") {
            return false;
        }
        // SAFETY: SSE2 availability was just confirmed.
        unsafe { axpy(acc, a, x) };
        true
    }

    /// [`super::div_assign`] on SSE2 lanes; `false` if SSE2 is absent.
    pub fn try_div_assign(v: &mut [f32], d: f32) -> bool {
        if !std::arch::is_x86_feature_detected!("sse2") {
            return false;
        }
        // SAFETY: SSE2 availability was just confirmed.
        unsafe { div_assign(v, d) };
        true
    }

    /// [`super::sub_abs`] on SSE2 lanes; `false` if SSE2 is absent.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn try_sub_abs(out: &mut [f32], a: &[f32], b: &[f32]) -> bool {
        assert_eq!(a.len(), b.len(), "kernel length mismatch");
        assert_eq!(out.len(), a.len(), "kernel length mismatch");
        if !std::arch::is_x86_feature_detected!("sse2") {
            return false;
        }
        // SAFETY: SSE2 availability was just confirmed.
        unsafe { sub_abs(out, a, b) };
        true
    }

    #[target_feature(enable = "sse2")]
    unsafe fn add_assign(acc: &mut [f32], x: &[f32]) {
        let n = acc.len() / W * W;
        let (ap, xp) = (acc.as_mut_ptr(), x.as_ptr());
        for i in (0..n).step_by(W) {
            // SAFETY: i + W ≤ len of both equal-length slices; loads and
            // stores are unaligned-tolerant.
            unsafe {
                let v = _mm_add_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(xp.add(i)));
                _mm_storeu_ps(ap.add(i), v);
            }
        }
        for i in n..acc.len() {
            acc[i] += x[i];
        }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        let n = acc.len() / W * W;
        let (ap, xp) = (acc.as_mut_ptr(), x.as_ptr());
        let av = _mm_set1_ps(a);
        for i in (0..n).step_by(W) {
            // SAFETY: i + W ≤ len of both equal-length slices. Separate
            // mul and add (not FMA) to match the scalar `acc + a * x`.
            unsafe {
                let v = _mm_add_ps(
                    _mm_loadu_ps(ap.add(i)),
                    _mm_mul_ps(av, _mm_loadu_ps(xp.add(i))),
                );
                _mm_storeu_ps(ap.add(i), v);
            }
        }
        for i in n..acc.len() {
            acc[i] += a * x[i];
        }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn div_assign(v: &mut [f32], d: f32) {
        let n = v.len() / W * W;
        let vp = v.as_mut_ptr();
        let dv = _mm_set1_ps(d);
        for i in (0..n).step_by(W) {
            // SAFETY: i + W ≤ len. True packed division, same rounding
            // as the scalar `/` (no reciprocal approximation).
            unsafe {
                _mm_storeu_ps(vp.add(i), _mm_div_ps(_mm_loadu_ps(vp.add(i)), dv));
            }
        }
        for x in &mut v[n..] {
            *x /= d;
        }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sub_abs(out: &mut [f32], a: &[f32], b: &[f32]) {
        let n = out.len() / W * W;
        let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        // abs = clear the sign bit; identical to `f32::abs` on every
        // value class including NaN payloads and signed zeros.
        let sign = _mm_set1_ps(-0.0);
        for i in (0..n).step_by(W) {
            // SAFETY: i + W ≤ len of all three equal-length slices.
            unsafe {
                let d = _mm_sub_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i)));
                _mm_storeu_ps(op.add(i), _mm_andnot_ps(sign, d));
            }
        }
        for i in n..out.len() {
            out[i] = (a[i] - b[i]).abs();
        }
    }
}

/// `acc[i] += x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2::try_add_assign(acc, x) {
        return;
    }
    add_assign_scalar(acc, x);
}

/// The portable register-tile path of [`add_assign`].
fn add_assign_scalar(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "kernel length mismatch");
    let mut a = acc.chunks_exact_mut(LANES);
    let mut b = x.chunks_exact(LANES);
    for (at, xt) in (&mut a).zip(&mut b) {
        let at: &mut [f32; LANES] = at.try_into().expect("tile width");
        let xt: &[f32; LANES] = xt.try_into().expect("tile width");
        for i in 0..LANES {
            at[i] += xt[i];
        }
    }
    for (o, &v) in a.into_remainder().iter_mut().zip(b.remainder()) {
        *o += v;
    }
}

/// `acc[i] += a * x[i]` for all `i` (the classic axpy update).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2::try_axpy(acc, a, x) {
        return;
    }
    axpy_scalar(acc, a, x);
}

/// The portable register-tile path of [`axpy`].
fn axpy_scalar(acc: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "kernel length mismatch");
    let mut ac = acc.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (at, xt) in (&mut ac).zip(&mut xc) {
        let at: &mut [f32; LANES] = at.try_into().expect("tile width");
        let xt: &[f32; LANES] = xt.try_into().expect("tile width");
        for i in 0..LANES {
            at[i] += a * xt[i];
        }
    }
    for (o, &v) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * v;
    }
}

/// `v[i] /= d` for all `i`.
///
/// Division (not multiplication by a reciprocal) so the result stays
/// bitwise identical to the scalar `x / n` averaging loops it replaces.
pub fn div_assign(v: &mut [f32], d: f32) {
    #[cfg(target_arch = "x86_64")]
    if sse2::try_div_assign(v, d) {
        return;
    }
    div_assign_scalar(v, d);
}

/// The portable register-tile path of [`div_assign`].
fn div_assign_scalar(v: &mut [f32], d: f32) {
    let mut c = v.chunks_exact_mut(LANES);
    for vt in &mut c {
        let vt: &mut [f32; LANES] = vt.try_into().expect("tile width");
        for x in vt.iter_mut() {
            *x /= d;
        }
    }
    for o in c.into_remainder() {
        *o /= d;
    }
}

/// `out[i] = (a[i] - b[i]).abs()` for all `i` — the one subtraction
/// kernel behind both `pair::vector_difference` and the flat pair-matrix
/// fill path.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_abs(out: &mut [f32], a: &[f32], b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if sse2::try_sub_abs(out, a, b) {
        return;
    }
    sub_abs_scalar(out, a, b);
}

/// The portable register-tile path of [`sub_abs`].
fn sub_abs_scalar(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    assert_eq!(out.len(), a.len(), "kernel length mismatch");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((ot, at), bt) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        let ot: &mut [f32; LANES] = ot.try_into().expect("tile width");
        let at: &[f32; LANES] = at.try_into().expect("tile width");
        let bt: &[f32; LANES] = bt.try_into().expect("tile width");
        for i in 0..LANES {
            ot[i] = (at[i] - bt[i]).abs();
        }
    }
    for ((o, &x), &y) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = (x - y).abs();
    }
}

/// Cosine similarity between two vectors, accumulated in `f64`.
///
/// Kept as a single ascending-index accumulator chain — see the module
/// docs for why this reduction must not be unrolled. Returns 0.0 when
/// either vector has zero norm (the OOV-property convention from the
/// paper: an all-zero embedding matches nothing).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let (x, y) = (f64::from(x), f64::from(y));
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Inner product of two vectors, accumulated in `f64`.
///
/// The retrieval hot path in `core::index` pre-normalizes every property
/// vector once, after which cosine similarity degenerates to this plain
/// dot product — one multiply-add per element instead of three. Like
/// [`cosine`], it is a *reduction* and keeps the single ascending-index
/// `f64` accumulator chain so results are bitwise reproducible across
/// architectures and thread counts (see the module docs).
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += f64::from(x) * f64::from(y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar references: the loops the kernels replaced.
    fn add_assign_ref(acc: &mut [f32], x: &[f32]) {
        for (o, &v) in acc.iter_mut().zip(x) {
            *o += v;
        }
    }

    fn sub_abs_ref(a: &[f32], b: &[f32]) -> Vec<f32> {
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).collect()
    }

    fn vectors(len: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        // Deterministic awkward values: mix of signs, magnitudes, exact
        // and inexact fractions.
        let gen = |i: usize, salt: u32| -> f32 {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt ^ seed);
            ((h % 2001) as f32 - 1000.0) / 7.0
        };
        (
            (0..len).map(|i| gen(i, 0xA5A5)).collect(),
            (0..len).map(|i| gen(i, 0x5A5A)).collect(),
        )
    }

    #[test]
    fn add_assign_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 1);
            let mut fast = a.clone();
            let mut slow = a.clone();
            add_assign(&mut fast, &b);
            add_assign_ref(&mut slow, &b);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn axpy_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 2);
            let mut fast = a.clone();
            let mut slow = a.clone();
            axpy(&mut fast, 0.37, &b);
            for (o, &v) in slow.iter_mut().zip(&b) {
                *o += 0.37 * v;
            }
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn div_assign_matches_scalar_division() {
        for len in 0..(3 * LANES + 3) {
            let (a, _) = vectors(len, 3);
            let mut fast = a.clone();
            let mut slow = a;
            div_assign(&mut fast, 3.0);
            for o in slow.iter_mut() {
                *o /= 3.0;
            }
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn sub_abs_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 4);
            let mut fast = vec![0.0f32; len];
            sub_abs(&mut fast, &a, &b);
            let slow = sub_abs_ref(&a, &b);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn cosine_basics() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_matches_cosine_on_unit_vectors() {
        // Normalize with the same f64 norm cosine uses internally; the
        // dot of the normalized pair must equal cosine of the originals
        // up to f32-quantization of the normalized components.
        for len in 1..(2 * LANES + 3) {
            let (a, b) = vectors(len, 7);
            let norm = |v: &[f32]| {
                let n = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>();
                n.sqrt()
            };
            let (na, nb) = (norm(&a), norm(&b));
            if na == 0.0 || nb == 0.0 {
                continue;
            }
            let ua: Vec<f32> = a.iter().map(|&x| (f64::from(x) / na) as f32).collect();
            let ub: Vec<f32> = b.iter().map(|&x| (f64::from(x) / nb) as f32).collect();
            let got = dot(&ua, &ub);
            let want = cosine(&a, &b);
            assert!((got - want).abs() < 1e-5, "len {len}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_is_exact_single_chain() {
        // Ascending-index accumulation: bitwise equal to the explicit
        // loop, and exact on integer-valued inputs.
        let a = [1.5f32, -2.0, 3.0, 0.25];
        let b = [4.0f32, 0.5, -1.0, 8.0];
        let mut want = 0.0f64;
        for i in 0..4 {
            want += f64::from(a[i]) * f64::from(b[i]);
        }
        assert_eq!(dot(&a, &b).to_bits(), want.to_bits());
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "kernel length mismatch")]
    fn add_assign_length_mismatch_panics() {
        add_assign(&mut [0.0; 3], &[0.0; 4]);
    }

    /// Direct SSE2-vs-portable-tile identity at every tail width — the
    /// dispatchers above already route x86-64 runs through SSE2, so the
    /// `*_matches_scalar_*` suites cover SIMD-vs-naive; this pins the
    /// explicit lanes against the tile fallback they replace, including
    /// awkward value classes the generator never emits.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_lanes_match_portable_tiles_bitwise() {
        if !std::arch::is_x86_feature_detected!("sse2") {
            return;
        }
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for len in 0..(3 * LANES + 3) {
            let (mut a, mut b) = vectors(len, 99);
            // Edge value classes: signed zeros, infinities, subnormals.
            for (i, x) in a.iter_mut().enumerate() {
                match i % 7 {
                    0 => *x = -0.0,
                    3 => *x = f32::MIN_POSITIVE / 2.0,
                    5 => *x = f32::INFINITY,
                    _ => {}
                }
            }
            if len > 1 {
                b[1] = -f32::INFINITY;
            }

            let (mut fast, mut slow) = (a.clone(), a.clone());
            assert!(sse2::try_add_assign(&mut fast, &b));
            add_assign_scalar(&mut slow, &b);
            assert_eq!(bits(&fast), bits(&slow), "add_assign len {len}");

            let (mut fast, mut slow) = (a.clone(), a.clone());
            assert!(sse2::try_axpy(&mut fast, -0.73, &b));
            axpy_scalar(&mut slow, -0.73, &b);
            assert_eq!(bits(&fast), bits(&slow), "axpy len {len}");

            let (mut fast, mut slow) = (a.clone(), a.clone());
            assert!(sse2::try_div_assign(&mut fast, 7.0));
            div_assign_scalar(&mut slow, 7.0);
            assert_eq!(bits(&fast), bits(&slow), "div_assign len {len}");

            let (mut fast, mut slow) = (vec![0.0f32; len], vec![0.0f32; len]);
            assert!(sse2::try_sub_abs(&mut fast, &a, &b));
            sub_abs_scalar(&mut slow, &a, &b);
            assert_eq!(bits(&fast), bits(&slow), "sub_abs len {len}");
        }
    }
}
