//! Shared unrolled vector kernels for the featurization hot path.
//!
//! Every dense-vector loop along the instance→property→pair chain —
//! embedding averaging in [`crate::store`], property aggregation in
//! `leapme-features`, pair differencing, and the cosine similarities used
//! by blocking and the semantic baselines — funnels through this one
//! module so there is exactly one implementation of each arithmetic
//! pattern to optimize and to prove correct.
//!
//! The elementwise kernels ([`add_assign`], [`axpy`], [`div_assign`],
//! [`sub_abs`]) use the same fixed-width register-tile idiom as the
//! matmul kernel in `leapme-nn/src/matrix.rs`: the body iterates over
//! `[f32; LANES]` array views so the compiler sees compile-time-constant
//! indices and keeps the tile in SIMD registers, with a scalar remainder
//! loop for the tail. Because each output element depends only on the
//! matching input elements, blocking does not reorder any floating-point
//! operation — results are bitwise identical to the naive loops they
//! replace, at every width.
//!
//! [`cosine`] is a *reduction*: unrolling it into multiple partial
//! accumulators would reassociate the sums and change the result in the
//! last ulp. Determinism (bitwise-reproducible scores, resumable
//! training) outranks throughput here, so it keeps the single
//! ascending-index `f64` accumulator chain the rest of the repo already
//! relies on.

/// Width of the fixed-size lane tile used by the elementwise kernels.
///
/// 16 `f32`s = one AVX-512 register or two AVX2 registers — wide enough
/// that the compiler emits packed SIMD, small enough that the scalar
/// remainder (at most `LANES - 1` elements) stays cheap for the short
/// 8-element string-feature tails.
pub const LANES: usize = 16;

/// `acc[i] += x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "kernel length mismatch");
    let mut a = acc.chunks_exact_mut(LANES);
    let mut b = x.chunks_exact(LANES);
    for (at, xt) in (&mut a).zip(&mut b) {
        let at: &mut [f32; LANES] = at.try_into().expect("tile width");
        let xt: &[f32; LANES] = xt.try_into().expect("tile width");
        for i in 0..LANES {
            at[i] += xt[i];
        }
    }
    for (o, &v) in a.into_remainder().iter_mut().zip(b.remainder()) {
        *o += v;
    }
}

/// `acc[i] += a * x[i]` for all `i` (the classic axpy update).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "kernel length mismatch");
    let mut ac = acc.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (at, xt) in (&mut ac).zip(&mut xc) {
        let at: &mut [f32; LANES] = at.try_into().expect("tile width");
        let xt: &[f32; LANES] = xt.try_into().expect("tile width");
        for i in 0..LANES {
            at[i] += a * xt[i];
        }
    }
    for (o, &v) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * v;
    }
}

/// `v[i] /= d` for all `i`.
///
/// Division (not multiplication by a reciprocal) so the result stays
/// bitwise identical to the scalar `x / n` averaging loops it replaces.
pub fn div_assign(v: &mut [f32], d: f32) {
    let mut c = v.chunks_exact_mut(LANES);
    for vt in &mut c {
        let vt: &mut [f32; LANES] = vt.try_into().expect("tile width");
        for x in vt.iter_mut() {
            *x /= d;
        }
    }
    for o in c.into_remainder() {
        *o /= d;
    }
}

/// `out[i] = (a[i] - b[i]).abs()` for all `i` — the one subtraction
/// kernel behind both `pair::vector_difference` and the flat pair-matrix
/// fill path.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_abs(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    assert_eq!(out.len(), a.len(), "kernel length mismatch");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((ot, at), bt) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        let ot: &mut [f32; LANES] = ot.try_into().expect("tile width");
        let at: &[f32; LANES] = at.try_into().expect("tile width");
        let bt: &[f32; LANES] = bt.try_into().expect("tile width");
        for i in 0..LANES {
            ot[i] = (at[i] - bt[i]).abs();
        }
    }
    for ((o, &x), &y) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = (x - y).abs();
    }
}

/// Cosine similarity between two vectors, accumulated in `f64`.
///
/// Kept as a single ascending-index accumulator chain — see the module
/// docs for why this reduction must not be unrolled. Returns 0.0 when
/// either vector has zero norm (the OOV-property convention from the
/// paper: an all-zero embedding matches nothing).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let (x, y) = (f64::from(x), f64::from(y));
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar references: the loops the kernels replaced.
    fn add_assign_ref(acc: &mut [f32], x: &[f32]) {
        for (o, &v) in acc.iter_mut().zip(x) {
            *o += v;
        }
    }

    fn sub_abs_ref(a: &[f32], b: &[f32]) -> Vec<f32> {
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).collect()
    }

    fn vectors(len: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        // Deterministic awkward values: mix of signs, magnitudes, exact
        // and inexact fractions.
        let gen = |i: usize, salt: u32| -> f32 {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt ^ seed);
            ((h % 2001) as f32 - 1000.0) / 7.0
        };
        (
            (0..len).map(|i| gen(i, 0xA5A5)).collect(),
            (0..len).map(|i| gen(i, 0x5A5A)).collect(),
        )
    }

    #[test]
    fn add_assign_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 1);
            let mut fast = a.clone();
            let mut slow = a.clone();
            add_assign(&mut fast, &b);
            add_assign_ref(&mut slow, &b);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn axpy_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 2);
            let mut fast = a.clone();
            let mut slow = a.clone();
            axpy(&mut fast, 0.37, &b);
            for (o, &v) in slow.iter_mut().zip(&b) {
                *o += 0.37 * v;
            }
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn div_assign_matches_scalar_division() {
        for len in 0..(3 * LANES + 3) {
            let (a, _) = vectors(len, 3);
            let mut fast = a.clone();
            let mut slow = a;
            div_assign(&mut fast, 3.0);
            for o in slow.iter_mut() {
                *o /= 3.0;
            }
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn sub_abs_matches_scalar_at_all_tail_widths() {
        for len in 0..(3 * LANES + 3) {
            let (a, b) = vectors(len, 4);
            let mut fast = vec![0.0f32; len];
            sub_abs(&mut fast, &a, &b);
            let slow = sub_abs_ref(&a, &b);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn cosine_basics() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "kernel length mismatch")]
    fn add_assign_length_mismatch_panics() {
        add_assign(&mut [0.0; 3], &[0.0; 4]);
    }
}
