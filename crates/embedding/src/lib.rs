//! Word-embedding substrate for LEAPME.
//!
//! The paper uses pre-trained 300-dimensional GloVe vectors (Common Crawl,
//! 1.9 M words) and maps unknown words to the zero vector. Pre-trained
//! vectors are not available offline, so this crate implements the *whole*
//! GloVe pipeline from scratch (see DESIGN.md §2 for why this substitution
//! preserves the paper's behaviour):
//!
//! * [`tokenize`] — the word splitter used for property names and values,
//! * [`vocab::Vocab`] — word ↔ id interning with frequency pruning,
//! * [`cooccur::CooccurrenceMatrix`] — windowed co-occurrence counts with
//!   the canonical `1/d` distance weighting,
//! * [`glove`] — AdaGrad training of the GloVe weighted least-squares
//!   objective (Pennington et al., EMNLP 2014),
//! * [`store::EmbeddingStore`] — the lookup table used by feature
//!   extraction: averaging, OOV→zeros, cosine similarity, and I/O in the
//!   standard `glove.txt` text format so real pre-trained vectors can be
//!   dropped in.
//!
//! # Example: train embeddings on a tiny corpus
//!
//! ```
//! use leapme_embedding::{cooccur::CooccurrenceMatrix, glove::{GloVeConfig, train},
//!                        tokenize::tokenize, vocab::Vocab};
//!
//! let corpus = [
//!     "camera resolution measured in megapixels",
//!     "the resolution of the sensor is twenty megapixels",
//!     "megapixels describe camera resolution",
//! ];
//! let sentences: Vec<Vec<String>> = corpus.iter().map(|s| tokenize(s)).collect();
//! let vocab = Vocab::build(sentences.iter().flatten().map(String::as_str), 1);
//! let cooc = CooccurrenceMatrix::from_sentences(&vocab, &sentences, 5);
//! let cfg = GloVeConfig { dim: 16, epochs: 30, ..GloVeConfig::default() };
//! let store = train(&vocab, &cooc, &cfg, 42).unwrap();
//! assert_eq!(store.dim(), 16);
//! assert!(store.get("resolution").is_some());
//! ```

#![deny(missing_docs)]
// `deny` rather than `forbid`: the explicit-SIMD lanes in
// `kernels::sse2` carry the crate's only `allow(unsafe_code)` override,
// scoped to that module and justified inline per intrinsic call.
#![deny(unsafe_code)]

pub mod cooccur;
pub mod eval;
pub mod glove;
pub mod kernels;
pub mod store;
pub mod tokenize;
pub mod vocab;

/// Errors produced by the embedding substrate.
#[derive(Debug)]
pub enum EmbeddingError {
    /// The vocabulary is empty (nothing to train on).
    EmptyVocabulary,
    /// The co-occurrence matrix has no entries.
    EmptyCooccurrence,
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A malformed line in a text-format embedding file.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::EmptyVocabulary => write!(f, "vocabulary is empty"),
            EmbeddingError::EmptyCooccurrence => write!(f, "co-occurrence matrix is empty"),
            EmbeddingError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            EmbeddingError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            EmbeddingError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbeddingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EmbeddingError {
    fn from(e: std::io::Error) -> Self {
        EmbeddingError::Io(e)
    }
}
